"""Guards for the benchmark artifact layout (CI writes, repo history).

The committed full-scale artifacts under ``benchmarks/results/`` are the
repo's performance trajectory; smoke runs (CI, ``--smoke`` locally) must
never overwrite them.  Two mechanisms enforce that, both tested here:

* every ``write_results`` routes its paths through
  ``conftest.smoke_artifact_guard`` which rejects a smoke run targeting
  a full-scale filename in the results directory;
* every bench CLI takes ``--out-dir`` (parsed by
  ``conftest.resolve_out_dir``) so CI can redirect artifacts entirely.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def load_bench_module(name: str, monkeypatch):
    """Import a benchmarks/ module the way its CLI entry point would.

    The bench scripts do ``from conftest import ...`` at call time
    (``sys.path[0]`` is ``benchmarks/`` when run as scripts), so the
    benchmarks conftest is installed under that name for the test.
    """
    conftest_spec = importlib.util.spec_from_file_location(
        "_bench_conftest", BENCH_DIR / "conftest.py"
    )
    conftest = importlib.util.module_from_spec(conftest_spec)
    conftest_spec.loader.exec_module(conftest)
    monkeypatch.setitem(sys.modules, "conftest", conftest)
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, conftest


class TestSmokeArtifactGuard:
    def test_smoke_must_not_target_committed_names(self, monkeypatch):
        _, conftest = load_bench_module("bench_load", monkeypatch)
        results_dir = conftest.RESULTS_DIR
        # full-scale path from a smoke run: refused
        with pytest.raises(AssertionError, match="overwrite"):
            conftest.smoke_artifact_guard(results_dir / "bench_store.json", smoke=True)
        # suffixed smoke artifact: fine
        conftest.smoke_artifact_guard(results_dir / "bench_store_smoke.json", smoke=True)
        # full-scale run writing the committed name: fine
        conftest.smoke_artifact_guard(results_dir / "bench_store.json", smoke=False)

    def test_out_dir_redirect_is_always_safe(self, monkeypatch, tmp_path):
        _, conftest = load_bench_module("bench_load", monkeypatch)
        conftest.smoke_artifact_guard(tmp_path / "bench_store.json", smoke=True)

    def test_every_ci_bench_has_the_flag_and_the_guard(self):
        for name in (
            "bench_shard",
            "bench_filter",
            "bench_store",
            "bench_load",
            "bench_quant",
            "bench_replica",
            "bench_tenant",
            "bench_obs",
        ):
            source = (BENCH_DIR / f"{name}.py").read_text()
            assert "resolve_out_dir" in source, f"{name} lost its --out-dir flag"
            assert "smoke_artifact_guard" in source, f"{name} lost the smoke guard"


class TestResolveOutDir:
    @pytest.fixture()
    def conftest(self, monkeypatch):
        _, conftest = load_bench_module("bench_load", monkeypatch)
        return conftest

    def test_separate_argument(self, conftest):
        out_dir, rest = conftest.resolve_out_dir(["--smoke", "--out-dir", "/tmp/x"])
        assert out_dir == "/tmp/x"
        assert rest == ["--smoke"]

    def test_equals_form(self, conftest):
        out_dir, rest = conftest.resolve_out_dir(["--out-dir=/tmp/y"])
        assert (out_dir, rest) == ("/tmp/y", [])

    def test_absent(self, conftest):
        assert conftest.resolve_out_dir(["--smoke"]) == (None, ["--smoke"])

    def test_missing_value_exits(self, conftest):
        with pytest.raises(SystemExit):
            conftest.resolve_out_dir(["--out-dir"])


class TestBenchLoadWriteResults:
    def test_out_dir_receives_schema_compliant_artifacts(self, monkeypatch, tmp_path):
        bench_load, _ = load_bench_module("bench_load", monkeypatch)
        rows = [
            {
                "mode": "closed", "factor": 2, "repetition": 0,
                "offered_qps": None, "qps": 100.0, "elapsed_seconds": 1.0,
                "ok": 100, "shed": 0, "error": 0, "other": 0,
                "p50_ms": 1.0, "p95_ms": 2.0, "p99_ms": 3.0,
            }
        ]
        scale = {
            "n_base": 10, "dim": 4, "k": 3, "concurrency": [2],
            "open_rates": [], "repetitions": 1, "duration_seconds": 0.1,
        }
        json_path = bench_load.write_results(
            rows, scale, True, smoke=True, out_dir=str(tmp_path)
        )
        assert Path(json_path) == tmp_path / "bench_load_smoke.json"
        payload = json.loads(Path(json_path).read_text())
        assert set(payload) >= {"benchmark", "smoke", "scale", "rows"}
        assert payload["benchmark"] == "bench_load"
        assert payload["smoke"] is True
        assert payload["saturation_qps"] == 100.0
        assert payload["drain_clean"] is True
        assert (tmp_path / "bench_load_smoke.txt").exists()
        bench_load.check_serving(rows, True)

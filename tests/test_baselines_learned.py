"""Tests for Neural LSH, Regression LSH, LSH, trees, and the boosted forest."""

import numpy as np
import pytest

from repro.baselines import (
    BoostedSearchForestIndex,
    CrossPolytopeLshIndex,
    HyperplaneLshIndex,
    KdTreeIndex,
    NeuralLshConfig,
    NeuralLshIndex,
    PcaTreeIndex,
    RandomProjectionTreeIndex,
    RegressionLshIndex,
    TwoMeansTreeIndex,
)
from repro.eval import candidate_recall, knn_accuracy
from repro.utils.exceptions import ValidationError


@pytest.fixture(scope="module")
def neural_lsh_index(tiny_dataset, tiny_knn):
    config = NeuralLshConfig(n_bins=4, k_prime=8, hidden_dim=32, epochs=20, seed=0)
    return NeuralLshIndex(config).build(tiny_dataset.base, knn=tiny_knn)


class TestNeuralLsh:
    def test_balanced_assignments(self, neural_lsh_index, tiny_dataset):
        sizes = neural_lsh_index.bin_sizes()
        assert sizes.sum() == tiny_dataset.n_points
        assert sizes.max() <= np.ceil(1.06 * tiny_dataset.n_points / 4)

    def test_classifier_agrees_with_partition_mostly(self, neural_lsh_index, tiny_dataset):
        """The routing classifier should reproduce the graph-partition labels
        on the training points much better than chance."""
        predicted = neural_lsh_index.model.predict_bins(tiny_dataset.base)
        agreement = (predicted == neural_lsh_index.assignments).mean()
        assert agreement > 0.5

    def test_query_accuracy_improves_with_probes(self, neural_lsh_index, tiny_dataset):
        one, _ = neural_lsh_index.batch_query(tiny_dataset.queries, 10, n_probes=1)
        four, _ = neural_lsh_index.batch_query(tiny_dataset.queries, 10, n_probes=4)
        acc_one = knn_accuracy(one, tiny_dataset.ground_truth, 10)
        acc_four = knn_accuracy(four, tiny_dataset.ground_truth, 10)
        assert acc_four >= acc_one
        assert acc_four == pytest.approx(1.0)

    def test_timing_breakdown_available(self, neural_lsh_index):
        assert neural_lsh_index.preprocessing_seconds() > 0
        assert neural_lsh_index.training_seconds() > 0
        assert neural_lsh_index.edge_cut is not None

    def test_num_parameters_matches_architecture(self, neural_lsh_index, tiny_dataset):
        dim, hidden, bins = tiny_dataset.dim, 32, 4
        expected = dim * hidden + hidden + 2 * hidden + hidden * bins + bins
        assert neural_lsh_index.num_parameters() == expected

    def test_config_overrides(self):
        index = NeuralLshIndex(NeuralLshConfig(n_bins=8), n_bins=16)
        assert index.config.n_bins == 16

    def test_logistic_variant(self, tiny_dataset, tiny_knn):
        config = NeuralLshConfig(n_bins=2, k_prime=8, model="logistic", epochs=5, seed=0)
        index = NeuralLshIndex(config).build(tiny_dataset.base, knn=tiny_knn)
        assert index.num_parameters() == tiny_dataset.dim * 2 + 2


class TestRegressionLsh:
    def test_build_and_query(self, tiny_dataset):
        index = RegressionLshIndex(depth=2, epochs=5, seed=0).build(tiny_dataset.base)
        assert index.n_bins == 4
        assert index.bin_sizes().sum() == tiny_dataset.n_points
        indices, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_leaf_scores_are_distribution(self, tiny_dataset):
        index = RegressionLshIndex(depth=2, epochs=3, seed=0).build(tiny_dataset.base)
        scores = index.bin_scores(tiny_dataset.queries)
        np.testing.assert_allclose(scores.sum(axis=1), np.ones(tiny_dataset.n_queries), atol=1e-6)


class TestLsh:
    def test_cross_polytope_bins_and_query(self, tiny_dataset):
        index = CrossPolytopeLshIndex(8, seed=0).build(tiny_dataset.base)
        assert index.n_bins == 8
        indices, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=8)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_cross_polytope_odd_bins_rejected(self):
        with pytest.raises(ValidationError):
            CrossPolytopeLshIndex(7)

    def test_cross_polytope_too_many_projections(self):
        with pytest.raises(ValidationError):
            CrossPolytopeLshIndex(64, seed=0).build(np.random.default_rng(0).normal(size=(50, 8)))

    def test_cross_polytope_assignment_matches_best_score(self, tiny_dataset):
        index = CrossPolytopeLshIndex(8, seed=0).build(tiny_dataset.base)
        scores = index.bin_scores_raw(tiny_dataset.base)
        np.testing.assert_array_equal(index.assignments, scores.argmax(axis=1))

    def test_hyperplane_lsh_bucket_count(self, tiny_dataset):
        index = HyperplaneLshIndex(3, seed=0).build(tiny_dataset.base)
        assert index.n_bins == 8
        assert index.assignments.max() < 8

    def test_hyperplane_lsh_multiprobe_monotone(self, tiny_dataset):
        index = HyperplaneLshIndex(3, seed=0).build(tiny_dataset.base)
        one = index.candidate_sets(tiny_dataset.queries, 1)
        two = index.candidate_sets(tiny_dataset.queries, 2)
        assert all(len(b) >= len(a) for a, b in zip(one, two))

    def test_hyperplane_lsh_own_bucket_ranked_first(self, tiny_dataset):
        index = HyperplaneLshIndex(3, seed=0).build(tiny_dataset.base)
        # A base point used as query should rank its own bucket first.
        ranked = index.ranked_bins(tiny_dataset.base[:20])
        np.testing.assert_array_equal(ranked[:, 0], index.assignments[:20])

    def test_too_many_hyperplanes_rejected(self):
        with pytest.raises(ValidationError):
            HyperplaneLshIndex(25)


TREE_CLASSES = [PcaTreeIndex, RandomProjectionTreeIndex, KdTreeIndex, TwoMeansTreeIndex]


class TestHyperplaneTrees:
    @pytest.mark.parametrize("tree_class", TREE_CLASSES)
    def test_build_assigns_all_points(self, tree_class, tiny_dataset):
        index = tree_class(depth=3, seed=0).build(tiny_dataset.base)
        assert index.n_bins == 8
        assert index.bin_sizes().sum() == tiny_dataset.n_points

    @pytest.mark.parametrize("tree_class", TREE_CLASSES)
    def test_full_probe_perfect_recall(self, tree_class, tiny_dataset):
        index = tree_class(depth=2, seed=0).build(tiny_dataset.base)
        indices, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_median_splits_are_balanced(self, tiny_dataset):
        index = PcaTreeIndex(depth=3, seed=0).build(tiny_dataset.base)
        sizes = index.bin_sizes()
        assert sizes.max() <= 2 * np.ceil(tiny_dataset.n_points / 8)

    def test_two_means_better_than_random_projection_on_clustered_data(self, tiny_dataset):
        two_means = TwoMeansTreeIndex(depth=3, seed=0).build(tiny_dataset.base)
        rp = RandomProjectionTreeIndex(depth=3, seed=0).build(tiny_dataset.base)
        tm_recall = candidate_recall(
            two_means.candidate_sets(tiny_dataset.queries, 1), tiny_dataset.ground_truth, 10
        )
        rp_recall = candidate_recall(
            rp.candidate_sets(tiny_dataset.queries, 1), tiny_dataset.ground_truth, 10
        )
        assert tm_recall >= rp_recall - 0.05

    def test_depth_validation(self):
        with pytest.raises(ValidationError):
            PcaTreeIndex(depth=20)

    def test_num_parameters(self, tiny_dataset):
        index = KdTreeIndex(depth=2, seed=0).build(tiny_dataset.base)
        # 3 internal nodes, each storing a normal (dim) and an offset.
        assert index.num_parameters() == 3 * (tiny_dataset.dim + 1)

    def test_duplicate_points_do_not_break_splits(self):
        points = np.ones((64, 4))
        index = RandomProjectionTreeIndex(depth=2, seed=0).build(points)
        assert index.bin_sizes().sum() == 64


class TestBoostedSearchForest:
    def test_build_and_query(self, tiny_dataset, tiny_knn):
        forest = BoostedSearchForestIndex(n_trees=2, depth=2, seed=0).build(
            tiny_dataset.base, knn=tiny_knn
        )
        assert forest.n_bins == 4
        indices, _ = forest.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.8

    def test_trees_differ(self, tiny_dataset, tiny_knn):
        forest = BoostedSearchForestIndex(n_trees=2, depth=2, seed=0).build(
            tiny_dataset.base, knn=tiny_knn
        )
        assert (forest.trees[0].assignments != forest.trees[1].assignments).any()

    def test_forest_recall_at_least_single_tree(self, tiny_dataset, tiny_knn):
        forest = BoostedSearchForestIndex(n_trees=3, depth=2, seed=0).build(
            tiny_dataset.base, knn=tiny_knn
        )
        forest_recall = candidate_recall(
            forest.candidate_sets(tiny_dataset.queries, 1), tiny_dataset.ground_truth, 10
        )
        single_recall = candidate_recall(
            forest.trees[0].candidate_sets(tiny_dataset.queries, 1),
            tiny_dataset.ground_truth,
            10,
        )
        assert forest_recall >= single_recall - 0.05

    def test_num_parameters(self, tiny_dataset, tiny_knn):
        forest = BoostedSearchForestIndex(n_trees=2, depth=2, seed=0).build(
            tiny_dataset.base, knn=tiny_knn
        )
        assert forest.num_parameters() == sum(t.num_parameters() for t in forest.trees)

    def test_not_built_error(self):
        from repro.utils.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            BoostedSearchForestIndex().batch_query(np.zeros((1, 4)), 5)

"""Smoke tests for the experiment runners behind the benchmark harness.

The full-scale runs live under ``benchmarks/``; these tests run the same
code paths at a tiny scale so regressions in the runners are caught by the
fast test suite.
"""

import numpy as np
import pytest

from repro.datasets import sift_like
from repro.eval import (
    run_figure6,
    run_figure7,
    run_table3,
    run_table4,
    speedup_at_accuracy,
)
from repro.eval.experiments import ExperimentScale, _square_levels


@pytest.fixture(scope="module")
def runner_dataset():
    return sift_like(n_points=700, n_queries=40, dim=32, n_clusters=6, seed=17)


class TestSquareLevels:
    def test_perfect_square(self):
        assert tuple(_square_levels(256)) == (16, 16)
        assert tuple(_square_levels(64)) == (8, 8)

    def test_non_square_factorisation(self):
        levels = _square_levels(32)
        assert int(np.prod(levels)) == 32

    def test_prime_falls_back_to_flat(self):
        assert tuple(_square_levels(13)) == (13,)


class TestFigure6Runner:
    def test_all_methods_present(self, runner_dataset):
        curves = run_figure6(runner_dataset, depth=3, epochs=3, probes=[1, 4, 8])
        methods = {c.method for c in curves}
        assert methods == {
            "USP (logistic tree)",
            "Regression LSH",
            "2-means tree",
            "PCA tree",
            "Random projection tree",
            "Learned KD-tree",
            "Boosted search forest",
        }
        for curve in curves:
            assert len(curve.points) == 3
            assert curve.points[-1].accuracy >= curve.points[0].accuracy - 1e-9


class TestFigure7Runner:
    def test_pipelines_and_speedup(self, runner_dataset):
        curves = run_figure7(
            runner_dataset, n_bins=4, epochs=4, probes=[1, 4], include_hnsw=False
        )
        methods = {c.method for c in curves}
        assert {"USP + ScaNN", "K-means + ScaNN", "ScaNN (no partition)", "FAISS (IVF-PQ)"} <= methods
        for curve in curves:
            for point in curve.points:
                assert point.queries_per_second > 0
                assert 0.0 <= point.accuracy <= 1.0
        ratio = speedup_at_accuracy(curves, "ScaNN (no partition)", "USP + ScaNN", 0.3)
        assert ratio > 0


class TestTableRunners:
    def test_table3_rows(self):
        scale = ExperimentScale.tiny()
        rows = run_table3(
            scale=scale,
            configurations=[
                {"dataset": "sift-like", "n_bins": 4, "epochs": 2},
                {"dataset": "sift-like", "n_bins": 8, "epochs": 2},
            ],
            ensemble_size=1,
        )
        assert len(rows) == 2
        assert all(row["training_seconds"] > 0 for row in rows)
        assert rows[0]["n_bins"] == 4 and rows[1]["n_bins"] == 8

    def test_table4_relative_reduction(self, runner_dataset):
        results = run_table4(
            runner_dataset, n_bins=4, target_accuracy=0.8, ensemble_size=1, epochs=4
        )
        assert "usp_candidate_size" in results
        assert results["usp_candidate_size"] > 0
        for method in ("Neural LSH", "K-means"):
            assert method in results
            value = results[method]
            assert np.isnan(value) or -1.0 <= value <= 1.0

"""Tests for repro.nn.layers and repro.nn.init."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Softmax,
    Tanh,
    Tensor,
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_uniform,
)


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        w = glorot_uniform(100, 50, rng=0)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.abs(w).max() <= limit

    def test_glorot_normal_std(self):
        w = glorot_normal(400, 400, rng=0)
        assert np.std(w) == pytest.approx(np.sqrt(2.0 / 800), rel=0.1)

    def test_he_uniform_shape(self):
        assert he_uniform(10, 20, rng=1).shape == (10, 20)

    def test_initializers_reproducible(self):
        np.testing.assert_array_equal(glorot_uniform(5, 5, rng=3), glorot_uniform(5, 5, rng=3))

    def test_get_initializer_unknown(self):
        with pytest.raises(ValueError):
            get_initializer("nope")


class TestLinear:
    def test_forward_shape_and_value(self):
        layer = Linear(4, 3, rng=0)
        x = np.ones((2, 4))
        out = layer(Tensor(x))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_parameter_count(self):
        assert Linear(10, 5, rng=0).num_parameters() == 55

    def test_gradients_reach_weight_and_bias(self):
        layer = Linear(3, 2, rng=0)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(5, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 5.0))


class TestActivationsAndDropout:
    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([[-1.0, 1.0]])))
        np.testing.assert_array_equal(out.data, [[0.0, 1.0]])

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.zeros((1, 2))))
        np.testing.assert_array_equal(out.data, np.zeros((1, 2)))

    def test_softmax_module_rows_sum_to_one(self):
        out = Softmax()(Tensor(np.random.default_rng(0).normal(size=(4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = np.random.default_rng(0).normal(size=(10, 10))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_dropout_scales_in_train(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((2000, 10))
        out = layer(Tensor(x)).data
        # Inverted dropout keeps the expectation: mean stays near 1.
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_zero_probability_is_identity(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_normalizes_batch_in_training(self):
        bn = BatchNorm1d(4)
        x = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(256, 4))
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=0), np.ones(4), atol=1e-2)

    def test_running_stats_updated(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = np.full((8, 2), 10.0)
        bn(Tensor(x))
        assert bn._buffers["running_mean"][0] == pytest.approx(5.0)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm1d(2, momentum=1.0)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(64, 2)) * 2 + 3
        bn(Tensor(x))  # one training pass sets running stats
        bn.eval()
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(2), atol=0.1)

    def test_gradients_flow_to_gamma_beta(self):
        bn = BatchNorm1d(3)
        out = bn(Tensor(np.random.default_rng(0).normal(size=(16, 3))))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestModuleAndSequential:
    def _small_net(self):
        return Sequential(Linear(4, 8, rng=0), BatchNorm1d(8), ReLU(), Linear(8, 3, rng=1))

    def test_parameters_recursion(self):
        net = self._small_net()
        # 4*8+8 + (8+8) + 8*3+3 = 40 + 16 + 27
        assert net.num_parameters() == 83
        assert len(net.parameters()) == 6

    def test_named_parameters_have_prefixes(self):
        names = dict(self._small_net().named_parameters())
        assert "0.weight" in names and "3.bias" in names

    def test_train_eval_propagates(self):
        net = self._small_net()
        net.eval()
        assert all(not m.training for m in net)
        net.train()
        assert all(m.training for m in net)

    def test_zero_grad_clears(self):
        net = self._small_net()
        net(Tensor(np.ones((4, 4)))).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_sequential_iteration_and_indexing(self):
        net = self._small_net()
        assert len(net) == 4
        assert isinstance(net[0], Linear)
        assert isinstance(list(net)[2], ReLU)

    def test_sequential_append(self):
        net = Sequential(Linear(2, 2, rng=0))
        net.append(ReLU())
        assert len(net) == 2

    def test_state_dict_roundtrip(self):
        net = self._small_net()
        other = self._small_net()
        # Perturb and restore.
        state = net.state_dict()
        for p in other.parameters():
            p.data += 1.0
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_state_dict_rejects_unknown_key(self):
        net = self._small_net()
        with pytest.raises(KeyError):
            net.load_state_dict({"nope.weight": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        net = self._small_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_custom_module_registration(self):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.scale = Parameter(np.array([2.0]))
                self.inner = Linear(2, 2, rng=0)

            def forward(self, x):
                return self.inner(x) * self.scale

        module = Custom()
        assert len(module.parameters()) == 3
        out = module(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert module.scale.grad is not None

"""Tests for the autodiff engine (repro.nn.tensor).

Every differentiable op is validated against a central-difference numerical
gradient; additional tests cover broadcasting, graph traversal, and the API
surface (detach/item/reshape/...).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, as_tensor, stack_rows


def numerical_gradient(fn, value, eps=1e-6):
    """Central-difference gradient of a scalar function of one array."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        plus = flat.copy()
        minus = flat.copy()
        plus[i] += eps
        minus[i] -= eps
        grad_flat[i] = (fn(plus.reshape(value.shape)) - fn(minus.reshape(value.shape))) / (2 * eps)
    return grad


def check_gradient(build, value, atol=1e-5):
    """Compare autodiff and numerical gradients for ``loss = build(Tensor)``."""
    tensor = Tensor(value, requires_grad=True)
    loss = build(tensor)
    loss.backward()
    numeric = numerical_gradient(lambda v: float(build(Tensor(v, requires_grad=True)).data), value)
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


RNG = np.random.default_rng(0)


class TestBasicOps:
    def test_add_gradient(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: (t + 2.0).sum(), x)

    def test_sub_gradient(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: (5.0 - t).sum(), x)

    def test_mul_gradient(self):
        x = RNG.normal(size=(2, 5))
        other = RNG.normal(size=(2, 5))
        check_gradient(lambda t: (t * other).sum(), x)

    def test_div_gradient(self):
        x = RNG.normal(size=(4,)) + 3.0
        check_gradient(lambda t: (10.0 / t).sum(), x)

    def test_pow_gradient(self):
        x = np.abs(RNG.normal(size=(3, 3))) + 0.5
        check_gradient(lambda t: (t**3).sum(), x)

    def test_neg_gradient(self):
        x = RNG.normal(size=(4,))
        check_gradient(lambda t: (-t).sum(), x)

    def test_matmul_gradient_left(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: (t @ w).sum(), x)

    def test_matmul_gradient_right(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: (Tensor(x) @ t).sum(), w)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestElementwiseFunctions:
    def test_exp_gradient(self):
        check_gradient(lambda t: t.exp().sum(), RNG.normal(size=(3, 3)))

    def test_log_gradient(self):
        check_gradient(lambda t: t.log().sum(), np.abs(RNG.normal(size=(5,))) + 0.5)

    def test_sqrt_gradient(self):
        check_gradient(lambda t: t.sqrt().sum(), np.abs(RNG.normal(size=(5,))) + 0.5)

    def test_relu_gradient(self):
        x = RNG.normal(size=(4, 4))
        x[np.abs(x) < 0.05] = 0.3  # keep away from the kink
        check_gradient(lambda t: t.relu().sum(), x)

    def test_relu_zeroes_negatives(self):
        out = Tensor([[-1.0, 2.0]]).relu()
        np.testing.assert_array_equal(out.data, [[0.0, 2.0]])

    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh().sum(), RNG.normal(size=(3, 2)))

    def test_sigmoid_gradient(self):
        check_gradient(lambda t: t.sigmoid().sum(), RNG.normal(size=(6,)))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis0(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), RNG.normal(size=(3, 4)))

    def test_sum_axis1_keepdims(self):
        check_gradient(
            lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), RNG.normal(size=(3, 4))
        )

    def test_mean_gradient(self):
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), RNG.normal(size=(5, 3)))

    def test_mean_value(self):
        x = np.arange(6, dtype=float).reshape(2, 3)
        assert Tensor(x).mean().item() == pytest.approx(x.mean())

    def test_max_gradient_flows_to_argmax(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.zeros_like(x)
        expected[0, 1] = 1.0
        expected[1, 0] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_max_splits_gradient_between_ties(self):
        x = np.array([[2.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestSoftmaxFamily:
    def test_log_softmax_gradient(self):
        x = RNG.normal(size=(4, 6))
        target = RNG.random((4, 6))
        check_gradient(lambda t: -(t.log_softmax(axis=-1) * target).sum(), x)

    def test_softmax_gradient(self):
        x = RNG.normal(size=(3, 5))
        weights = RNG.random((3, 5))
        check_gradient(lambda t: (t.softmax(axis=-1) * weights).sum(), x)

    def test_softmax_rows_sum_to_one(self):
        probs = Tensor(RNG.normal(size=(10, 7)) * 10).softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(10), atol=1e-12)

    def test_log_softmax_stable_for_large_logits(self):
        out = Tensor([[1e5, 0.0, -1e5]]).log_softmax(axis=-1)
        assert np.isfinite(out.data).all()

    def test_softmax_matches_log_softmax_exp(self):
        x = RNG.normal(size=(4, 4))
        np.testing.assert_allclose(
            Tensor(x).softmax().data, np.exp(Tensor(x).log_softmax().data), atol=1e-12
        )


class TestBroadcasting:
    def test_add_bias_broadcast(self):
        x = RNG.normal(size=(5, 3))
        bias = RNG.normal(size=(3,))
        t = Tensor(bias, requires_grad=True)
        (Tensor(x) + t).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 5.0))

    def test_scalar_times_matrix(self):
        t = Tensor(2.0, requires_grad=True)
        (t * Tensor(np.ones((3, 3)))).sum().backward()
        assert t.grad == pytest.approx(9.0)

    def test_column_broadcast(self):
        col = Tensor(np.ones((4, 1)), requires_grad=True)
        (col * Tensor(np.ones((4, 5)))).sum().backward()
        np.testing.assert_allclose(col.grad, np.full((4, 1), 5.0))


class TestShapeOps:
    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose_gradient(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: (t.T @ w).sum(), RNG.normal(size=(4, 3)))

    def test_take_rows_gradient_scatter_adds(self):
        t = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        t.take_rows(np.array([0, 0, 2])).sum().backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_array_equal(t.grad, expected)


class TestGraphAndApi:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_gradient_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * 3.0 + t * 4.0
        y.sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_diamond_graph_gradient(self):
        t = Tensor(np.array([1.5]), requires_grad=True)
        a = t * 2.0
        b = t * 3.0
        (a * b).sum().backward()
        # d/dt (6 t^2) = 12 t
        np.testing.assert_allclose(t.grad, [18.0])

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        loss = (t * Tensor(d.data)).sum()
        loss.backward()
        np.testing.assert_allclose(t.grad, np.ones(3))

    def test_item_and_len_and_repr(self):
        t = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        assert len(t) == 1
        assert "requires_grad" in repr(t)
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_stack_rows_gradients(self):
        rows = [Tensor(np.ones(3), requires_grad=True) for _ in range(4)]
        stacked = stack_rows(rows)
        assert stacked.shape == (4, 3)
        (stacked * 2.0).sum().backward()
        for row in rows:
            np.testing.assert_allclose(row.grad, np.full(3, 2.0))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=8))
    def test_property_softmax_is_distribution(self, values):
        probs = Tensor(np.array(values)).softmax(axis=-1).data
        assert probs.min() >= 0
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=1, max_size=6))
    def test_property_sum_linearity(self, values):
        x = np.array(values)
        t = Tensor(x, requires_grad=True)
        (t * 2.0 + 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, np.full_like(x, 2.0))

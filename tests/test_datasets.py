"""Tests for repro.datasets (synthetic generators, ANN datasets, IO)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    AnnDataset,
    available_datasets,
    compute_ground_truth,
    from_arrays,
    from_bundle,
    glove_like,
    load_bundle,
    load_dataset,
    make_blobs,
    make_circles,
    make_classification,
    make_gaussian_mixture,
    make_moons,
    mnist_like,
    read_fvecs,
    read_ivecs,
    save_bundle,
    sift_like,
    write_fvecs,
    write_ivecs,
)
from repro.utils.exceptions import DatasetError


class TestSyntheticGenerators:
    def test_blobs_shapes_and_labels(self):
        data = make_blobs(200, n_clusters=4, dim=3, seed=0)
        assert data.points.shape == (200, 3)
        assert data.labels.shape == (200,)
        assert data.n_clusters <= 4

    def test_moons_two_balanced_classes(self):
        data = make_moons(301, seed=0)
        counts = np.bincount(data.labels)
        assert counts.tolist() == [150, 151]
        assert data.dim == 2

    def test_moons_no_noise_on_unit_curves(self):
        data = make_moons(100, noise=0.0, seed=0)
        outer = data.points[data.labels == 0]
        radii = np.linalg.norm(outer, axis=1)
        np.testing.assert_allclose(radii, np.ones_like(radii), atol=1e-9)

    def test_circles_radius_separation(self):
        data = make_circles(200, noise=0.0, factor=0.4, seed=0)
        radii = np.linalg.norm(data.points, axis=1)
        assert radii[data.labels == 0].min() > radii[data.labels == 1].max()

    def test_circles_invalid_factor(self):
        with pytest.raises(DatasetError):
            make_circles(100, factor=1.5)

    def test_classification_cluster_count(self):
        data = make_classification(300, n_clusters=4, dim=2, seed=0)
        assert set(np.unique(data.labels)) <= set(range(4))

    def test_gaussian_mixture_weights_respected(self):
        data = make_gaussian_mixture(
            2000, n_components=2, dim=2, weights=[0.9, 0.1], seed=0
        )
        counts = np.bincount(data.labels, minlength=2)
        assert counts[0] > counts[1] * 4

    def test_gaussian_mixture_invalid_weights(self):
        with pytest.raises(DatasetError):
            make_gaussian_mixture(100, n_components=2, dim=2, weights=[1.0])

    def test_reproducibility(self):
        a = make_moons(50, seed=9).points
        b = make_moons(50, seed=9).points
        np.testing.assert_array_equal(a, b)

    def test_labeled_dataset_length_mismatch(self):
        from repro.datasets.synthetic import LabeledDataset

        with pytest.raises(DatasetError):
            LabeledDataset(np.zeros((3, 2)), np.zeros(2))


class TestGroundTruth:
    def test_matches_manual_argsort(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(60, 4))
        queries = rng.normal(size=(5, 4))
        gt = compute_ground_truth(base, queries, k=7)
        dists = np.linalg.norm(queries[:, None, :] - base[None, :, :], axis=2)
        np.testing.assert_array_equal(gt, np.argsort(dists, axis=1)[:, :7])

    def test_k_clipped(self):
        base = np.eye(3)
        gt = compute_ground_truth(base, base, k=10)
        assert gt.shape == (3, 3)


class TestAnnDatasets:
    def test_sift_like_properties(self):
        data = sift_like(n_points=500, n_queries=20, dim=32, n_clusters=8, seed=0)
        assert data.base.shape == (500, 32)
        assert data.queries.shape == (20, 32)
        assert data.ground_truth.shape[0] == 20
        assert data.base.min() >= 0.0  # descriptor-style non-negative values
        assert data.metric == "euclidean"

    def test_mnist_like_value_range(self):
        data = mnist_like(n_points=300, n_queries=10, dim=64, seed=0)
        assert data.base.min() >= 0.0
        assert data.base.max() <= 255.0
        assert data.dim == 64

    def test_glove_like_unit_norm(self):
        data = glove_like(n_points=200, n_queries=10, dim=25, n_clusters=8, seed=0)
        norms = np.linalg.norm(data.base, axis=1)
        np.testing.assert_allclose(norms, np.ones_like(norms), atol=1e-9)

    def test_ground_truth_is_exact(self):
        data = sift_like(n_points=400, n_queries=15, dim=16, n_clusters=4, seed=1)
        dists = np.linalg.norm(data.queries[:, None, :] - data.base[None, :, :], axis=2)
        np.testing.assert_array_equal(data.ground_truth[:, 0], dists.argmin(axis=1))

    def test_subset_recomputes_ground_truth(self):
        data = sift_like(n_points=500, n_queries=20, dim=16, seed=0)
        small = data.subset(100, 5, gt_k=10)
        assert small.n_points == 100
        assert small.ground_truth.shape == (5, 10)
        assert small.ground_truth.max() < 100

    def test_from_arrays(self):
        rng = np.random.default_rng(0)
        data = from_arrays("custom", rng.normal(size=(50, 8)), rng.normal(size=(5, 8)), gt_k=10)
        assert data.name == "custom"
        assert data.gt_k == 10

    def test_registry(self):
        assert "sift-like" in available_datasets()
        data = load_dataset("sift-like", n_points=100, n_queries=5, dim=8, n_clusters=4)
        assert isinstance(data, AnnDataset)

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            AnnDataset("bad", np.zeros((5, 3)), np.zeros((2, 4)), np.zeros((2, 1)))

    def test_gt_rows_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            AnnDataset("bad", np.zeros((5, 3)), np.zeros((2, 3)), np.zeros((3, 1)))


class TestIO:
    def test_fvecs_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(10, 6)).astype(np.float32)
        path = tmp_path / "vectors.fvecs"
        write_fvecs(path, vectors)
        loaded = read_fvecs(path)
        np.testing.assert_allclose(loaded, vectors, atol=1e-6)

    def test_ivecs_roundtrip(self, tmp_path):
        vectors = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "gt.ivecs"
        write_ivecs(path, vectors)
        np.testing.assert_array_equal(read_ivecs(path), vectors)

    def test_fvecs_max_rows(self, tmp_path):
        vectors = np.zeros((10, 4), dtype=np.float32)
        path = tmp_path / "v.fvecs"
        write_fvecs(path, vectors)
        assert read_fvecs(path, max_rows=3).shape == (3, 4)

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            read_fvecs(tmp_path / "missing.fvecs")

    def test_bundle_roundtrip(self, tmp_path):
        path = tmp_path / "bundle.npz"
        base = np.random.default_rng(0).normal(size=(20, 4))
        queries = base[:3]
        gt = compute_ground_truth(base, queries, 5)
        save_bundle(path, base=base, queries=queries, ground_truth=gt)
        data = from_bundle(str(path))
        np.testing.assert_allclose(data.base, base)
        assert data.gt_k == 5
        raw = load_bundle(path)
        assert set(raw) == {"base", "queries", "ground_truth"}

    def test_bundle_missing_arrays(self, tmp_path):
        path = tmp_path / "partial.npz"
        save_bundle(path, base=np.zeros((3, 2)))
        with pytest.raises(DatasetError):
            from_bundle(str(path))

    def test_save_bundle_requires_arrays(self, tmp_path):
        with pytest.raises(DatasetError):
            save_bundle(tmp_path / "empty.npz")

    def test_load_dataset_from_npz_path(self, tmp_path):
        path = tmp_path / "mini.npz"
        base = np.random.default_rng(1).normal(size=(30, 4))
        queries = base[:4]
        save_bundle(path, base=base, queries=queries, ground_truth=compute_ground_truth(base, queries, 3))
        data = load_dataset(str(path))
        assert data.n_points == 30


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=20, max_value=120), st.integers(min_value=2, max_value=5))
    def test_blobs_label_range(self, n_points, n_clusters):
        data = make_blobs(n_points, n_clusters=n_clusters, seed=0)
        assert data.points.shape[0] == n_points
        assert data.labels.min() >= 0
        assert data.labels.max() < n_clusters

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=50, max_value=150))
    def test_ground_truth_first_column_is_nearest(self, n_points):
        data = sift_like(n_points=n_points, n_queries=5, dim=8, n_clusters=4, seed=2)
        dists = np.linalg.norm(data.queries[:, None, :] - data.base[None, :, :], axis=2)
        chosen = dists[np.arange(5), data.ground_truth[:, 0]]
        np.testing.assert_allclose(chosen, dists.min(axis=1), atol=1e-9)

"""Property tests for the wire forms of the serving types (satellite of
the HTTP serving layer).

Every ``as_dict`` must survive ``json.dumps`` → ``json.loads`` →
``from_dict`` with nothing lost: ids and distances bitwise, filters (and
their fingerprints) intact, per-query latencies carried through.  The
HTTP server ships these dicts verbatim, so this is exactly the guarantee
that makes network results comparable to in-process results.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filter import And, Eq, In, Not, Or, Range
from repro.service import QueryRequest
from repro.service.request import BatchResult, QueryResult

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

columns = st.sampled_from(["shop", "price", "labels"])

leaf_predicates = st.one_of(
    st.builds(Eq, columns, st.one_of(st.text(max_size=6), st.integers(-50, 50))),
    st.builds(In, columns, st.lists(st.text(max_size=4), min_size=1, max_size=4)),
    # Range needs at least one bound
    st.builds(Range, columns, st.floats(-100, 0), st.one_of(st.none(), st.floats(0.0001, 100))),
    st.builds(Range, columns, st.none(), st.floats(0.0001, 100)),
)

predicates = st.recursive(
    leaf_predicates,
    lambda children: st.one_of(
        st.builds(lambda a, b: And(a, b), children, children),
        st.builds(lambda a, b: Or(a, b), children, children),
        st.builds(Not, children),
    ),
    max_leaves=4,
)

filters = st.one_of(
    st.none(),
    predicates,
    # boolean mask
    st.lists(st.booleans(), min_size=1, max_size=24).map(
        lambda bits: np.asarray(bits, dtype=bool)
    ),
    # id allowlist
    st.lists(st.integers(0, 500), min_size=1, max_size=16).map(
        lambda ids: np.asarray(ids, dtype=np.int64)
    ),
)

requests = st.builds(
    QueryRequest,
    k=st.integers(1, 64),
    probes=st.one_of(st.none(), st.integers(1, 16)),
    candidate_budget=st.one_of(st.none(), st.integers(1, 4096)),
    filter=filters,
    metadata=st.dictionaries(st.text(max_size=8), json_scalars, max_size=3),
    extra=st.dictionaries(st.text(max_size=8), json_scalars, max_size=3),
)


def over_the_wire(data):
    """The exact transformation an HTTP round-trip applies to a payload."""
    return json.loads(json.dumps(data))


class TestQueryRequestRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(requests)
    def test_as_dict_survives_json(self, request):
        returned = QueryRequest.from_dict(over_the_wire(request.as_dict()))
        assert returned.as_dict() == request.as_dict()
        assert returned.filter_fingerprint() == request.filter_fingerprint()
        assert (
            returned.filter_fingerprint_digest()
            == request.filter_fingerprint_digest()
        )
        assert returned.cache_key() == request.cache_key()

    def test_fingerprint_digest_none_without_filter(self):
        assert QueryRequest(k=3).filter_fingerprint_digest() is None
        digest = QueryRequest(k=3, filter=Eq("shop", "a")).filter_fingerprint_digest()
        assert isinstance(digest, str) and len(digest) == 64


class TestQueryResultRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        requests,
        st.integers(0, 1000),
        st.integers(1, 16),
        st.floats(0, 10, allow_nan=False),
        st.booleans(),
    )
    def test_round_trip(self, request, seed, k, latency, cached):
        rng = np.random.default_rng(seed)
        result = QueryResult(
            ids=rng.integers(0, 10_000, size=k).astype(np.int64),
            distances=np.sort(rng.random(k)),
            request=request,
            latency_seconds=latency,
            cached=cached,
        )
        wire = over_the_wire(result.as_dict())
        returned = QueryResult.from_dict(wire)
        np.testing.assert_array_equal(returned.ids, result.ids)
        np.testing.assert_array_equal(returned.distances, result.distances)
        assert returned.distances.dtype == np.float64
        assert returned.latency_seconds == result.latency_seconds
        assert returned.cached == result.cached
        assert returned.request.as_dict() == request.as_dict()
        assert wire["k"] == result.k
        assert wire["filter_fingerprint"] == request.filter_fingerprint_digest()


class TestBatchResultRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        requests,
        st.integers(0, 1000),
        st.integers(0, 12),  # n_queries: includes the empty batch
        st.integers(1, 8),
        st.floats(0.001, 10, allow_nan=False),
        st.sampled_from(["serial", "parallel", "auto"]),
        st.integers(0, 5),
        st.one_of(st.none(), st.floats(0, 1, allow_nan=False)),
    )
    def test_round_trip(self, request, seed, n, k, elapsed, mode, cache_hits, recall):
        rng = np.random.default_rng(seed)
        result = BatchResult(
            ids=rng.integers(0, 10_000, size=(n, k)).astype(np.int64),
            distances=np.sort(rng.random((n, k)), axis=1),
            request=request.with_updates(k=k),
            elapsed_seconds=elapsed,
            mode=mode,
            cache_hits=min(cache_hits, n),
            recall=recall,
        )
        wire = over_the_wire(result.as_dict())
        returned = BatchResult.from_dict(wire)
        np.testing.assert_array_equal(returned.ids, result.ids)
        np.testing.assert_array_equal(returned.distances, result.distances)
        assert returned.ids.shape == (n, k)
        assert returned.n_queries == n
        assert returned.elapsed_seconds == elapsed
        assert returned.mode == mode
        assert returned.cache_hits == result.cache_hits
        assert returned.recall == recall
        assert returned.request.as_dict() == result.request.as_dict()
        # wire latencies match what in-process iteration reports per query
        assert len(wire["per_query_latency_seconds"]) == n
        for row, wire_latency in zip(result, wire["per_query_latency_seconds"]):
            assert row.latency_seconds == wire_latency

"""Tests for the evaluation harness (metrics, sweeps, reporting, experiments)."""

import numpy as np
import pytest

from repro.eval import (
    ExperimentScale,
    SweepCurve,
    SweepPoint,
    accuracy_candidate_curve,
    average_candidate_size,
    benchmark_dataset,
    candidate_recall,
    default_usp_config,
    format_curves,
    format_frontier_summary,
    format_table,
    knn_accuracy,
    probe_schedule,
    recall_at_k,
    run_table2,
    run_table5,
    speedup_at_accuracy,
    throughput_accuracy_curve,
)
from repro.baselines import KMeansIndex
from repro.utils.exceptions import ValidationError


class TestKnnAccuracy:
    def test_perfect(self):
        gt = np.array([[1, 2, 3], [4, 5, 6]])
        assert knn_accuracy(gt, gt, 3) == pytest.approx(1.0)

    def test_partial_overlap(self):
        retrieved = np.array([[1, 2, 9]])
        gt = np.array([[1, 2, 3]])
        assert knn_accuracy(retrieved, gt, 3) == pytest.approx(2 / 3)

    def test_padding_ignored(self):
        retrieved = np.array([[1, -1, -1]])
        gt = np.array([[1, 2, 3]])
        assert knn_accuracy(retrieved, gt, 3) == pytest.approx(1 / 3)

    def test_order_does_not_matter(self):
        retrieved = np.array([[3, 1, 2]])
        gt = np.array([[1, 2, 3]])
        assert knn_accuracy(retrieved, gt, 3) == pytest.approx(1.0)

    def test_recall_alias(self):
        gt = np.array([[1, 2]])
        assert recall_at_k(gt, gt, 2) == knn_accuracy(gt, gt, 2)

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            knn_accuracy(np.array([[1]]), np.array([[1], [2]]), 1)
        with pytest.raises(ValidationError):
            knn_accuracy(np.array([[1]]), np.array([[1]]), 5)


class TestCandidateMetrics:
    def test_candidate_recall(self):
        candidates = [np.array([1, 2, 3]), np.array([9])]
        gt = np.array([[1, 2], [4, 5]])
        assert candidate_recall(candidates, gt, 2) == pytest.approx(0.5)

    def test_average_candidate_size(self):
        assert average_candidate_size([np.arange(4), np.arange(8)]) == pytest.approx(6.0)

    def test_empty_candidate_sets_rejected(self):
        with pytest.raises(ValidationError):
            average_candidate_size([])

    def test_candidate_recall_length_check(self):
        with pytest.raises(ValidationError):
            candidate_recall([np.array([1])], np.array([[1], [2]]), 1)


class TestSweep:
    def test_probe_schedule_properties(self):
        schedule = probe_schedule(16)
        assert schedule[0] == 1
        assert schedule[-1] == 16
        assert schedule == sorted(set(schedule))

    def test_probe_schedule_small(self):
        assert probe_schedule(2) == [1, 2]

    def test_accuracy_candidate_curve_monotone_candidates(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        curve = accuracy_candidate_curve(index, tiny_dataset, k=10, probes=[1, 2, 4])
        sizes = curve.candidate_sizes()
        assert (np.diff(sizes) > 0).all()
        assert curve.points[-1].accuracy == pytest.approx(1.0)
        assert curve.points[0].candidate_ceiling >= curve.points[0].accuracy - 1e-9

    def test_curve_interpolation(self):
        curve = SweepCurve(
            "m",
            [
                SweepPoint(1, 100.0, 0.5),
                SweepPoint(2, 200.0, 0.9),
            ],
        )
        assert curve.candidate_size_at_accuracy(0.7) == pytest.approx(150.0)
        assert curve.candidate_size_at_accuracy(0.95) == float("inf")
        assert curve.accuracy_at_candidate_size(150.0) == pytest.approx(0.5)
        assert curve.accuracy_at_candidate_size(50.0) == 0.0

    def test_throughput_curve(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        curve = throughput_accuracy_curve(index, tiny_dataset, k=10, probes=[1, 4])
        assert all(p.queries_per_second > 0 for p in curve.points)
        assert curve.points[-1].accuracy >= curve.points[0].accuracy

    def test_speedup_at_accuracy(self):
        fast = SweepCurve("fast", [SweepPoint(1, 0, 0.9, queries_per_second=200.0)])
        slow = SweepCurve("slow", [SweepPoint(1, 0, 0.9, queries_per_second=100.0)])
        assert speedup_at_accuracy([fast, slow], "slow", "fast", 0.85) == pytest.approx(2.0)
        assert np.isnan(speedup_at_accuracy([fast], "missing", "fast", 0.5))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_curves_contains_methods(self):
        curve = SweepCurve("methodX", [SweepPoint(1, 10.0, 0.5)])
        assert "methodX" in format_curves([curve])

    def test_format_frontier_summary_unreached(self):
        curve = SweepCurve("m", [SweepPoint(1, 10.0, 0.5)])
        text = format_frontier_summary([curve], (0.9,))
        assert "unreached" in text


class TestExperimentRunners:
    def test_benchmark_dataset_scales(self):
        scale = ExperimentScale.tiny()
        data = benchmark_dataset("sift-like", scale)
        assert data.n_points == scale.sift_points
        data = benchmark_dataset("mnist-like", scale)
        assert data.dim == scale.mnist_dim
        with pytest.raises(ValueError):
            benchmark_dataset("glove")

    def test_default_usp_config(self):
        config = default_usp_config(16)
        assert config.n_bins == 16
        assert default_usp_config(256).eta >= config.eta

    def test_table2_ordering_matches_paper(self):
        counts = run_table2()
        assert counts["Neural LSH"] > counts["USP (ours)"] > counts["K-means"]
        # The paper reports ~729k / ~183k / ~33k; check the right ballpark.
        assert 500_000 < counts["Neural LSH"] < 1_000_000
        assert 100_000 < counts["USP (ours)"] < 300_000
        assert counts["K-means"] == 128 * 256

    def test_table5_rows_complete(self):
        rows = run_table5(n_points=150, include_spectral=False)
        datasets = {row["dataset"] for row in rows}
        methods = {row["method"] for row in rows}
        assert len(datasets) == 3
        assert {"USP (ours)", "DBSCAN", "K-means"} <= methods
        for row in rows:
            assert -1.0 <= row["ari"] <= 1.0
            assert 0.0 <= row["nmi"] <= 1.0

"""Tests for the sharded, mutable composite index layer (repro.shard).

The central guarantees:

* **merge correctness** — a ``ShardedIndex`` over ``bruteforce`` shards
  returns exactly the neighbours a single ``bruteforce`` index returns
  on the concatenated data, for any shard count and metric (property
  test over random datasets; continuous random vectors make exact
  distance ties measure-zero — on data with duplicate vectors the merge
  guarantees the same neighbour *set* with ids-ascending tie order,
  while a monolithic scan's tie order is arbitrary);
* **mutability** — ``add`` / ``remove`` / ``compact`` change query
  results immediately, keep global ids stable, and survive save/load;
* **deployment persistence** — a sharded deployment round-trips through
  ``Router.save`` / ``Router.load`` as a directory of shard artifacts
  plus manifests.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MutableIndex, load_index, make_index
from repro.datasets import sift_like
from repro.service import QueryRequest, Router, SearchService
from repro.shard import (
    ContiguousPartitioner,
    KMeansRoutePartitioner,
    RoundRobinPartitioner,
    ShardedIndex,
    available_partitioners,
    make_partitioner,
)
from repro.utils.distances import pairwise_topk
from repro.utils.exceptions import ConfigurationError, NotFittedError, ValidationError


def clustered_points(seed: int, n: int, dim: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(4, dim))
    labels = rng.integers(0, 4, size=n)
    return centers[labels] + rng.normal(size=(n, dim))


@pytest.fixture(scope="module")
def shard_dataset():
    return sift_like(n_points=400, n_queries=24, dim=16, n_clusters=4, gt_k=10, seed=5)


# ---------------------------------------------------------------------- #
# partitioners
# ---------------------------------------------------------------------- #
class TestPartitioners:
    def test_registry(self):
        assert available_partitioners() == ("contiguous", "kmeans", "round-robin")
        with pytest.raises(ConfigurationError, match="unknown partitioner"):
            make_partitioner("alphabetical")

    @pytest.mark.parametrize("name", ["round-robin", "contiguous", "kmeans"])
    def test_every_point_gets_a_shard(self, name, shard_dataset):
        partitioner = make_partitioner(name)
        labels = partitioner.partition(shard_dataset.base, 4)
        assert labels.shape == (shard_dataset.n_points,)
        assert labels.min() >= 0 and labels.max() < 4

    def test_round_robin_is_balanced_and_cursor_persists(self):
        partitioner = RoundRobinPartitioner()
        labels = partitioner.partition(np.zeros((10, 3)), 4)
        assert np.bincount(labels, minlength=4).max() <= 3
        # routing continues the deal where the build left off
        routed = partitioner.route(np.zeros((2, 3)), 4)
        assert routed.tolist() == [(10 + i) % 4 for i in range(2)]

    def test_contiguous_blocks_and_least_loaded_routing(self):
        partitioner = ContiguousPartitioner()
        labels = partitioner.partition(np.zeros((9, 2)), 3)
        assert labels.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        routed = partitioner.route(np.zeros((2, 2)), 3, shard_sizes=[5, 1, 4])
        assert routed.tolist() == [1, 1]

    def test_kmeans_routes_to_nearest_centroid(self):
        points = clustered_points(0, 120, 4)
        partitioner = KMeansRoutePartitioner(seed=0)
        labels = partitioner.partition(points, 3)
        routed = partitioner.route(points[:10], 3)
        np.testing.assert_array_equal(routed, labels[:10])
        with pytest.raises(ValidationError, match="before partition"):
            KMeansRoutePartitioner().route(points[:1], 3)


# ---------------------------------------------------------------------- #
# merge correctness: sharded bruteforce == single bruteforce
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("metric", ["euclidean", "cosine"])
@pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
class TestShardedEqualsUnsharded:
    """Acceptance: the scatter-gather merge is provably exact."""

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bruteforce_shards_match_single_index(self, n_shards, metric, seed):
        points = clustered_points(seed, 90 + seed % 40, 6)
        queries = clustered_points(seed + 1, 8, 6)
        single = make_index("bruteforce", metric=metric).build(points)
        sharded = ShardedIndex(n_shards, metric=metric).build(points)
        expected_ids, expected_distances = single.batch_query(queries, 10)
        got_ids, got_distances = sharded.batch_query(queries, 10)
        np.testing.assert_array_equal(expected_ids, got_ids)
        np.testing.assert_allclose(expected_distances, got_distances, rtol=1e-12)


@pytest.mark.parametrize("partitioner", ["round-robin", "contiguous", "kmeans"])
def test_merge_exact_for_every_partitioner(partitioner, shard_dataset):
    single = make_index("bruteforce").build(shard_dataset.base)
    sharded = ShardedIndex(3, partitioner=partitioner).build(shard_dataset.base)
    expected, _ = single.batch_query(shard_dataset.queries, 10)
    got, _ = sharded.batch_query(shard_dataset.queries, 10)
    np.testing.assert_array_equal(expected, got)


@pytest.mark.parametrize("parallel", ["serial", "thread", "process"])
def test_parallel_modes_build_identical_indexes(parallel, shard_dataset):
    index = ShardedIndex(3, parallel=parallel).build(shard_dataset.base)
    reference = ShardedIndex(3, parallel="serial").build(shard_dataset.base)
    got, _ = index.batch_query(shard_dataset.queries, 5)
    expected, _ = reference.batch_query(shard_dataset.queries, 5)
    np.testing.assert_array_equal(expected, got)
    index.close()


def test_more_shards_than_points_leaves_empty_shards_harmless():
    points = np.arange(10, dtype=np.float64).reshape(5, 2)
    index = ShardedIndex(7).build(points)
    ids, distances = index.batch_query(points, 3)
    np.testing.assert_array_equal(ids[:, 0], np.arange(5))
    assert np.isfinite(distances[:, :3]).all()


def test_mixed_backends_in_one_composite(shard_dataset):
    index = ShardedIndex(
        3,
        spec=["bruteforce", "kmeans", "ivf-flat"],
        shard_params=[{}, dict(n_bins=4, seed=0), dict(n_lists=4, seed=0)],
    ).build(shard_dataset.base)
    # probes is translated per shard: n_probes for kmeans/ivf, nothing for
    # the exact shard — one request shape drives all three backends.
    ids, _ = index.batch_query(shard_dataset.queries, 5, probes=4)
    assert ids.shape == (shard_dataset.n_queries, 5)
    assert {type(s).__name__ for s in index._shards} == {
        "BruteForceIndex",
        "KMeansIndex",
        "IVFFlatIndex",
    }


def test_configuration_errors(shard_dataset):
    with pytest.raises(ConfigurationError, match="one backend per shard"):
        ShardedIndex(3, spec=["bruteforce"])
    with pytest.raises(ConfigurationError, match="does not support metric"):
        ShardedIndex(2, spec="ivf-flat", metric="cosine")
    with pytest.raises(ConfigurationError, match="unknown parallel mode"):
        ShardedIndex(2, parallel="quantum")
    with pytest.raises(NotFittedError):
        ShardedIndex(2).batch_query(shard_dataset.queries, 5)


# ---------------------------------------------------------------------- #
# mutability: add / remove / compact
# ---------------------------------------------------------------------- #
class TestMutation:
    @pytest.fixture()
    def mutable_index(self, shard_dataset):
        return ShardedIndex(3, compact_threshold=None).build(shard_dataset.base)

    def test_satisfies_mutable_protocol(self, mutable_index):
        assert isinstance(mutable_index, MutableIndex)
        assert type(mutable_index).capabilities.mutable

    def test_added_vectors_are_found_immediately(self, mutable_index, shard_dataset):
        rng = np.random.default_rng(0)
        new = rng.normal(size=(5, shard_dataset.dim))
        ids = mutable_index.add(new)
        np.testing.assert_array_equal(
            ids, np.arange(shard_dataset.n_points, shard_dataset.n_points + 5)
        )
        got, _ = mutable_index.batch_query(new, 1)
        np.testing.assert_array_equal(got[:, 0], ids)
        assert mutable_index.n_pending == 5
        assert mutable_index.n_points == shard_dataset.n_points + 5

    def test_removed_ids_disappear_immediately(self, mutable_index, shard_dataset):
        target, _ = mutable_index.query(shard_dataset.queries[0], 1)
        assert mutable_index.remove(target) == 1
        ids, _ = mutable_index.batch_query(shard_dataset.queries, 10)
        assert not np.isin(ids, target).any()
        assert mutable_index.n_tombstones == 1

    def test_remove_validates_ids(self, mutable_index):
        with pytest.raises(ValidationError, match="ids must be in"):
            mutable_index.remove([10_000])
        mutable_index.remove([3])
        with pytest.raises(ValidationError, match="already removed"):
            mutable_index.remove([3])

    def test_version_counter_tracks_mutations(self, mutable_index, shard_dataset):
        assert mutable_index.version == 0
        mutable_index.add(np.zeros((1, shard_dataset.dim)))
        mutable_index.remove([0])
        mutable_index.compact()
        assert mutable_index.version == 3

    def test_mutated_results_match_fresh_exact_index(self, mutable_index, shard_dataset):
        """Queries against the mutated composite == exact scan of the live set."""
        rng = np.random.default_rng(1)
        added = rng.normal(size=(10, shard_dataset.dim))
        new_ids = mutable_index.add(added)
        removed = np.concatenate([[0, 5, 11], new_ids[:2]])
        mutable_index.remove(removed)

        all_data = np.vstack([shard_dataset.base, added])
        live = np.setdiff1d(np.arange(all_data.shape[0]), removed)
        local, _ = pairwise_topk(shard_dataset.queries, all_data[live], 10)
        expected = live[local]
        got, _ = mutable_index.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, got)

        # compact folds the pending buffer and tombstones into the shards
        # without changing a single answer (global ids are stable)
        mutable_index.compact()
        assert mutable_index.n_pending == 0 and mutable_index.n_tombstones == 0
        recompacted, _ = mutable_index.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, recompacted)

    def test_many_small_adds_stay_exact_through_store_growth(self, shard_dataset):
        """Streaming one-row add() calls (amortised store growth) stay exact."""
        base, extra = shard_dataset.base[:100], shard_dataset.base[100:160]
        index = ShardedIndex(3, compact_threshold=None).build(base)
        for row in extra:
            index.add(row[None, :])
        assert index.n_points == 160 and index.n_pending == 60
        single = make_index("bruteforce").build(shard_dataset.base[:160])
        expected, _ = single.batch_query(shard_dataset.queries, 10)
        got, _ = index.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, got)

    def test_auto_compact_threshold(self, shard_dataset):
        index = ShardedIndex(2, compact_threshold=0.05).build(shard_dataset.base)
        index.add(np.random.default_rng(2).normal(size=(30, shard_dataset.dim)))
        assert index.n_pending == 0  # 30/400 > 5% triggered a compaction
        assert index.version >= 2  # the add and the compaction it triggered

    def test_concurrent_queries_during_mutation_never_tear(self, shard_dataset):
        """Readers racing a compacting writer get pre- or post-state answers.

        A torn shard/id-table pair would remap a shard-local id through
        the wrong table: the returned id would not actually lie at the
        returned distance.  Recomputing distances for every returned id
        catches that, whichever mutation state each query observed.
        """
        import threading

        index = ShardedIndex(4, compact_threshold=None).build(shard_dataset.base)
        queries = shard_dataset.queries[:4]
        failures = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                ids, distances = index.batch_query(queries, 5)
                data = index._data  # rows are append-only, never rewritten
                for row, query in enumerate(queries):
                    valid = ids[row] >= 0
                    actual = np.linalg.norm(data[ids[row][valid]] - query, axis=1)
                    if not np.allclose(actual, distances[row][valid]):
                        failures.append((ids[row], distances[row]))
                        return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        rng = np.random.default_rng(7)
        try:
            for _ in range(10):
                added = index.add(rng.normal(size=(5, shard_dataset.dim)))
                index.remove(added[:2])
                index.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures

    def test_stats_aggregate_per_shard(self, mutable_index, shard_dataset):
        mutable_index.add(np.zeros((2, shard_dataset.dim)))
        mutable_index.remove([1])
        stats = mutable_index.stats()
        assert stats["n_shards"] == 3
        assert stats["pending"] == 2 and stats["tombstones"] == 1
        assert len(stats["shards"]) == 3
        assert sum(s["n_points"] for s in stats["shards"]) == shard_dataset.n_points
        assert 0.0 < stats["shard_balance"] <= 1.0
        assert stats["partitioner"] == "round-robin"


# ---------------------------------------------------------------------- #
# persistence: shard artifacts + manifest, mutations included
# ---------------------------------------------------------------------- #
class TestPersistence:
    def test_saved_layout_is_shard_artifacts_plus_manifest(self, shard_dataset, tmp_path):
        index = ShardedIndex(3).build(shard_dataset.base)
        path = tmp_path / "sharded"
        index.save(path)
        assert (path / "index.json").is_file()
        for shard in range(3):
            assert (path / f"shard-{shard}" / "index.json").is_file()

    def test_mutations_round_trip_through_save_load(self, shard_dataset, tmp_path):
        """Acceptance: add/remove/compact survive persistence."""
        index = ShardedIndex(
            3, partitioner="kmeans", compact_threshold=None
        ).build(shard_dataset.base)
        rng = np.random.default_rng(3)
        new_ids = index.add(rng.normal(size=(8, shard_dataset.dim)))
        index.remove([2, 7, int(new_ids[0])])
        expected, expected_distances = index.batch_query(shard_dataset.queries, 10)

        index.save(tmp_path / "mutated")
        reloaded = load_index(tmp_path / "mutated")
        assert isinstance(reloaded, ShardedIndex)
        assert reloaded.version == index.version
        assert reloaded.n_pending == index.n_pending
        got, got_distances = reloaded.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, got)
        np.testing.assert_array_equal(expected_distances, got_distances)

        # the reloaded index is still mutable: compaction works and keeps answers
        reloaded.compact()
        compacted, _ = reloaded.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, compacted)

    def test_save_after_compact_does_not_resurrect_tombstones(
        self, shard_dataset, tmp_path
    ):
        """Regression: compacted tombstones must stay compacted through save/load."""
        index = ShardedIndex(3, compact_threshold=None).build(shard_dataset.base)
        index.remove(np.arange(30))
        index.compact()
        assert index.n_tombstones == 0
        expected, _ = index.batch_query(shard_dataset.queries, 10)

        index.save(tmp_path / "compacted")
        reloaded = load_index(tmp_path / "compacted")
        assert reloaded.n_tombstones == 0  # no phantom over-fetch or stats
        got, _ = reloaded.batch_query(shard_dataset.queries, 10)
        np.testing.assert_array_equal(expected, got)
        # the first mutation after reload must not trigger a spurious
        # auto-compaction (version advances by exactly the add itself)
        reloaded.compact_threshold = 0.25
        version = reloaded.version
        reloaded.add(shard_dataset.queries[:1])
        assert reloaded.version == version + 1

    def test_per_shard_overfetch_is_local(self, shard_dataset):
        """Removals in one shard must not inflate every other shard's fetch."""
        index = ShardedIndex(4, compact_threshold=None).build(shard_dataset.base)
        victims = index._shard_ids[0][:20]  # all tombstones land in shard 0
        index.remove(victims)
        np.testing.assert_array_equal(index._dead_per_shard, [20, 0, 0, 0])
        single = make_index("bruteforce").build(shard_dataset.base)
        expected, _ = single.batch_query(shard_dataset.queries, 10)
        got, _ = index.batch_query(shard_dataset.queries, 10)
        # merge stays exact: dead ids are filtered, live ranking unchanged
        live_expected = np.where(
            np.isin(expected, victims), -1, expected
        )
        for row_expected, row_got in zip(live_expected, got):
            survivors = row_expected[row_expected >= 0]
            np.testing.assert_array_equal(row_got[: survivors.size], survivors)

    def test_registry_load_dispatches_by_name(self, shard_dataset, tmp_path):
        from repro.api.persistence import saved_index_name

        index = make_index("sharded-kmeans", n_shards=2, shard_params=dict(n_bins=4, seed=0))
        index.build(shard_dataset.base)
        index.save(tmp_path / "by-name")
        assert saved_index_name(tmp_path / "by-name") == "sharded"
        reloaded = load_index(tmp_path / "by-name")
        a, _ = index.batch_query(shard_dataset.queries, 5, probes=2)
        b, _ = reloaded.batch_query(shard_dataset.queries, 5, probes=2)
        np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------------- #
# serving integration: SearchService + Router
# ---------------------------------------------------------------------- #
class TestServingIntegration:
    def test_service_translates_probes_for_the_composite(self, shard_dataset):
        index = make_index(
            "sharded-kmeans", n_shards=2, shard_params=dict(n_bins=4, seed=0)
        ).build(shard_dataset.base)
        service = SearchService(index)
        assert service.query_kwargs(QueryRequest(probes=2)) == {"probes": 2}
        batch = service.search_batch(shard_dataset.queries, QueryRequest(k=5, probes=2))
        direct, _ = index.batch_query(shard_dataset.queries, 5, probes=2)
        np.testing.assert_array_equal(batch.ids, direct)

    def test_service_stats_surface_per_shard_stats(self, shard_dataset):
        index = ShardedIndex(2).build(shard_dataset.base)
        service = SearchService(index)
        service.search_batch(shard_dataset.queries, k=3)
        stats = service.stats()
        assert stats["index"]["n_shards"] == 2
        assert len(stats["index"]["shards"]) == 2

    def test_sharded_deployment_roundtrip_through_router(self, shard_dataset, tmp_path):
        """Acceptance: Router.save / Router.load over a sharded deployment."""
        router = Router()
        sharded = ShardedIndex(3, compact_threshold=None).build(shard_dataset.base)
        sharded.add(np.random.default_rng(4).normal(size=(4, shard_dataset.dim)))
        sharded.remove([1, 9])
        router.add_index("shards", sharded, cache_size=8)
        router.add_index(
            "exact", make_index("bruteforce").build(shard_dataset.base)
        )

        deployment = tmp_path / "deployment"
        router.save(deployment)
        assert (deployment / "indexes" / "shards" / "shard-0" / "index.json").is_file()
        reloaded = Router.load(deployment)
        assert reloaded.names() == router.names()
        for name in router.names():
            before = router.search_batch(shard_dataset.queries, name=name, k=5)
            after = reloaded.search_batch(shard_dataset.queries, name=name, k=5)
            np.testing.assert_array_equal(before.ids, after.ids)
            np.testing.assert_array_equal(before.distances, after.distances)

    def test_router_routes_by_mutability(self, shard_dataset):
        router = Router()
        router.add_index("shards", ShardedIndex(2).build(shard_dataset.base))
        router.add_index("exact", make_index("bruteforce").build(shard_dataset.base))
        assert router.route(mutable=True).name == "shards"
        assert router.route(mutable=False).name == "exact"


# ---------------------------------------------------------------------- #
# sweep integration: sharded curves
# ---------------------------------------------------------------------- #
class TestSweepIntegration:
    def test_candidate_sets_union_global_ids(self, shard_dataset):
        index = ShardedIndex(
            2, spec="kmeans", shard_params=dict(n_bins=4, seed=0)
        ).build(shard_dataset.base)
        candidates = index.candidate_sets(shard_dataset.queries, 2)
        assert len(candidates) == shard_dataset.n_queries
        for row in candidates:
            assert row.dtype == np.int64
            assert row.min() >= 0 and row.max() < shard_dataset.n_points
            assert np.unique(row).size == row.size  # shards are disjoint

    def test_accuracy_curve_over_sharded_index(self, shard_dataset):
        from repro.eval import accuracy_candidate_curve

        index = ShardedIndex(
            2, spec="kmeans", shard_params=dict(n_bins=4, seed=0)
        ).build(shard_dataset.base)
        curve = accuracy_candidate_curve(index, shard_dataset, k=5, probes=[1, 4])
        assert len(curve.points) == 2
        # probing every per-shard bin makes the candidate union everything
        assert curve.points[-1].accuracy == 1.0

    def test_shard_scaling_curve(self, shard_dataset):
        from repro.eval import shard_scaling_curve

        points = shard_scaling_curve(
            shard_dataset, [1, 2], k=5, compare_serial_build=True
        )
        assert [p.n_shards for p in points] == [1, 2]
        assert all(p.accuracy == 1.0 for p in points)  # bruteforce shards stay exact
        assert points[0].build_speedup is None
        assert points[1].serial_build_seconds is not None

"""Tests for the durable storage layer (repro.store).

The central guarantees:

* **WAL integrity** — records are length-prefixed and checksummed; a torn
  final record (the write that crashed) is tolerated and trimmed, while
  mid-log corruption raises a loud typed error instead of silently
  dropping acknowledged operations;
* **crash recovery** — for randomized interleavings of ``add`` /
  ``remove`` / ``set_attributes`` with a simulated crash at an arbitrary
  point (including a WAL truncated mid-record), ``Collection.open()``
  recovers, and filtered + unfiltered queries are bitwise-identical to an
  uncrashed reference applying the same acknowledged operations;
* **checkpoint atomicity** — write-new → fsync → rename → truncate: a
  checkpoint that never completed leaves the previous generation fully
  authoritative;
* **maintenance** — the loop drives checkpoints and compaction from the
  stack's mutation-pressure gauges;
* **serving** — SearchService/Router serve collections, mutating
  endpoints journal before acknowledging, and deployments round-trip.
"""

import shutil
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filter import Range, random_attribute_store
from repro.service import QueryRequest, Router, SearchService
from repro.shard import ShardedIndex
from repro.store import (
    Collection,
    MaintenanceLoop,
    WriteAheadLog,
    is_collection_dir,
    list_generations,
    read_current,
    wal_name,
)
from repro.utils.exceptions import StorageError, ValidationError

DIM = 8


def make_base(n: int = 120, seed: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, DIM))


def build_index(base: np.ndarray, *, with_store: bool = True) -> ShardedIndex:
    index = ShardedIndex(3, compact_threshold=None, parallel="serial").build(base)
    if with_store:
        index.set_attributes(random_attribute_store(base.shape[0], seed=11))
    return index


def attribute_rows(n: int, *, offset: int = 0) -> dict:
    return {
        "price": [float(10 * (offset + i) % 97) for i in range(n)],
        "shop": [f"shop-{(offset + i) % 3}" for i in range(n)],
        "labels": [["new"] if (offset + i) % 2 else [] for i in range(n)],
    }


# ---------------------------------------------------------------------- #
# the write-ahead log
# ---------------------------------------------------------------------- #
class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"seq": 1, "op": "add", "n": 2}, {"vectors": np.eye(2)})
            wal.append({"seq": 2, "op": "remove"}, {"ids": np.array([7, 9])})
            assert wal.n_records == 2
        with WriteAheadLog(path) as wal:
            assert wal.n_records == 2  # reopen continues the count
            records = list(wal.replay())
        assert [r["op"] for r, _ in records] == ["add", "remove"]
        np.testing.assert_array_equal(records[0][1]["vectors"], np.eye(2))
        np.testing.assert_array_equal(records[1][1]["ids"], [7, 9])

    def test_torn_tail_is_tolerated_and_trimmed(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"seq": 1, "op": "add"}, {"vectors": np.ones((1, 4))})
        with open(path, "ab") as handle:
            handle.write(b"\x13\x37")  # a write that died mid-header
        with WriteAheadLog(path) as wal:
            assert wal.n_records == 1
            # the torn bytes were trimmed: appending again stays valid
            wal.append({"seq": 2, "op": "remove"}, {"ids": np.array([0])})
            assert [r["seq"] for r, _ in wal.replay()] == [1, 2]

    def test_truncation_mid_record_drops_only_the_tail(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"seq": 1, "op": "a"}, {})
            wal.append({"seq": 2, "op": "b"}, {"x": np.arange(64.0)})
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 17)  # cut into the final record
        with WriteAheadLog(path) as wal:
            assert [r["seq"] for r, _ in wal.replay()] == [1]

    def test_mid_log_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        with WriteAheadLog(path) as wal:
            wal.append({"seq": 1, "op": "a"}, {"x": np.arange(32.0)})
            first_record_end = wal.n_bytes
            wal.append({"seq": 2, "op": "b"}, {})
        raw = bytearray(path.read_bytes())
        raw[first_record_end - 3] ^= 0xFF  # flip a byte inside record 1
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError, match="corrupt, not torn"):
            list(WriteAheadLog(path).replay())

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"definitely not a wal file")
        with pytest.raises(StorageError, match="bad magic"):
            list(WriteAheadLog(path).replay())

    def test_unknown_sync_mode(self, tmp_path):
        with pytest.raises(ValidationError, match="sync mode"):
            WriteAheadLog(tmp_path / "wal.log", sync="sometimes")

    def test_rollback_trims_a_partial_append(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"seq": 1, "op": "a"}, {})
        with open(path, "ab") as handle:
            handle.write(b"\x99" * 7)  # what a failed append leaves behind
        wal.rollback()
        wal.append({"seq": 2, "op": "b"}, {})
        assert [r["seq"] for r, _ in wal.replay()] == [1, 2]


# ---------------------------------------------------------------------- #
# collection basics
# ---------------------------------------------------------------------- #
class TestCollectionBasics:
    def test_create_requires_built_mutable_index(self, tmp_path):
        from repro.api import make_index

        immutable = make_index("bruteforce").build(make_base(30))
        with pytest.raises(ValidationError, match="mutable"):
            Collection.create(tmp_path / "a", immutable)
        with pytest.raises(ValidationError, match="built"):
            Collection.create(tmp_path / "b", ShardedIndex(2))

    def test_create_refuses_existing_collection(self, tmp_path):
        base = make_base()
        Collection.create(tmp_path / "c", build_index(base)).close()
        assert is_collection_dir(tmp_path / "c")
        with pytest.raises(StorageError, match="already holds a collection"):
            Collection.create(tmp_path / "c", build_index(base))

    def test_mutations_apply_immediately_and_are_acknowledged(self, tmp_path):
        base = make_base()
        collection = Collection.create(tmp_path / "c", build_index(base))
        ids = collection.add(np.ones((2, DIM)), attributes=attribute_rows(2))
        assert ids.tolist() == [120, 121]
        assert collection.wal_ops == 1 and collection.last_seq == 1
        got, _ = collection.query(np.ones(DIM), 1)
        assert got[0] in (120, 121)
        assert collection.remove([int(ids[0])]) == 1
        got, _ = collection.query(np.ones(DIM), 1)
        assert got[0] == 121
        assert collection.wal_ops == 2

    def test_invalid_operations_are_not_journaled(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        with pytest.raises(ValidationError, match="dim"):
            collection.add(np.ones((1, DIM + 3)))
        with pytest.raises(ValidationError, match="not present"):
            collection.remove([10_000])
        with pytest.raises(ValidationError, match="missing columns"):
            collection.add(np.ones((1, DIM)), attributes={"price": [1.0]})
        with pytest.raises(ValidationError, match="ragged"):
            collection.add(
                np.ones((2, DIM)),
                attributes={**attribute_rows(2), "price": [1.0]},
            )
        assert collection.wal_ops == 0  # nothing invalid reached the log

    def test_attribute_alignment_is_enforced(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        collection.add(np.ones((2, DIM)))  # store now lags two ids behind
        with pytest.raises(ValidationError, match="catch the store up"):
            collection.add(np.ones((1, DIM)), attributes=attribute_rows(1))
        with pytest.raises(ValidationError, match="would pass the index"):
            collection.set_attributes(attribute_rows(3))
        collection.set_attributes(attribute_rows(2))  # exact catch-up works
        assert collection.attributes.n_rows == 122

    def test_set_attributes_requires_a_store(self, tmp_path):
        collection = Collection.create(
            tmp_path / "c", build_index(make_base(), with_store=False)
        )
        with pytest.raises(ValidationError, match="no attribute store"):
            collection.set_attributes(attribute_rows(1))

    def test_closed_collection_refuses_writes(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        collection.close()
        with pytest.raises(StorageError, match="closed"):
            collection.add(np.ones((1, DIM)))

    def test_open_rejects_non_collections(self, tmp_path):
        with pytest.raises(StorageError, match="not a collection"):
            Collection.open(tmp_path)


# ---------------------------------------------------------------------- #
# crash recovery: the acceptance property
# ---------------------------------------------------------------------- #
def scripted_state(base_rows: int) -> dict:
    return {
        "total": base_rows,
        "store_rows": base_rows,
        "live": set(range(base_rows)),
    }


def apply_scripted_ops(rng: np.random.Generator, target, n_ops: int, state: dict):
    """Apply a deterministic random op sequence; works for collections and
    for the bare reference index.  ``state`` carries id bookkeeping across
    segments so a checkpoint can be interleaved between two calls."""
    is_collection = isinstance(target, Collection)
    index = target.index if is_collection else target
    store = target.attributes
    for _ in range(n_ops):
        op = rng.choice(["add", "add_attrs", "remove", "set_attributes"])
        if op == "remove" and len(state["live"]) > DIM:
            victims = rng.choice(
                sorted(state["live"]), size=int(rng.integers(1, 3)), replace=False
            )
            state["live"] -= set(int(v) for v in victims)
            if is_collection:
                target.remove(victims)
            else:
                index.remove(victims)
        elif op == "set_attributes" and state["store_rows"] < state["total"]:
            count = int(min(state["total"] - state["store_rows"], rng.integers(1, 3)))
            rows = attribute_rows(count, offset=state["store_rows"])
            if is_collection:
                target.set_attributes(rows)
            else:
                store.extend(rows)
            state["store_rows"] += count
        else:
            count = int(rng.integers(1, 4))
            vectors = rng.normal(size=(count, DIM))
            with_attrs = op == "add_attrs" and state["store_rows"] == state["total"]
            rows = attribute_rows(count, offset=state["total"]) if with_attrs else None
            if is_collection:
                ids = target.add(vectors, attributes=rows)
            else:
                ids = index.add(vectors)
                if rows is not None:
                    store.extend(rows)
            start = state["total"]
            assert ids.tolist() == list(range(start, start + count))
            state["live"] |= set(range(start, start + count))
            state["total"] += count
            if with_attrs:
                state["store_rows"] += count


class TestCrashRecovery:
    """Acceptance: recovery is bitwise-identical to the acknowledged state."""

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_ops=st.integers(min_value=0, max_value=14),
        checkpoint_after=st.integers(min_value=-1, max_value=14),
        torn_tail=st.booleans(),
    )
    def test_recovered_queries_match_uncrashed_reference(
        self, tmp_path_factory, seed, n_ops, checkpoint_after, torn_tail
    ):
        root = tmp_path_factory.mktemp("crash") / "collection"
        base = make_base(seed=seed % 7)
        collection = Collection.create(root, build_index(base))
        rng = np.random.default_rng(seed)
        # Interleave an explicit checkpoint into the op stream so crashes
        # land on every side of a generation flip.
        before = min(checkpoint_after, n_ops) if checkpoint_after >= 0 else n_ops
        state = scripted_state(base.shape[0])
        apply_scripted_ops(rng, collection, before, state)
        if checkpoint_after >= 0:
            collection.checkpoint()
            apply_scripted_ops(rng, collection, n_ops - before, state)
        # -- crash: the process dies without close(); optionally a torn
        # record (a write that never completed) sits at the log's tail.
        if torn_tail:
            with open(root / wal_name(collection.generation), "ab") as handle:
                handle.write(b"\xde\xad\xbe")
        recovered = Collection.open(root)

        # -- uncrashed reference: the same acknowledged ops (a checkpoint
        # is logically a no-op), applied straight to index + store.
        reference = build_index(base)
        reference_rng = np.random.default_rng(seed)
        reference_state = scripted_state(base.shape[0])
        apply_scripted_ops(reference_rng, reference, n_ops, reference_state)

        queries = np.random.default_rng(seed + 1).normal(size=(6, DIM))
        expected_ids, expected_d = reference.batch_query(queries, 10)
        got_ids, got_d = recovered.batch_query(queries, 10)
        np.testing.assert_array_equal(expected_ids, got_ids)
        np.testing.assert_array_equal(expected_d, got_d)
        predicate = Range("price", high=50.0)
        expected_ids, expected_d = reference.batch_query(queries, 10, filter=predicate)
        got_ids, got_d = recovered.batch_query(queries, 10, filter=predicate)
        np.testing.assert_array_equal(expected_ids, got_ids)
        np.testing.assert_array_equal(expected_d, got_d)
        assert recovered.last_seq == collection.last_seq
        recovered.close()

    def test_truncation_mid_record_loses_only_the_unacked_tail(self, tmp_path):
        base = make_base()
        collection = Collection.create(tmp_path / "c", build_index(base))
        collection.add(np.ones((1, DIM)))
        snapshot_before = collection.batch_query(np.ones((1, DIM)), 5)
        wal_path = tmp_path / "c" / wal_name(0)
        acked_size = wal_path.stat().st_size
        collection.add(np.full((1, DIM), 2.0))
        with open(wal_path, "r+b") as handle:
            handle.truncate(acked_size + 9)  # the final record dies mid-write
        recovered = Collection.open(tmp_path / "c")
        # the first add survives, the torn second one never happened
        assert recovered.last_seq == 1
        got = recovered.batch_query(np.ones((1, DIM)), 5)
        np.testing.assert_array_equal(snapshot_before[0], got[0])

    def test_recovery_of_10k_op_wal_is_fast(self, tmp_path):
        base = make_base(400)
        collection = Collection.create(
            tmp_path / "c", build_index(base, with_store=False), sync="never"
        )
        vectors = np.random.default_rng(0).normal(size=(10_000, DIM))
        for row in range(0, 10_000, 10):
            collection.add(vectors[row : row + 10])
        assert collection.wal_ops == 1000 and collection.last_seq == 1000
        collection.close()
        start = time.perf_counter()
        recovered = Collection.open(tmp_path / "c")
        elapsed = time.perf_counter() - start
        assert recovered.index.n_points == 400 + 10_000
        assert elapsed < 30.0, f"recovery took {elapsed:.1f}s"


# ---------------------------------------------------------------------- #
# checkpoints and generations
# ---------------------------------------------------------------------- #
class TestCheckpoints:
    def test_checkpoint_flips_generation_and_truncates_wal(self, tmp_path):
        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        collection.add(np.ones((2, DIM)))
        assert collection.checkpoint() == 1
        assert read_current(root) == 1
        assert collection.wal_ops == 0
        assert (root / wal_name(1)).is_file()
        assert not (root / wal_name(0)).is_file()
        # empty WAL -> checkpoint is a no-op unless forced
        assert collection.checkpoint() == 1
        assert collection.checkpoint(force=True) == 2

    def test_keep_generations_prunes_old_snapshots(self, tmp_path):
        root = tmp_path / "c"
        collection = Collection.create(
            root, build_index(make_base()), keep_generations=2
        )
        for _ in range(4):
            collection.add(np.ones((1, DIM)))
            collection.checkpoint()
        assert list_generations(root) == [3, 4]

    def test_orphan_generation_from_crashed_checkpoint_is_ignored(self, tmp_path):
        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        ids = collection.add(np.ones((1, DIM)))
        collection.close()
        # a checkpoint that died before the CURRENT flip: directory
        # exists, snapshot.json (written last) does not
        orphan = root / "generations" / "gen-0000000001"
        orphan.mkdir()
        (orphan / "half-written").write_text("junk")
        recovered = Collection.open(root)
        assert recovered.generation == 0
        assert recovered.last_seq == 1
        assert recovered.index.contains(ids).all()
        assert list_generations(root) == [0]  # the orphan was swept

    def test_corrupt_current_falls_back_to_previous_generation(self, tmp_path):
        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        collection.add(np.ones((1, DIM)))
        collection.checkpoint()
        collection.close()
        # generation 1 goes bad on disk; generation 0 still loads
        shutil.rmtree(root / "generations" / "gen-0000000001" / "index")
        recovered = Collection.open(root)
        assert recovered.generation == 0
        assert recovered.index.n_points == 120

    def test_failed_append_rolls_back_and_collection_stays_usable(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        collection.add(np.ones((1, DIM)))

        original = WriteAheadLog.append

        def exploding(self, record, arrays=None):
            self._handle.write(b"\x01\x02\x03")  # a partial frame, then death
            raise OSError("disk full")

        monkeypatch.setattr(WriteAheadLog, "append", exploding)
        with pytest.raises(StorageError, match="append failed"):
            collection.add(np.ones((1, DIM)))
        monkeypatch.setattr(WriteAheadLog, "append", original)
        # the partial frame was rolled back: later appends do not bury it
        # as mid-file corruption, and recovery sees exactly the acked ops
        collection.add(np.full((1, DIM), 2.0))
        recovered = Collection.open(root)
        assert recovered.last_seq == 2
        assert recovered.index.n_points == 122

    def test_failed_checkpoint_leaves_old_generation_live(
        self, tmp_path, monkeypatch
    ):
        import repro.store.collection as collection_module

        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        collection.add(np.ones((1, DIM)))

        def exploding(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(collection_module, "write_snapshot", exploding)
        with pytest.raises(OSError):
            collection.checkpoint()
        monkeypatch.undo()
        # nothing flipped: generation 0 is still live, writes still ack,
        # and recovery replays every acknowledged operation
        assert collection.generation == 0 and read_current(root) == 0
        collection.add(np.full((1, DIM), 2.0))
        recovered = Collection.open(root)
        assert recovered.last_seq == 2
        assert recovered.generation == 0

    def test_reopened_collection_continues_the_journal(self, tmp_path):
        root = tmp_path / "c"
        collection = Collection.create(root, build_index(make_base()))
        collection.add(np.ones((1, DIM)))
        collection.close()
        reopened = Collection.open(root)
        reopened.add(np.full((1, DIM), 2.0))
        assert reopened.last_seq == 2
        again = Collection.open(root)
        assert again.last_seq == 2
        assert again.index.n_points == 122


# ---------------------------------------------------------------------- #
# the maintenance loop
# ---------------------------------------------------------------------- #
class TestMaintenance:
    def test_run_once_checkpoints_on_wal_pressure(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        loop = MaintenanceLoop(
            collection, checkpoint_ops=3, compact_pressure=None
        )
        for _ in range(2):
            collection.add(np.ones((1, DIM)))
        assert loop.run_once()["checkpointed"] is False
        collection.add(np.ones((1, DIM)))
        actions = loop.run_once()
        assert actions["checkpointed"] is True and actions["generation"] == 1
        assert collection.wal_ops == 0
        assert loop.checkpoints == 1

    def test_run_once_compacts_on_mutation_pressure(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        loop = MaintenanceLoop(
            collection, checkpoint_ops=None, checkpoint_bytes=None, compact_pressure=0.1
        )
        collection.add(np.random.default_rng(0).normal(size=(30, DIM)))
        assert collection.index.n_pending == 30
        actions = loop.run_once()
        assert actions["compacted"] is True
        assert collection.index.n_pending == 0
        assert loop.run_once()["compacted"] is False  # pressure folded away

    def test_background_thread_runs_the_policy(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        collection.add(np.ones((1, DIM)))
        with MaintenanceLoop(
            collection, checkpoint_ops=1, interval_seconds=0.05
        ) as loop:
            deadline = time.time() + 5.0
            while loop.checkpoints == 0 and time.time() < deadline:
                time.sleep(0.02)
        assert loop.checkpoints >= 1
        assert collection.generation >= 1

    def test_invalid_thresholds(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        with pytest.raises(ValidationError):
            MaintenanceLoop(collection, checkpoint_ops=0)
        with pytest.raises(ValidationError):
            MaintenanceLoop(collection, compact_pressure=-1.0)
        with pytest.raises(ValidationError):
            MaintenanceLoop(collection, interval_seconds=0)


# ---------------------------------------------------------------------- #
# serving collections
# ---------------------------------------------------------------------- #
class TestServingCollections:
    def test_search_service_serves_and_mutates_a_collection(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base()))
        service = SearchService(collection, cache_size=8)
        assert service.name == "c"
        ids = service.add(np.ones((2, DIM)), attributes=attribute_rows(2, offset=120))
        assert collection.wal_ops == 1  # acked through the journal
        service.remove([int(ids[0])])
        result = service.search_batch(np.ones((1, DIM)), QueryRequest(k=3))
        assert int(result.ids[0, 0]) == int(ids[1])
        stats = service.stats()
        assert stats["collection"]["wal_ops"] == 2
        # one of the two pending adds was tombstoned again
        assert stats["mutation"]["n_pending"] == 1
        assert stats["mutation"]["n_tombstones"] == 1
        assert stats["mutation"]["mutation_pressure"] > 0
        assert "cache_hit_ratio" in stats

    def test_mutation_endpoints_on_plain_mutable_index(self, tmp_path):
        index = build_index(make_base())
        service = SearchService(index)
        ids = service.add(np.ones((1, DIM)), attributes=attribute_rows(1, offset=120))
        assert service.remove(ids) == 1
        from repro.api import make_index

        immutable = SearchService(make_index("bruteforce").build(make_base(30)))
        with pytest.raises(ValidationError, match="immutable"):
            immutable.add(np.ones((1, DIM)))

    def test_from_saved_detects_collection_directories(self, tmp_path):
        Collection.create(tmp_path / "c", build_index(make_base())).close()
        service = SearchService.from_saved(tmp_path / "c")
        assert service.collection is not None
        assert service.stats()["collection"]["generation"] == 0

    def test_router_deployment_with_collection_round_trips(self, tmp_path):
        collection = Collection.create(tmp_path / "col", build_index(make_base()))
        router = Router()
        router.add_collection("products", collection, cache_size=4)
        router.add_index(
            "static", build_index(make_base(60, seed=9), with_store=False)
        )
        ids = router.service("products").add(np.ones((1, DIM)))
        queries = np.random.default_rng(1).normal(size=(3, DIM))
        expected = router.search_batch(queries, QueryRequest(k=5), name="products")
        router.save(tmp_path / "deploy")

        reloaded = Router.load(tmp_path / "deploy")
        assert sorted(reloaded.names()) == ["products", "static"]
        got = reloaded.search_batch(queries, QueryRequest(k=5), name="products")
        np.testing.assert_array_equal(expected.ids, got.ids)
        np.testing.assert_array_equal(expected.distances, got.distances)
        # the reloaded service is still durable: mutations journal
        service = reloaded.service("products")
        assert service.collection is not None
        more = service.add(np.full((1, DIM), 3.0))
        assert int(more[0]) == int(ids[0]) + 1

    def test_router_add_collection_from_path(self, tmp_path):
        Collection.create(tmp_path / "c", build_index(make_base())).close()
        router = Router()
        service = router.add_collection("c", tmp_path / "c")
        assert service.collection is not None


# ---------------------------------------------------------------------- #
# read-only collections (the follower side of replication)
# ---------------------------------------------------------------------- #
class TestReadOnlyCollections:
    def test_local_mutations_are_refused_with_a_typed_error(self, tmp_path):
        from repro.store import ReadOnlyError

        Collection.create(tmp_path / "c", build_index(make_base())).close()
        collection = Collection.open(tmp_path / "c", read_only=True)
        assert collection.read_only
        assert collection.stats()["read_only"] is True
        with pytest.raises(ReadOnlyError, match="read-only"):
            collection.add(np.ones((1, DIM)))
        with pytest.raises(ReadOnlyError, match="read-only"):
            collection.remove([0])
        with pytest.raises(ReadOnlyError, match="read-only"):
            collection.set_attributes(attribute_rows(1))
        # reads and maintenance still work: followers answer queries and
        # checkpoint their own replicated WAL
        ids, _ = collection.batch_query(np.ones((2, DIM)), 5)
        assert ids.shape == (2, 5)
        collection.checkpoint(force=True)
        collection.close()

    def test_read_only_error_maps_to_409_not_503(self):
        from repro.net.errors import api_error_from
        from repro.utils.exceptions import ReadOnlyError

        error = api_error_from(ReadOnlyError("nope"))
        assert (error.status, error.code) == (409, "read_only")

    def test_promote_flips_writable_in_place(self, tmp_path):
        Collection.create(tmp_path / "c", build_index(make_base())).close()
        collection = Collection.open(tmp_path / "c", read_only=True)
        promoted = collection.promote()
        assert promoted is collection and not collection.read_only
        ids = collection.add(np.ones((1, DIM)), attributes=attribute_rows(1, offset=120))
        assert ids.size == 1
        collection.close()


# ---------------------------------------------------------------------- #
# WAL partial replay: iter_from
# ---------------------------------------------------------------------- #
class TestWalIterFrom:
    @staticmethod
    def _write_wal(path, n_records: int):
        rng = np.random.default_rng(n_records)
        with WriteAheadLog(path) as wal:
            for seq in range(1, n_records + 1):
                wal.append(
                    {"seq": seq, "op": "add", "n": 1},
                    {"vectors": rng.normal(size=(1, 3))},
                )
        return WriteAheadLog(path)

    @staticmethod
    def _fold(pairs):
        """Reduce a record stream to a comparable state: seqs + running sums."""
        seqs, total = [], 0.0
        for record, arrays in pairs:
            seqs.append(record["seq"])
            total += float(arrays["vectors"].sum())
        return seqs, total

    @settings(max_examples=25, deadline=None)
    @given(
        n_records=st.integers(min_value=0, max_value=12),
        data=st.data(),
    )
    def test_replay_from_any_acked_seq_matches_full_replay(
        self, tmp_path_factory, n_records, data
    ):
        cut = data.draw(st.integers(min_value=0, max_value=n_records))
        path = tmp_path_factory.mktemp("iter-from") / "wal.log"
        with self._write_wal(path, n_records) as wal:
            full = list(wal.replay())
            prefix = [(r, a) for r, a in full if r["seq"] <= cut]
            resumed = list(wal.iter_from(cut))
            # prefix + iter_from(cut) reconstructs exactly the full replay
            prefix_seqs, prefix_sum = self._fold(prefix)
            resumed_seqs, resumed_sum = self._fold(resumed)
            full_seqs, full_sum = self._fold(full)
            assert prefix_seqs + resumed_seqs == full_seqs == list(
                range(1, n_records + 1)
            )
            assert prefix_sum + resumed_sum == pytest.approx(full_sum)

    def test_iter_from_beyond_the_log_is_empty(self, tmp_path):
        with self._write_wal(tmp_path / "wal.log", 3) as wal:
            assert list(wal.iter_from(3)) == []
            assert list(wal.iter_from(99)) == []
            assert [r["seq"] for r, _ in wal.iter_from(0)] == [1, 2, 3]

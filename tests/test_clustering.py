"""Tests for DBSCAN, spectral clustering, metrics, and USP clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    DBSCAN,
    NOISE,
    SpectralClustering,
    UspClustering,
    adjusted_rand_index,
    normalized_mutual_information,
    purity,
    silhouette_score,
)
from repro.core import UspConfig
from repro.datasets import make_blobs, make_circles, make_moons
from repro.utils.exceptions import NotFittedError, ValidationError


class TestMetrics:
    def test_ari_perfect_and_permuted(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        permuted = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(labels, permuted) == pytest.approx(1.0)

    def test_ari_random_near_zero(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 4, 500)
        predicted = rng.integers(0, 4, 500)
        assert abs(adjusted_rand_index(truth, predicted)) < 0.1

    def test_nmi_bounds(self):
        labels = np.array([0, 0, 1, 1])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)
        assert normalized_mutual_information(labels, np.array([0, 1, 0, 1])) < 0.5

    def test_purity(self):
        truth = np.array([0, 0, 1, 1])
        predicted = np.array([0, 0, 0, 1])
        assert purity(truth, predicted) == pytest.approx(0.75)

    def test_silhouette_high_for_separated_blobs(self, blob_points, blob_labels):
        assert silhouette_score(blob_points, blob_labels) > 0.6

    def test_silhouette_requires_two_clusters(self, blob_points):
        with pytest.raises(ValidationError):
            silhouette_score(blob_points, np.zeros(len(blob_points), dtype=int))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            adjusted_rand_index([0, 1], [0, 1, 2])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=30))
    def test_property_ari_symmetric(self, labels):
        labels = np.array(labels)
        other = np.roll(labels, 1)
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=30))
    def test_property_self_agreement_is_perfect(self, labels):
        labels = np.array(labels)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        assert purity(labels, labels) == pytest.approx(1.0)


class TestDbscan:
    def test_recovers_moons(self):
        data = make_moons(300, noise=0.04, seed=0)
        labels = DBSCAN(eps=0.2, min_samples=5).fit_predict(data.points)
        mask = labels >= 0
        assert adjusted_rand_index(data.labels[mask], labels[mask]) > 0.95

    def test_detects_noise(self):
        data = make_blobs(100, n_clusters=2, dim=2, cluster_std=0.3, seed=0)
        points = np.vstack([data.points, [[100.0, 100.0]]])
        labels = DBSCAN(eps=1.0, min_samples=4).fit_predict(points)
        assert labels[-1] == NOISE

    def test_n_clusters_property(self):
        data = make_blobs(150, n_clusters=3, dim=2, cluster_std=0.3, seed=1)
        model = DBSCAN(eps=1.0, min_samples=4).fit(data.points)
        assert model.n_clusters >= 2

    def test_all_noise_when_eps_tiny(self, blob_points):
        model = DBSCAN(eps=1e-6, min_samples=3).fit(blob_points)
        assert model.n_clusters == 0
        assert (model.labels == NOISE).all()

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            DBSCAN(eps=0.0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            _ = DBSCAN().labels


class TestSpectral:
    def test_recovers_circles(self):
        data = make_circles(240, noise=0.03, factor=0.4, seed=0)
        labels = SpectralClustering(2, affinity="knn", n_neighbors=8, seed=0).fit_predict(
            data.points
        )
        assert adjusted_rand_index(data.labels, labels) > 0.9

    def test_rbf_affinity_on_blobs(self, blob_points, blob_labels):
        labels = SpectralClustering(3, affinity="rbf", seed=0).fit_predict(blob_points)
        assert adjusted_rand_index(blob_labels, labels) > 0.9

    def test_invalid_affinity(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, affinity="poly")

    def test_too_many_clusters(self):
        with pytest.raises(ValidationError):
            SpectralClustering(10).fit(np.zeros((5, 2)))

    def test_embedding_stored(self, blob_points):
        model = SpectralClustering(3, seed=0).fit(blob_points)
        assert model.embedding_.shape == (len(blob_points), 3)


class TestUspClustering:
    def test_separated_blobs_recovered(self, blob_points, blob_labels):
        config = UspConfig(
            n_bins=3, k_prime=8, epochs=40, hidden_dim=32, eta=10.0,
            learning_rate=5e-3, max_batch_size=180, min_batch_size=60, seed=0,
        )
        labels = UspClustering(3, config=config).fit_predict(blob_points)
        assert adjusted_rand_index(blob_labels, labels) > 0.8

    def test_predict_new_points(self, blob_points, blob_labels):
        config = UspConfig(
            n_bins=3, k_prime=8, epochs=30, hidden_dim=32, eta=10.0,
            learning_rate=5e-3, max_batch_size=180, min_batch_size=60, seed=0,
        )
        clusterer = UspClustering(3, config=config).fit(blob_points)
        predictions = clusterer.predict(blob_points + 0.01)
        assert (predictions == clusterer.labels).mean() > 0.9

    def test_labels_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            _ = UspClustering(2).labels
        with pytest.raises(NotFittedError):
            UspClustering(2).predict(np.zeros((2, 2)))

    def test_n_clusters_attribute(self):
        assert UspClustering(5).n_clusters == 5

"""Tests for the k'-NN matrix and the USP loss function."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KnnMatrix,
    LossBreakdown,
    balance_cost,
    build_knn_matrix,
    entropy_balance_cost,
    neighbor_bin_distribution,
    quality_cost,
    usp_loss,
)
from repro.nn import Tensor
from repro.utils.exceptions import ValidationError


class TestKnnMatrix:
    def test_shape_and_self_exclusion(self, tiny_dataset):
        knn = build_knn_matrix(tiny_dataset.base, 5)
        assert knn.indices.shape == (tiny_dataset.n_points, 5)
        for i in range(0, tiny_dataset.n_points, 37):
            assert i not in knn.indices[i]

    def test_neighbors_are_actually_nearest(self, tiny_dataset):
        base = tiny_dataset.base
        knn = build_knn_matrix(base, 3)
        i = 11
        dists = np.linalg.norm(base - base[i], axis=1)
        dists[i] = np.inf
        expected = set(np.argsort(dists)[:3].tolist())
        assert set(knn.neighbors_of(i).tolist()) == expected

    def test_keep_distances_sorted(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(50, 4))
        knn = build_knn_matrix(points, 6, keep_distances=True)
        assert knn.distances.shape == (50, 6)
        assert (np.diff(knn.distances, axis=1) >= -1e-12).all()

    def test_gather(self):
        points = np.random.default_rng(0).normal(size=(30, 3))
        knn = build_knn_matrix(points, 4)
        batch = np.array([2, 7, 13])
        np.testing.assert_array_equal(knn.gather(batch), knn.indices[batch])

    def test_as_graph_edges(self):
        points = np.random.default_rng(0).normal(size=(20, 3))
        knn = build_knn_matrix(points, 3)
        edges = knn.as_graph_edges()
        assert edges.shape == (60, 2)
        np.testing.assert_array_equal(edges[:3, 0], [0, 0, 0])

    def test_k_prime_too_large(self):
        with pytest.raises(ValidationError):
            build_knn_matrix(np.zeros((5, 2)), 5)

    def test_validation_of_shapes(self):
        with pytest.raises(ValidationError):
            KnnMatrix(np.zeros(5))
        with pytest.raises(ValidationError):
            KnnMatrix(np.zeros((5, 3)), distances=np.zeros((5, 2)))


class TestNeighborBinDistribution:
    def test_soft_proportions(self):
        neighbor_bins = np.array([[0, 0, 1, 2], [3, 3, 3, 3]])
        dist = neighbor_bin_distribution(neighbor_bins, 4)
        np.testing.assert_allclose(dist[0], [0.5, 0.25, 0.25, 0.0])
        np.testing.assert_allclose(dist[1], [0.0, 0.0, 0.0, 1.0])

    def test_hard_majority(self):
        neighbor_bins = np.array([[0, 0, 1, 2]])
        dist = neighbor_bin_distribution(neighbor_bins, 3, soft=False)
        np.testing.assert_array_equal(dist, [[1.0, 0.0, 0.0]])

    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        neighbor_bins = rng.integers(0, 8, size=(40, 10))
        dist = neighbor_bin_distribution(neighbor_bins, 8)
        np.testing.assert_allclose(dist.sum(axis=1), np.ones(40))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            neighbor_bin_distribution(np.array([[0, 9]]), 4)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError):
            neighbor_bin_distribution(np.array([0, 1, 2]), 4)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=12))
    def test_property_distribution(self, n_bins, k_prime):
        rng = np.random.default_rng(0)
        bins = rng.integers(0, n_bins, size=(10, k_prime))
        dist = neighbor_bin_distribution(bins, n_bins)
        assert dist.min() >= 0
        np.testing.assert_allclose(dist.sum(axis=1), np.ones(10), atol=1e-12)


class TestBalanceCost:
    def test_perfectly_balanced_confident_partition_scores_minus_one(self):
        # 8 points, 4 bins, 2 points confidently per bin.
        probs = np.zeros((8, 4))
        for i in range(8):
            probs[i, i % 4] = 1.0
        cost = balance_cost(Tensor(probs), 4)
        assert cost.item() == pytest.approx(-1.0)

    def test_collapsed_partition_scores_higher(self):
        # Everything in bin 0: only window-many rows contribute per column.
        collapsed = np.zeros((8, 4))
        collapsed[:, 0] = 1.0
        balanced = np.zeros((8, 4))
        for i in range(8):
            balanced[i, i % 4] = 1.0
        assert balance_cost(Tensor(collapsed), 4).item() > balance_cost(Tensor(balanced), 4).item()

    def test_gradient_flows_only_to_window_entries(self):
        probs_data = np.full((4, 2), 0.5)
        probs_data[0, 0] = 0.9
        probs_data[0, 1] = 0.1
        logits = Tensor(np.log(probs_data), requires_grad=True)
        probs = logits.softmax(axis=-1)
        cost = balance_cost(probs, 2)
        cost.backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            balance_cost(Tensor(np.zeros((4, 3))), 2)

    def test_entropy_balance_cost_minimised_by_uniform_usage(self):
        uniform = np.full((8, 4), 0.25)
        skewed = np.zeros((8, 4))
        skewed[:, 0] = 1.0
        assert (
            entropy_balance_cost(Tensor(uniform), 4).item()
            < entropy_balance_cost(Tensor(skewed), 4).item()
        )


class TestUspLoss:
    def _setup(self, n=16, m=4, k=5, seed=0):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(n, m)), requires_grad=True)
        neighbor_bins = rng.integers(0, m, size=(n, k))
        return logits, neighbor_bins

    def test_returns_scalar_and_breakdown(self):
        logits, neighbor_bins = self._setup()
        loss, breakdown = usp_loss(logits, neighbor_bins, 4, eta=5.0)
        assert loss.data.size == 1
        assert isinstance(breakdown, LossBreakdown)
        assert breakdown.total == pytest.approx(
            breakdown.quality + 5.0 * breakdown.balance, rel=1e-9
        )

    def test_eta_zero_is_quality_only(self):
        logits, neighbor_bins = self._setup()
        loss, breakdown = usp_loss(logits, neighbor_bins, 4, eta=0.0)
        assert breakdown.balance == 0.0
        assert loss.item() == pytest.approx(breakdown.quality)

    def test_balance_term_none(self):
        logits, neighbor_bins = self._setup()
        _, breakdown = usp_loss(logits, neighbor_bins, 4, eta=5.0, balance_term="none")
        assert breakdown.balance == 0.0

    def test_entropy_balance_variant(self):
        logits, neighbor_bins = self._setup()
        _, breakdown = usp_loss(logits, neighbor_bins, 4, eta=1.0, balance_term="entropy")
        assert breakdown.balance <= 0.0

    def test_gradient_exists(self):
        logits, neighbor_bins = self._setup()
        loss, _ = usp_loss(logits, neighbor_bins, 4, eta=5.0)
        loss.backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_quality_zero_when_model_matches_neighbors_exactly(self):
        # All neighbours in bin 1 and the model predicts bin 1 with certainty.
        n, m = 8, 3
        logits_data = np.full((n, m), -50.0)
        logits_data[:, 1] = 50.0
        neighbor_bins = np.ones((n, 4), dtype=int)
        _, breakdown = usp_loss(Tensor(logits_data, requires_grad=True), neighbor_bins, m, eta=0.0)
        assert breakdown.quality == pytest.approx(0.0, abs=1e-6)

    def test_weights_emphasise_rows(self):
        n, m = 4, 2
        logits_data = np.array([[5.0, -5.0]] * 3 + [[-5.0, 5.0]])
        neighbor_bins = np.zeros((n, 3), dtype=int)  # neighbours all in bin 0
        logits = Tensor(logits_data, requires_grad=True)
        _, uniform = usp_loss(logits, neighbor_bins, m, eta=0.0)
        weights = np.array([0.0, 0.0, 0.0, 10.0])  # emphasise the misplaced row
        _, weighted = usp_loss(logits, neighbor_bins, m, eta=0.0, weights=weights)
        assert weighted.quality > uniform.quality

    def test_hard_labels_option(self):
        logits, neighbor_bins = self._setup()
        _, soft = usp_loss(logits, neighbor_bins, 4, eta=0.0, soft_labels=True)
        _, hard = usp_loss(logits, neighbor_bins, 4, eta=0.0, soft_labels=False)
        assert soft.quality != pytest.approx(hard.quality)

    def test_quality_cost_weighted_mean_matches_soft_cross_entropy(self):
        rng = np.random.default_rng(1)
        logits = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        targets = rng.random((6, 3))
        targets /= targets.sum(axis=1, keepdims=True)
        assert quality_cost(logits, targets).item() > 0

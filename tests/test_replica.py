"""Replication tests: wire codec, WAL shipping, replica-aware dispatch,
session guarantees, HTTP transport, and the failover acceptance property.

The acceptance bar mirrors PR 5's crash-recovery property: kill the
primary mid-stream under a randomized op interleaving (partial syncs,
optional mid-stream checkpoint forcing a snapshot resync, optional torn
bytes at the follower's WAL tail), promote a follower, and assert its
filtered and unfiltered answers are bitwise-identical to a never-killed
reference holding exactly the records the follower acknowledged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filter import Range
from repro.net import SearchServer, ServerConfig, request_json
from repro.replica import (
    Follower,
    HttpReplicationSource,
    Primary,
    ReplicaGroup,
    ReplicationLoop,
    SessionToken,
    ShippedBatch,
    decode_wire_record,
    encode_wire_record,
)
from repro.service import Router
from repro.store import BootstrapRequired, Collection, wal_name
from repro.utils.exceptions import (
    SerializationError,
    StorageError,
    ValidationError,
)
from test_store import (
    DIM,
    apply_scripted_ops,
    attribute_rows,
    build_index,
    make_base,
    scripted_state,
)


def make_pair(root, *, rows: int = 40):
    """A primary collection (with attributes) and a bootstrapped follower."""
    collection = Collection.create(root / "primary", build_index(make_base(rows)))
    primary = Primary(collection)
    follower = Follower.bootstrap(root / "replica", primary)
    return collection, primary, follower


def grow(collection, n: int, *, offset: int, seed: int = 0) -> None:
    rng = np.random.default_rng(seed)
    collection.add(
        rng.normal(size=(n, DIM)), attributes=attribute_rows(n, offset=offset)
    )


# ---------------------------------------------------------------------- #
# the wire format
# ---------------------------------------------------------------------- #
class TestWireCodec:
    def test_round_trip_preserves_record_and_arrays(self):
        record = {"seq": 3, "op": "add", "n": 2}
        arrays = {"vectors": np.arange(6, dtype=np.float64).reshape(2, 3)}
        decoded_record, decoded_arrays = decode_wire_record(
            encode_wire_record(record, arrays)
        )
        assert decoded_record == record
        np.testing.assert_array_equal(decoded_arrays["vectors"], arrays["vectors"])

    def test_corrupted_checksum_is_refused(self):
        wire = encode_wire_record({"seq": 1, "op": "add"}, {})
        wire["crc32"] ^= 0xFF
        with pytest.raises(StorageError, match="CRC32"):
            decode_wire_record(wire)

    @pytest.mark.parametrize(
        "wire",
        [
            {},
            {"crc32": 0, "payload": "!!!not-base64!!!"},
            {"crc32": "x", "payload": ""},
        ],
    )
    def test_malformed_frames_are_refused(self, wire):
        with pytest.raises(StorageError, match="malformed replication frame"):
            decode_wire_record(wire)

    def test_batch_round_trips_through_json_shape(self):
        batch = ShippedBatch(
            records=[encode_wire_record({"seq": 1, "op": "add"}, {})],
            last_seq=5,
            base_seq=2,
            generation=1,
        )
        assert len(batch) == 1
        assert ShippedBatch.from_dict(batch.as_dict()) == batch
        with pytest.raises(StorageError, match="malformed replication batch"):
            ShippedBatch.from_dict({"last_seq": 1})


# ---------------------------------------------------------------------- #
# primary -> follower shipping (in process)
# ---------------------------------------------------------------------- #
class TestShipping:
    def test_bootstrap_then_sync_reaches_identical_answers(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        grow(collection, 8, offset=40)
        assert follower.last_applied_seq == 0
        applied = follower.sync()
        assert applied == 1 and follower.lag == 0
        queries = np.random.default_rng(5).normal(size=(4, DIM))
        for kwargs in ({}, {"filter": Range("price", high=50.0)}):
            expected = collection.batch_query(queries, 10, **kwargs)
            got = follower.collection.batch_query(queries, 10, **kwargs)
            np.testing.assert_array_equal(expected[0], got[0])
            np.testing.assert_array_equal(expected[1], got[1])
        collection.close()
        follower.collection.close()

    def test_max_records_truncates_but_reports_primary_seq(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        for batch_number in range(3):
            grow(collection, 2, offset=40 + 2 * batch_number, seed=batch_number)
        assert follower.sync(max_records=1) == 1
        assert follower.lag == 2  # truncated batch still reports last_seq
        assert follower.sync() == 2 and follower.lag == 0
        collection.close()
        follower.collection.close()

    def test_roles_are_enforced_at_construction(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        with pytest.raises(ValidationError, match="read-only"):
            Primary(follower.collection)
        with pytest.raises(ValidationError, match="writable"):
            Follower(collection, primary)
        collection.close()
        follower.collection.close()

    def test_diverged_follower_is_refused_loudly(self, tmp_path):
        collection, primary, _follower = make_pair(tmp_path)
        with pytest.raises(StorageError, match="diverged"):
            primary.poll(collection.last_seq + 5)
        collection.close()

    def test_checkpoint_past_follower_forces_bootstrap(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        grow(collection, 4, offset=40)
        collection.checkpoint()  # folds seq 1 into the snapshot
        strict = Follower(
            Collection.open(follower.collection.path, read_only=True),
            primary,
            auto_resync=False,
        )
        follower.collection.close()
        with pytest.raises(BootstrapRequired):
            strict.sync()
        strict.collection.close()

    def test_auto_resync_recovers_from_folded_history(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        grow(collection, 4, offset=40)
        collection.checkpoint()
        assert follower.sync() == 0  # re-bootstrapped at the checkpoint seq
        assert follower.resyncs == 1
        assert follower.last_applied_seq == collection.last_seq
        # the cached service is rebuilt over the replacement collection
        service = follower.service()
        assert service is follower.service()
        follower.resync()
        assert follower.service() is not service
        collection.close()
        follower.collection.close()

    def test_replication_loop_tails_live_writes(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        loop = ReplicationLoop(follower, interval_seconds=0.005)
        with loop:
            for batch_number in range(3):
                grow(collection, 2, offset=40 + 2 * batch_number, seed=batch_number)
            import time

            deadline = time.time() + 10.0
            while follower.last_applied_seq < collection.last_seq:
                assert time.time() < deadline, follower.stats()
                time.sleep(0.005)
        assert loop.records >= 3
        with pytest.raises(ValidationError):
            ReplicationLoop(follower, interval_seconds=0.0)
        collection.close()
        follower.collection.close()


# ---------------------------------------------------------------------- #
# read-replica dispatch + session guarantees
# ---------------------------------------------------------------------- #
class TestReplicaGroup:
    def test_reads_hit_followers_and_writes_hit_primary(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        group = ReplicaGroup(primary, [follower])
        query = np.random.default_rng(1).normal(size=(DIM,))
        group.search(query)
        group.search_batch(np.tile(query, (2, 1)))
        group.add(
            np.random.default_rng(2).normal(size=(2, DIM)),
            attributes=attribute_rows(2, offset=40),
        )
        stats = group.stats()
        assert stats["role"] == "replica_group"
        assert stats["dispatch"]["reads_follower"] == 2
        assert stats["dispatch"]["writes"] == 1
        assert stats["replication"]["max_lag_seq"] >= 0
        assert follower.last_applied_seq < collection.last_seq  # not yet synced
        assert group.sync_all() == 1
        assert follower.last_applied_seq == collection.last_seq
        assert group.max_lag() == 0
        collection.close()
        follower.collection.close()

    def test_session_waits_for_read_your_writes(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        group = ReplicaGroup(primary, [follower], staleness_budget_seconds=5.0)
        session = SessionToken()
        rng = np.random.default_rng(3)
        marker = rng.normal(size=(DIM,)) * 50.0
        group.add(
            marker[None, :], attributes=attribute_rows(1, offset=40), session=session
        )
        assert session.last_seen_seq == collection.last_seq
        # the follower is behind the token: the read must sync it first
        result = group.search(marker, session=session, k=1)
        assert int(result.ids[0]) == 40
        stats = group.stats()["dispatch"]
        assert stats["session_waits"] == 1
        assert stats["reads_follower"] == 1 and stats["session_redirects"] == 0
        collection.close()
        follower.collection.close()

    def test_zero_budget_redirects_to_primary(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        group = ReplicaGroup(primary, [follower], staleness_budget_seconds=0.0)
        session = SessionToken()
        group.add(
            np.random.default_rng(4).normal(size=(1, DIM)),
            attributes=attribute_rows(1, offset=40),
            session=session,
        )
        broken = follower.sync  # sever replication: every sync now fails

        def dead_sync(**kwargs):
            raise StorageError("primary unreachable")

        follower.sync = dead_sync
        try:
            result = group.search(
                np.random.default_rng(5).normal(size=(DIM,)), session=session, k=3
            )
        finally:
            follower.sync = broken
        assert result.ids.shape == (3,)
        stats = group.stats()["dispatch"]
        assert stats["session_redirects"] == 1 and stats["reads_primary"] == 1
        collection.close()
        follower.collection.close()

    def test_session_token_round_trips_as_json(self):
        token = SessionToken(7).observe(3)
        assert token.last_seen_seq == 7
        assert SessionToken.from_dict(token.as_dict()).last_seen_seq == 7

    def test_router_hosts_a_group_but_refuses_to_persist_it(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        group = ReplicaGroup(primary, [follower])
        router = Router()
        router.add_replica_group("replicated", group)
        with pytest.raises(ValidationError, match="does not look like"):
            router.add_replica_group("bogus", object())
        query = np.random.default_rng(6).normal(size=(DIM,))
        result = router.search(query, name="replicated", k=3)
        assert result.ids.shape == (3,)
        with pytest.raises(SerializationError, match="runtime wiring"):
            router.save(tmp_path / "deployment")
        collection.close()
        follower.collection.close()

    def test_group_validates_membership_and_budget(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        with pytest.raises(ValidationError, match="must be Follower"):
            ReplicaGroup(primary, [object()])
        with pytest.raises(ValidationError, match="staleness_budget_seconds"):
            ReplicaGroup(primary, staleness_budget_seconds=-1.0)
        collection.close()
        follower.collection.close()


# ---------------------------------------------------------------------- #
# replication over HTTP: the /replicate endpoint
# ---------------------------------------------------------------------- #
class TestHttpReplication:
    def test_full_lifecycle_over_the_wire(self, tmp_path):
        collection = Collection.create(
            tmp_path / "primary", build_index(make_base(40))
        )
        grow(collection, 8, offset=40)
        primary = Primary(collection)
        server = SearchServer(
            collection, replication=primary, config=ServerConfig(port=0)
        )
        with server:
            source = HttpReplicationSource.from_url(server.url)
            follower = Follower.bootstrap(tmp_path / "replica", source)
            assert follower.sync() == 1
            assert follower.last_applied_seq == collection.last_seq

            # leave the follower behind, fold the WAL away: the next poll
            # 409s and the follower re-bootstraps over HTTP
            grow(collection, 4, offset=48, seed=1)
            collection.checkpoint()
            follower.sync()
            assert follower.resyncs == 1
            assert follower.last_applied_seq == collection.last_seq

            status, stats = request_json(server.url + "/stats")
            assert status == 200
            assert stats["replication"]["role"] == "primary"
            assert stats["replication"]["bootstraps"] == 2
            status, text = request_json(server.url + "/metrics")
            assert 'repro_replica_role{name="primary",role="primary"} 1' in text
            assert "repro_replica_last_seq" in text
            assert "repro_http_errors_total" in text

            status, body = request_json(server.url + "/replicate?since_seq=abc")
            assert status == 400
            status, body = request_json(server.url + "/replicate?since_seq=999")
            assert status == 503  # diverged caller: storage_unavailable
            status, body = request_json(
                server.url + "/replicate", method="POST", body={}
            )
            assert status == 405
            follower.collection.close()
        assert server.drain_clean
        collection.close()

    def test_replicate_is_absent_without_a_primary(self, tmp_path):
        collection = Collection.create(tmp_path / "c", build_index(make_base(40)))
        with SearchServer(collection, config=ServerConfig(port=0)) as server:
            status, body = request_json(server.url + "/replicate?since_seq=0")
        assert status == 404
        collection.close()

    def test_follower_status_surfaces_in_observability(self, tmp_path):
        collection, primary, follower = make_pair(tmp_path)
        grow(collection, 2, offset=40)
        follower.sync()
        server = SearchServer(
            follower.service(), replication=follower, config=ServerConfig(port=0)
        )
        with server:
            status, stats = request_json(server.url + "/stats")
            assert stats["replication"]["role"] == "follower"
            assert stats["replication"]["lag_seq"] == 0
            status, text = request_json(server.url + "/metrics")
            assert "repro_replica_lag_seq" in text
            assert "repro_replica_records_applied_total" in text
            # a follower reports; it does not ship
            status, _ = request_json(server.url + "/replicate?since_seq=0")
            assert status == 404
        collection.close()
        follower.collection.close()

    def test_source_url_parsing_and_error_mapping(self):
        source = HttpReplicationSource.from_url("http://127.0.0.1:8123")
        assert (source.host, source.port) == ("127.0.0.1", 8123)
        with pytest.raises(StorageError, match="needs host and port"):
            HttpReplicationSource.from_url("127.0.0.1")
        with pytest.raises(BootstrapRequired):
            source._raise_for(
                409, {"error": {"code": "bootstrap_required", "message": "gone"}}, "poll"
            )
        with pytest.raises(StorageError, match="HTTP 500"):
            source._raise_for(500, {"error": {"code": "internal"}}, "poll")


# ---------------------------------------------------------------------- #
# failover: the acceptance property
# ---------------------------------------------------------------------- #
class TestFailover:
    """Kill the primary mid-stream, promote the follower, compare bitwise."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_ops=st.integers(min_value=0, max_value=12),
        max_records=st.integers(min_value=1, max_value=3),
        checkpoint_after=st.integers(min_value=-1, max_value=12),
        final_sync=st.booleans(),
        torn_tail=st.booleans(),
    )
    def test_promoted_follower_matches_never_killed_reference(
        self,
        tmp_path_factory,
        seed,
        n_ops,
        max_records,
        checkpoint_after,
        final_sync,
        torn_tail,
    ):
        root = tmp_path_factory.mktemp("failover")
        base = make_base(seed=seed % 7)
        primary_collection = Collection.create(root / "primary", build_index(base))
        primary = Primary(primary_collection)
        follower = Follower.bootstrap(root / "replica", primary)

        # -- randomized interleaving: ops on the primary, partial syncs
        # (truncated to max_records) on the follower, optionally a
        # checkpoint that folds history away mid-stream.
        rng = np.random.default_rng(seed)
        sync_rng = np.random.default_rng(seed + 1)
        state = scripted_state(base.shape[0])
        for op_number in range(n_ops):
            apply_scripted_ops(rng, primary_collection, 1, state)
            if op_number == checkpoint_after:
                primary_collection.checkpoint()
            if sync_rng.random() < 0.6:
                follower.sync(max_records=max_records)
        if final_sync:
            while follower.sync(max_records=max_records):
                pass
        acked = follower.last_applied_seq
        primary_seq_at_kill = primary_collection.last_seq

        # -- kill: the primary dies and never ships another record; the
        # replica host crashes too (optionally mid-write, leaving torn
        # bytes at its WAL tail) and restarts cold.
        primary_collection.close()
        if final_sync:
            # fully drained before the kill: no acknowledged write is lost
            assert acked == primary_seq_at_kill
        generation = follower.collection.generation
        follower.collection.close()
        if torn_tail:
            with open(root / "replica" / wal_name(generation), "ab") as handle:
                handle.write(b"\xba\xad\xf0")
        survivor = Follower.attach(root / "replica", primary)
        assert survivor.last_applied_seq == acked
        promoted = survivor.promote()
        assert not promoted.read_only

        # -- reference: a never-killed copy holding exactly the ops the
        # follower acknowledged (the op stream is a deterministic prefix).
        reference = build_index(base)
        reference_rng = np.random.default_rng(seed)
        reference_state = scripted_state(base.shape[0])
        apply_scripted_ops(reference_rng, reference, acked, reference_state)

        queries = np.random.default_rng(seed + 2).normal(size=(6, DIM))
        for kwargs in ({}, {"filter": Range("price", high=50.0)}):
            expected_ids, expected_d = reference.batch_query(queries, 10, **kwargs)
            got_ids, got_d = promoted.batch_query(queries, 10, **kwargs)
            np.testing.assert_array_equal(expected_ids, got_ids)
            np.testing.assert_array_equal(expected_d, got_d)

        # -- the promoted copy is a real primary: it journals new writes
        # under its own WAL, continuing the sequence it acknowledged.
        apply_scripted_ops(
            np.random.default_rng(seed + 3), promoted, 2, reference_state
        )
        assert promoted.last_seq == acked + 2
        promoted.close()

"""Tests for the observability layer (``repro.obs``) and its integrations.

The guarantees under test:

* tracing primitives: traceparent round-trips, spans nest and time
  correctly, the no-op path allocates nothing when sampling is off;
* sampling policy: head sampling obeys the rate, a propagated sampled
  flag wins over the local coin flip, slow/errored requests are
  tail-sampled as root-only traces;
* the span tree of a real query is **complete and well-nested** across
  every stack shape — plain, sharded, quantized, sharded-quantized,
  tenant-gated (hypothesis property);
* one HTTP request against a tenant-scoped sharded quantized namespace
  produces one retrievable trace at ``/debug/traces/<id>`` with the full
  per-stage breakdown, and a trace id survives client → server →
  replication poll;
* ``/metrics`` from a server running every layer at once passes the
  Prometheus text-format lint;
* ``/healthz`` stays liveness (200 mid-drain) while ``/readyz`` flips
  503 and reports replica role and lag.
"""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_index
from repro.net import SearchServer, ServerConfig, request_json
from repro.obs import (
    NOOP_SPAN,
    SlowQueryLog,
    Span,
    TraceContext,
    TraceStore,
    Tracer,
    TracingConfig,
    activate,
    current_trace,
    current_traceparent,
    deactivate,
    format_traceparent,
    lint_prometheus_text,
    new_trace_id,
    parse_traceparent,
    span,
    validate_span_tree,
)
from repro.replica import Follower, HttpReplicationSource, Primary, ReplicaGroup
from repro.service import QueryRequest, SearchService
from repro.store import Collection
from repro.tenant import TenantConfig, TenantRegistry

DIM = 10


# ---------------------------------------------------------------------- #
# fixtures and helpers
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(71)
    base = rng.standard_normal((240, DIM)).astype(np.float32)
    queries = rng.standard_normal((8, DIM)).astype(np.float32)
    return base, queries


def http_call(url, *, method="GET", body=None, headers=None, timeout=30.0):
    """Like request_json but also returns the response headers."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            return response.status, dict(response.headers), json.loads(raw or b"null")
    except urllib.error.HTTPError as error:
        raw = error.read()
        return error.code, dict(error.headers), json.loads(raw) if raw else None


def traced(callable_, *, name="test.root", tracer=None):
    """Run ``callable_`` under a fresh trace; returns (result, payload)."""
    tracer = tracer or Tracer(TracingConfig())
    trace = tracer.begin(name)
    token = activate(trace)
    try:
        result = callable_()
    finally:
        deactivate(token)
    return result, tracer.finish(trace)


# ---------------------------------------------------------------------- #
# traceparent propagation format
# ---------------------------------------------------------------------- #
class TestTraceparent:
    @settings(max_examples=40, deadline=None)
    @given(
        trace_bits=st.integers(min_value=1, max_value=2**128 - 1),
        span_bits=st.integers(min_value=1, max_value=2**64 - 1),
        sampled=st.booleans(),
    )
    def test_round_trip(self, trace_bits, span_bits, sampled):
        trace_id = f"{trace_bits:032x}"
        span_id = f"{span_bits:016x}"
        parsed = parse_traceparent(format_traceparent(trace_id, span_id, sampled))
        assert parsed == (trace_id, span_id, sampled)

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "not-a-traceparent",
            "00-abc-def-01",  # wrong field widths
            "00-" + "g" * 32 + "-" + "1" * 16 + "-01",  # non-hex trace id
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # all-zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "1" * 32 + "-" + "1" * 16 + "-01-extra",
        ],
    )
    def test_malformed_headers_are_ignored(self, header):
        assert parse_traceparent(header) is None

    def test_unsampled_flag_parses_false(self):
        trace_id, span_id = new_trace_id(), "ab" * 8
        parsed = parse_traceparent(format_traceparent(trace_id, span_id, False))
        assert parsed == (trace_id, span_id, False)


# ---------------------------------------------------------------------- #
# span primitives
# ---------------------------------------------------------------------- #
class TestSpanPrimitives:
    def test_span_without_active_trace_is_the_shared_noop(self):
        assert current_trace() is None
        assert span("anything", attr=1) is NOOP_SPAN
        with span("still.noop") as s:
            assert s.set(x=2) is NOOP_SPAN

    def test_nested_spans_parent_correctly_and_time_forward(self):
        def work():
            with span("outer", layer=1):
                with span("inner"):
                    time.sleep(0.002)

        _, payload = traced(work)
        names = [s["name"] for s in payload["spans"]]
        assert names == ["test.root", "outer", "inner"]
        by_name = {s["name"]: s for s in payload["spans"]}
        assert by_name["outer"]["parent_id"] == by_name["test.root"]["span_id"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["duration_seconds"] >= 0.002
        assert by_name["outer"]["attributes"] == {"layer": 1}
        assert validate_span_tree(payload) == []

    def test_exception_marks_span_errored_but_still_records(self):
        def work():
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")

        _, payload = traced(work)
        doomed = next(s for s in payload["spans"] if s["name"] == "doomed")
        assert doomed["status"] == "error"
        assert "ValueError" in doomed["attributes"]["error"]

    def test_record_explicit_interval_with_parent(self):
        tracer = Tracer(TracingConfig())
        trace = tracer.begin("root")
        start = time.perf_counter()
        trace.record("queued.work", start, start + 0.5, rows=7)
        payload = tracer.finish(trace, end=start + 1.0)
        queued = next(s for s in payload["spans"] if s["name"] == "queued.work")
        assert queued["parent_id"] == payload["spans"][0]["span_id"]
        assert queued["duration_seconds"] == pytest.approx(0.5)
        assert queued["attributes"] == {"rows": 7}
        assert validate_span_tree(payload) == []

    def test_max_spans_cap_counts_drops_instead_of_growing(self):
        tracer = Tracer(TracingConfig(max_spans_per_trace=3))
        trace = tracer.begin("root")
        token = activate(trace)
        try:
            for i in range(10):
                with span(f"s{i}"):
                    pass
        finally:
            deactivate(token)
        payload = tracer.finish(trace)
        assert len(payload["spans"]) == 4  # root + 3 kept
        assert payload["spans_dropped"] == 7
        assert tracer.stats()["spans_dropped"] == 7

    def test_current_traceparent_reflects_innermost_span(self):
        tracer = Tracer(TracingConfig())
        trace = tracer.begin("root")
        token = activate(trace)
        try:
            outer_header = current_traceparent()
            assert parse_traceparent(outer_header)[0] == trace.trace_id
            with span("child"):
                inner_header = current_traceparent()
            assert inner_header != outer_header
            assert parse_traceparent(inner_header)[0] == trace.trace_id
        finally:
            deactivate(token)
        tracer.finish(trace)


# ---------------------------------------------------------------------- #
# sampling policy
# ---------------------------------------------------------------------- #
class TestSampling:
    def test_rate_zero_never_starts_and_rate_one_always_does(self):
        off = Tracer(TracingConfig(sample_rate=0.0))
        assert all(off.begin("q") is None for _ in range(50))
        on = Tracer(TracingConfig(sample_rate=1.0))
        assert all(on.begin("q") is not None for _ in range(50))

    def test_fractional_rate_is_roughly_honored(self):
        tracer = Tracer(TracingConfig(sample_rate=0.25))
        kept = sum(tracer.begin("q") is not None for _ in range(2000))
        assert 300 < kept < 700  # ~500 expected; generous bounds

    def test_propagated_sampled_flag_wins_over_local_rate(self):
        tracer = Tracer(TracingConfig(sample_rate=0.0))
        header = format_traceparent(new_trace_id(), "ab" * 8, True)
        trace = tracer.begin("q", traceparent=header)
        assert trace is not None and trace.origin == "propagated"

        unsampled = format_traceparent(new_trace_id(), "ab" * 8, False)
        always = Tracer(TracingConfig(sample_rate=1.0))
        assert always.begin("q", traceparent=unsampled) is None

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TracingConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            TracingConfig(slow_threshold_seconds=0.0)
        with pytest.raises(ValueError):
            TracingConfig(max_spans_per_trace=0)

    def test_tail_rules_keep_slow_and_errored(self):
        tracer = Tracer(TracingConfig(sample_rate=0.0, slow_threshold_seconds=0.1))
        assert tracer.should_tail_sample(0.2, 200)
        assert tracer.should_tail_sample(0.01, 500)
        assert tracer.should_tail_sample(0.01, "aborted")
        assert not tracer.should_tail_sample(0.01, 200)
        assert not tracer.should_tail_sample(0.01, "ok")
        payload = tracer.tail_record("http.query", 0.2, status=200)
        assert payload["origin"] == "tail"
        assert len(payload["spans"]) == 1
        assert payload["duration_seconds"] == pytest.approx(0.2, abs=1e-6)
        assert tracer.stats()["tail_sampled"] == 1

    def test_finish_feeds_per_stage_histograms(self):
        tracer = Tracer(TracingConfig())
        _, _ = traced(lambda: [span("stage.a").__enter__().__exit__(None, None, None)
                               for _ in range(3)], tracer=tracer)
        histograms = tracer.stage_histograms()
        assert histograms["stage.a"].total == 3
        assert histograms["test.root"].total == 1


# ---------------------------------------------------------------------- #
# retention: ring buffer + slow log
# ---------------------------------------------------------------------- #
class TestRetention:
    def test_ring_evicts_oldest_and_counts_drops(self):
        store = TraceStore(capacity=3)
        for i in range(5):
            store.put({"trace_id": f"t{i}", "spans": []})
        assert len(store) == 3
        assert store.dropped == 2
        assert store.get("t0") == [] and store.get("t1") == []
        assert [t["trace_id"] for t in store.snapshot()] == ["t2", "t3", "t4"]
        assert store.list(limit=2)[0]["trace_id"] == "t4"  # newest first

    def test_get_returns_every_trace_with_the_id_oldest_first(self):
        store = TraceStore(capacity=8)
        store.put({"trace_id": "shared", "name": "a", "spans": []})
        store.put({"trace_id": "other", "name": "b", "spans": []})
        store.put({"trace_id": "shared", "name": "c", "spans": []})
        assert [t["name"] for t in store.get("shared")] == ["a", "c"]

    def test_jsonl_round_trips(self, tmp_path):
        store = TraceStore(capacity=4)
        store.put({"trace_id": "t1", "spans": [], "duration_seconds": 0.5})
        path = tmp_path / "traces.jsonl"
        assert store.export_jsonl(path) == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["trace_id"] == "t1"
        assert store.to_jsonl() == path.read_text()

    def test_slow_log_keeps_worst_regardless_of_recency(self):
        log = SlowQueryLog(size=3)
        for i, duration in enumerate([0.5, 0.1, 0.9, 0.05, 0.7, 0.2]):
            log.offer({"trace_id": f"t{i}", "duration_seconds": duration})
        worst = [t["duration_seconds"] for t in log.worst()]
        assert worst == [0.9, 0.7, 0.5]
        assert log.threshold() == pytest.approx(0.5)
        assert log.worst(1)[0]["duration_seconds"] == 0.9

    def test_validate_span_tree_flags_structural_damage(self):
        clean = {
            "spans": [
                {"span_id": "r", "parent_id": None, "name": "root",
                 "start_offset_seconds": 0.0, "duration_seconds": 1.0},
                {"span_id": "c", "parent_id": "r", "name": "child",
                 "start_offset_seconds": 0.1, "duration_seconds": 0.5},
            ]
        }
        assert validate_span_tree(clean) == []
        escaping = json.loads(json.dumps(clean))
        escaping["spans"][1]["duration_seconds"] = 2.0
        assert any("escapes parent" in p for p in validate_span_tree(escaping))
        two_roots = json.loads(json.dumps(clean))
        two_roots["spans"][1]["parent_id"] = None
        assert any("exactly one root" in p for p in validate_span_tree(two_roots))
        assert validate_span_tree({"spans": []}) == ["trace has no spans"]


# ---------------------------------------------------------------------- #
# hypothesis: complete, well-nested trees across every stack shape
# ---------------------------------------------------------------------- #
def _build_stacks(base):
    """name -> (service-shaped target, stages that must appear)."""
    plain = SearchService(make_index("bruteforce").build(base))
    sharded = SearchService(
        make_index("sharded-bruteforce", n_shards=2).build(base)
    )
    quant = SearchService(make_index("sq8").build(base))
    sharded_quant = SearchService(
        make_index("sharded", n_shards=2, spec="sq8").build(base)
    )
    registry = TenantRegistry()
    registry.add_namespace("ns", sharded_quant)
    tenant = registry.create_tenant("acme", "ns", TenantConfig(qps=1e9))
    return {
        "plain": (plain, {"service.search"}),
        "sharded": (sharded, {"service.search", "shard.scan", "shard.merge"}),
        "quant": (quant, {"service.search", "quant.scan", "quant.rerank"}),
        "sharded-quant": (
            sharded_quant,
            {"service.search", "shard.scan", "quant.scan", "quant.rerank"},
        ),
        "tenant": (
            tenant,
            {"tenant.acl_quota", "service.search", "shard.scan", "quant.scan"},
        ),
    }


@pytest.fixture(scope="module")
def stacks(data):
    base, _ = data
    return _build_stacks(base)


class TestSpanTreeProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        stack=st.sampled_from(["plain", "sharded", "quant", "sharded-quant", "tenant"]),
        batched=st.booleans(),
    )
    def test_tree_is_complete_and_well_nested(self, stacks, seed, stack, batched):
        target, required = stacks[stack]
        rng = np.random.default_rng(seed)
        tracer = Tracer(TracingConfig())

        def run():
            if batched:
                return target.search_batch(
                    rng.standard_normal((3, DIM)), QueryRequest(k=5)
                )
            return target.search(rng.standard_normal(DIM), QueryRequest(k=5))

        _, payload = traced(run, tracer=tracer)
        assert validate_span_tree(payload) == [], validate_span_tree(payload)
        names = {s["name"] for s in payload["spans"]}
        assert required <= names, f"missing {required - names} in {sorted(names)}"
        assert payload["spans_dropped"] == 0
        # every span landed inside the root's wall-clock window
        root = payload["spans"][0]
        for child in payload["spans"][1:]:
            assert child["duration_seconds"] <= root["duration_seconds"] + 1e-6

    def test_untraced_calls_record_nothing(self, stacks):
        target, _ = stacks["sharded-quant"]
        assert current_trace() is None
        result = target.search(np.zeros(DIM), QueryRequest(k=3))
        assert result.ids.shape == (3,)

    def test_scheduler_batch_span_lands_in_submitter_trace(self, data):
        base, _ = data
        registry = TenantRegistry()
        registry.add_namespace("ns", SearchService(make_index("bruteforce").build(base)))
        registry.create_tenant("acme", "ns", TenantConfig(qps=1e9))
        tracer = Tracer(TracingConfig())

        def run():
            future = registry.submit("acme", np.zeros((2, DIM)), QueryRequest(k=4))
            registry.scheduler.flush()
            return future.result(timeout=10)

        result, payload = traced(run, tracer=tracer)
        assert result.ids.shape == (2, 4)
        batch = next(s for s in payload["spans"] if s["name"] == "scheduler.batch")
        assert batch["attributes"]["tenant"] == "acme"
        assert batch["attributes"]["rows"] == 2
        assert validate_span_tree(payload) == []


# ---------------------------------------------------------------------- #
# the flagship HTTP acceptance path
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tenant_server(data):
    base, _ = data
    registry = TenantRegistry(cache_budget_bytes=1 << 20)
    registry.add_namespace(
        "products",
        SearchService(make_index("sharded", n_shards=2, spec="sq8").build(base)),
    )
    registry.create_tenant("acme", "products", TenantConfig(qps=1e9))
    with SearchServer(registry, config=ServerConfig(port=0)) as server:
        yield server


class TestHttpTracing:
    def test_one_request_produces_one_retrievable_stage_tree(self, tenant_server, data):
        _, queries = data
        body = {"vector": queries[0].tolist(), "request": {"k": 5}}
        wall_start = time.perf_counter()
        status, headers, wire = http_call(
            tenant_server.url + "/query",
            method="POST",
            body=body,
            headers={"X-Tenant": "acme"},
        )
        wall_seconds = time.perf_counter() - wall_start
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id, "traced responses must carry X-Trace-Id"

        status, _, debug = http_call(
            f"{tenant_server.url}/debug/traces/{trace_id}"
        )
        assert status == 200 and debug["trace_id"] == trace_id
        payload = debug["traces"][-1]
        assert validate_span_tree(payload) == [], validate_span_tree(payload)

        names = {s["name"] for s in payload["spans"]}
        required = {
            "http.parse",
            "admission.queue",
            "execute",
            "tenant.acl_quota",
            "service.search",
            "quant.scan",
            "quant.rerank",
            "serialize",
        }
        assert required <= names, f"missing {required - names} in {sorted(names)}"
        assert len(names) >= 6

        # the root accounts for the observed request latency: children
        # fit inside it and it fits inside the client's wall clock
        root = payload["spans"][0]
        assert root["name"] == "http.query"
        assert 0.0 < root["duration_seconds"] <= wall_seconds + 0.001
        direct = [
            s for s in payload["spans"][1:]
            if s["parent_id"] == root["span_id"]
        ]
        assert sum(s["duration_seconds"] for s in direct) <= (
            root["duration_seconds"] + 1e-3
        )

    def test_debug_traces_listing_and_jsonl_and_unknown_id(self, tenant_server, data):
        _, queries = data
        body = {"vector": queries[1].tolist(), "request": {"k": 3}}
        http_call(
            tenant_server.url + "/query", method="POST", body=body,
            headers={"X-Tenant": "acme"},
        )
        status, listing = request_json(tenant_server.url + "/debug/traces")
        assert status == 200
        assert listing["tracing"]["sample_rate"] == 1.0
        assert listing["traces"], "the ring should hold recent traces"
        assert {"trace_id", "name", "duration_seconds", "status", "origin", "n_spans"} \
            <= set(listing["traces"][0])

        status, text = request_json(tenant_server.url + "/debug/traces?format=jsonl")
        assert status == 200
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed and all("spans" in t for t in parsed)

        status, wire = request_json(tenant_server.url + "/debug/traces/feedfacedeadbeef")
        assert status == 404 and wire["error"]["code"] == "unknown_trace"

    def test_stats_and_stage_histograms_expose_tracing(self, tenant_server):
        status, stats = request_json(tenant_server.url + "/stats")
        assert status == 200
        assert stats["tracing"]["sample_rate"] == 1.0
        assert stats["tracing"]["traces_finished"] >= 1
        # the shared tracer surfaces through the tenant gateway stats too
        acme = stats["tenants"]["tenants"]["acme"]
        assert acme["tracing"]["sample_rate"] == 1.0

        status, text = request_json(tenant_server.url + "/metrics")
        assert status == 200
        assert 'repro_stage_seconds_bucket{stage="service.search",le="+Inf"}' in text
        assert 'repro_stage_seconds_count{stage="http.query"}' in text
        # /debug/traces/<id> fetches must not mint one stage label per
        # trace id — the path's id segment is normalized to :id
        for line in text.splitlines():
            assert 'stage="http.debug/traces/' not in line or "/:id" in line, line

    def test_client_trace_id_survives_the_http_hop(self, tenant_server, data):
        _, queries = data
        tracer = Tracer(TracingConfig())
        client_trace = tracer.begin("client.call")
        token = activate(client_trace)
        try:
            # request_json injects the traceparent of the active trace
            status, _ = request_json(
                tenant_server.url + "/query",
                method="POST",
                body={"vector": queries[2].tolist(), "request": {"k": 3}},
                headers={"X-Tenant": "acme"},
            )
        finally:
            deactivate(token)
        tracer.finish(client_trace)
        assert status == 200
        status, debug = request_json(
            f"{tenant_server.url}/debug/traces/{client_trace.trace_id}"
        )
        assert status == 200
        assert debug["traces"][-1]["origin"] == "propagated"
        assert debug["traces"][-1]["name"] == "http.query"


class TestSamplingOverHttp:
    def test_sampling_off_is_invisible_and_tail_keeps_slow(self, data):
        base, queries = data
        service = SearchService(make_index("bruteforce").build(base))
        config = ServerConfig(
            port=0, trace_sample_rate=0.0, slow_trace_seconds=1e-9
        )
        with SearchServer(service, config=config) as server:
            body = {"vector": queries[0].tolist(), "request": {"k": 3}}
            status, headers, _ = http_call(
                server.url + "/query", method="POST", body=body
            )
            assert status == 200
            assert "X-Trace-Id" not in headers  # head sampling declined
            # ...but the tail rule (absurdly low slow threshold) kept a
            # root-only record of the slow request
            status, listing = request_json(server.url + "/debug/traces")
            assert status == 200
            origins = {t["origin"] for t in listing["traces"]}
            assert origins == {"tail"}
            assert all(t["n_spans"] == 1 for t in listing["traces"])
            assert listing["tracing"]["tail_sampled"] >= 1

    def test_trace_id_survives_client_server_replication_poll(self, tmp_path, data):
        base, _ = data
        index = make_index("sharded-bruteforce", n_shards=2).build(base)
        collection = Collection.create(tmp_path / "primary", index)
        primary = Primary(collection)
        with SearchServer(
            collection, replication=primary, config=ServerConfig(port=0)
        ) as server:
            follower = Follower.bootstrap(
                tmp_path / "replica", HttpReplicationSource.from_url(server.url)
            )
            collection.add(np.random.default_rng(3).standard_normal((4, DIM)))

            tracer = Tracer(TracingConfig())
            trace = tracer.begin("ops.catchup")
            token = activate(trace)
            try:
                applied = follower.sync()
            finally:
                deactivate(token)
            payload = tracer.finish(trace)
            assert applied == 1  # one WAL batch record

            # follower side: the sync span landed in the client trace
            sync = next(s for s in payload["spans"] if s["name"] == "replica.sync")
            assert sync["attributes"]["follower"] == follower.name
            assert sync["attributes"]["applied"] == 1
            assert validate_span_tree(payload) == []

            # primary side: the replication poll joined the same trace
            status, debug = request_json(
                f"{server.url}/debug/traces/{trace.trace_id}"
            )
            assert status == 200
            server_traces = debug["traces"]
            assert all(t["origin"] == "propagated" for t in server_traces)
            assert any(t["name"] == "http.replicate" for t in server_traces)


# ---------------------------------------------------------------------- #
# Prometheus text-format lint
# ---------------------------------------------------------------------- #
class TestPrometheusLint:
    def test_counter_without_total_suffix_is_flagged(self):
        text = "# HELP repro_queries Queries.\n# TYPE repro_queries counter\nrepro_queries 5\n"
        assert any("_total" in p for p in lint_prometheus_text(text))

    def test_duplicate_help_and_type_are_flagged(self):
        text = (
            "# HELP repro_up Up.\n# TYPE repro_up gauge\nrepro_up 1\n"
            "# HELP repro_up Up again.\n# TYPE repro_up gauge\nrepro_up 2\n"
        )
        problems = lint_prometheus_text(text)
        assert any("duplicate # HELP" in p for p in problems)
        assert any("duplicate # TYPE" in p for p in problems)

    def test_undeclared_sample_and_raw_label_are_flagged(self):
        assert any(
            "no preceding # TYPE" in p
            for p in lint_prometheus_text("mystery_metric 1\n")
        )
        hostile = (
            "# HELP repro_x X.\n# TYPE repro_x gauge\n"
            'repro_x{tenant="evil"quote"} 1\n'
        )
        assert any("label" in p for p in lint_prometheus_text(hostile))

    def test_histogram_needs_inf_bucket(self):
        text = (
            "# HELP repro_h H.\n# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 3\nrepro_h_sum 2.5\nrepro_h_count 3\n'
        )
        assert any("+Inf" in p for p in lint_prometheus_text(text))

    def test_escaped_hostile_values_pass(self):
        from repro.obs import escape_label_value

        hostile = 'evil"} 1\ninjected 9 # {x="'
        line = f'repro_x{{tenant="{escape_label_value(hostile)}"}} 1\n'
        text = "# HELP repro_x X.\n# TYPE repro_x gauge\n" + line
        assert lint_prometheus_text(text) == []

    def test_full_stack_metrics_page_is_clean(self, tmp_path, data):
        """Every layer at once: tenants over sharded sq8 + replication."""
        base, queries = data
        index = make_index("sharded", n_shards=2, spec="sq8").build(base)
        collection = Collection.create(tmp_path / "everything", index)
        primary = Primary(collection)
        registry = TenantRegistry(cache_budget_bytes=1 << 20)
        registry.add_namespace("ns", SearchService(collection))
        registry.create_tenant("acme", "ns", TenantConfig(qps=1e9))
        registry.create_tenant(
            "starved", "ns", TenantConfig(qps=0.001, qps_burst=1.0)
        )
        with SearchServer(
            registry, replication=primary, config=ServerConfig(port=0)
        ) as server:
            single = {"vector": queries[0].tolist(), "request": {"k": 5}}
            batch = {"vectors": queries[:4].tolist(), "request": {"k": 5}}
            for headers in ({"X-Tenant": "acme"}, {"X-Tenant": "starved"}):
                request_json(
                    server.url + "/query", method="POST", body=single,
                    headers=headers,
                )
            request_json(
                server.url + "/batch_query", method="POST", body=batch,
                headers={"X-Tenant": "acme"},
            )
            # burn the starved tenant's bucket: quota_denials series
            status, _ = request_json(
                server.url + "/query", method="POST", body=single,
                headers={"X-Tenant": "starved"},
            )
            assert status == 429
            request_json(server.url + "/replicate?since_seq=0")

            status, text = request_json(server.url + "/metrics")
        assert status == 200
        assert lint_prometheus_text(text) == []
        for fragment in (
            'repro_tenant_queries_total{tenant="acme"}',
            'repro_tenant_quota_denials_total{tenant="starved"}',
            "repro_replica_records_shipped_total",
            'repro_stage_seconds_bucket{stage="quant.scan",le="+Inf"}',
            "repro_http_requests_total",
        ):
            assert fragment in text, f"missing {fragment}"


# ---------------------------------------------------------------------- #
# liveness vs readiness
# ---------------------------------------------------------------------- #
class TestReadiness:
    def test_ready_reports_replica_role_and_lag(self, tmp_path, data):
        base, _ = data
        index = make_index("sharded-bruteforce", n_shards=2).build(base)
        collection = Collection.create(tmp_path / "primary", index)
        primary = Primary(collection)
        with SearchServer(
            collection, replication=primary, config=ServerConfig(port=0)
        ) as server:
            follower = Follower.bootstrap(
                tmp_path / "replica", HttpReplicationSource.from_url(server.url)
            )
            status, body = request_json(server.url + "/readyz")
            assert status == 200
            assert body["status"] == "ready" and body["draining"] is False
            replication = body["replication"]
            assert replication["role"] == "primary"
            assert replication["last_applied_seq"] == replication["primary_last_seq"]

            with SearchServer(
                follower.service(), replication=follower,
                config=ServerConfig(port=0),
            ) as follower_server:
                collection.add(
                    np.random.default_rng(5).standard_normal((3, DIM))
                )
                status, body = request_json(follower_server.url + "/readyz")
                assert status == 200 and body["replication"]["role"] == "follower"
                follower.sync()
                status, body = request_json(follower_server.url + "/readyz")
                assert body["replication"]["lag_seq"] == 0
                assert (
                    body["replication"]["last_applied_seq"]
                    == body["replication"]["primary_last_seq"]
                )

    def test_draining_flips_readyz_503_but_healthz_stays_200(self, data):
        base, _ = data
        service = SearchService(make_index("bruteforce").build(base))
        with SearchServer(service, config=ServerConfig(port=0)) as server:
            status, body = request_json(server.url + "/readyz")
            assert status == 200 and body["status"] == "ready"
            server._draining = True
            try:
                status, body = request_json(server.url + "/readyz")
                assert status == 503
                assert body["status"] == "draining" and body["draining"] is True
                status, body = request_json(server.url + "/healthz")
                assert status == 200 and body["status"] == "draining"
            finally:
                server._draining = False

    def test_server_config_validates_tracing_fields(self):
        from repro.utils.exceptions import ValidationError

        with pytest.raises(ValidationError):
            ServerConfig(trace_sample_rate=1.5)
        with pytest.raises(ValidationError):
            ServerConfig(slow_trace_seconds=0.0)


# ---------------------------------------------------------------------- #
# stats surfaces expose the shared tracer
# ---------------------------------------------------------------------- #
class TestStatsSurfaces:
    def test_service_registry_and_group_report_tracing_when_attached(
        self, tmp_path, data
    ):
        base, _ = data
        service = SearchService(make_index("bruteforce").build(base))
        assert "tracing" not in service.stats()  # standalone: no tracer
        tracer = Tracer(TracingConfig(sample_rate=0.5))
        service.tracer = tracer
        assert service.stats()["tracing"]["sample_rate"] == 0.5

        registry = TenantRegistry()
        registry.add_namespace("ns", service)
        gateway = registry.create_tenant("acme", "ns")
        assert "tracing" not in registry.stats()
        registry.tracer = tracer
        assert registry.stats()["tracing"]["sample_rate"] == 0.5
        assert gateway.stats()["tracing"]["sample_rate"] == 0.5
        late = registry.create_tenant("late", "ns")
        assert late.stats()["tracing"]["sample_rate"] == 0.5

        index = make_index("sharded-bruteforce", n_shards=2).build(base)
        collection = Collection.create(tmp_path / "grp", index)
        group = ReplicaGroup(Primary(collection))
        assert "tracing" not in group.stats()
        group.tracer = tracer
        assert group.stats()["tracing"]["sample_rate"] == 0.5

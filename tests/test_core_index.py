"""Tests for UspConfig, the partition models, the trainer, and UspIndex."""

import numpy as np
import pytest

from repro.core import (
    PartitionIndexBase,
    UspConfig,
    UspIndex,
    UspTrainer,
    build_knn_matrix,
    build_partition_model,
    rerank_candidates,
)
from repro.eval import candidate_recall, knn_accuracy
from repro.utils.exceptions import ConfigurationError, NotFittedError, ValidationError


class TestUspConfig:
    def test_defaults_valid(self):
        config = UspConfig()
        assert config.n_bins == 16
        assert config.k_prime == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bins": 1},
            {"k_prime": 0},
            {"eta": -1.0},
            {"model": "transformer"},
            {"dropout": 1.5},
            {"epochs": 0},
            {"batch_fraction": 0.0},
            {"batch_fraction": 2.0},
            {"balance_term": "foo"},
            {"learning_rate": 0.0},
            {"hidden_dim": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            UspConfig(**kwargs)

    def test_batch_size_for_respects_fraction_and_caps(self):
        config = UspConfig(batch_fraction=0.04, min_batch_size=64, max_batch_size=256)
        assert config.batch_size_for(10_000) == 256  # capped
        assert config.batch_size_for(1_000) == 64  # floored at min
        assert config.batch_size_for(50) == 50  # capped at dataset size

    def test_with_updates_returns_new_config(self):
        config = UspConfig()
        updated = config.with_updates(n_bins=32)
        assert updated.n_bins == 32
        assert config.n_bins == 16


class TestPartitionModels:
    def test_mlp_output_shape_and_distribution(self):
        config = UspConfig(n_bins=8, hidden_dim=16)
        model = build_partition_model(dim=10, config=config)
        points = np.random.default_rng(0).normal(size=(20, 10))
        probs = model.predict_proba(points)
        assert probs.shape == (20, 8)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(20), atol=1e-9)
        assert probs.min() >= 0

    def test_logistic_model_parameter_count(self):
        config = UspConfig(n_bins=4, model="logistic")
        model = build_partition_model(dim=6, config=config)
        assert model.num_parameters() == 6 * 4 + 4

    def test_mlp_parameter_count_matches_formula(self):
        config = UspConfig(n_bins=8, hidden_dim=32)
        model = build_partition_model(dim=10, config=config)
        expected = 10 * 32 + 32 + 2 * 32 + 32 * 8 + 8  # linear + bn + output
        assert model.num_parameters() == expected

    def test_predict_bins_argmax_consistent(self):
        config = UspConfig(n_bins=5, hidden_dim=8)
        model = build_partition_model(dim=4, config=config)
        points = np.random.default_rng(1).normal(size=(15, 4))
        np.testing.assert_array_equal(
            model.predict_bins(points), model.predict_proba(points).argmax(axis=1)
        )

    def test_dimension_mismatch_raises(self):
        model = build_partition_model(dim=4, config=UspConfig(n_bins=4, hidden_dim=8))
        with pytest.raises(ConfigurationError):
            model.predict_proba(np.zeros((3, 7)))

    def test_same_seed_same_initialisation(self):
        config = UspConfig(n_bins=4, hidden_dim=8, seed=5)
        a = build_partition_model(dim=3, config=config)
        b = build_partition_model(dim=3, config=config)
        for (_, pa), (_, pb) in zip(a.module.named_parameters(), b.module.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestTrainer:
    def test_training_reduces_loss(self, tiny_dataset, tiny_knn, fast_usp_config):
        trainer = UspTrainer(fast_usp_config)
        model, history = trainer.train(tiny_dataset.base, tiny_knn)
        assert history.n_iterations > 5
        first = np.mean(history.total[:3])
        last = np.mean(history.total[-3:])
        assert last < first

    def test_history_components_recorded(self, tiny_dataset, tiny_knn, fast_usp_config):
        trainer = UspTrainer(fast_usp_config.with_updates(epochs=2))
        _, history = trainer.train(tiny_dataset.base, tiny_knn)
        assert len(history.total) == len(history.quality) == len(history.balance)
        assert history.seconds > 0
        assert len(history.smoothed_total(4)) > 0

    def test_knn_size_mismatch_rejected(self, tiny_dataset, fast_usp_config):
        other_knn = build_knn_matrix(tiny_dataset.base[:100], 5)
        with pytest.raises(ValidationError):
            UspTrainer(fast_usp_config).train(tiny_dataset.base, other_knn)

    def test_point_weights_validation(self, tiny_dataset, tiny_knn, fast_usp_config):
        trainer = UspTrainer(fast_usp_config.with_updates(epochs=1))
        with pytest.raises(ValidationError):
            trainer.train(tiny_dataset.base, tiny_knn, point_weights=np.ones(3))
        with pytest.raises(ValidationError):
            trainer.train(
                tiny_dataset.base, tiny_knn, point_weights=-np.ones(tiny_dataset.n_points)
            )

    def test_progress_callback_invoked(self, tiny_dataset, tiny_knn, fast_usp_config):
        calls = []
        trainer = UspTrainer(fast_usp_config.with_updates(epochs=1))
        trainer.train(
            tiny_dataset.base, tiny_knn, progress=lambda i, b: calls.append((i, b.total))
        )
        assert len(calls) > 0
        assert calls[0][0] == 0

    def test_deterministic_given_seed(self, tiny_dataset, tiny_knn, fast_usp_config):
        config = fast_usp_config.with_updates(epochs=2, dropout=0.0)
        model_a, _ = UspTrainer(config).train(tiny_dataset.base, tiny_knn)
        model_b, _ = UspTrainer(config).train(tiny_dataset.base, tiny_knn)
        np.testing.assert_allclose(
            model_a.predict_proba(tiny_dataset.queries),
            model_b.predict_proba(tiny_dataset.queries),
            atol=1e-9,
        )


class TestUspIndex:
    def test_not_fitted_errors(self):
        index = UspIndex(UspConfig(n_bins=4))
        with pytest.raises(NotFittedError):
            index.query(np.zeros(4), 5)
        with pytest.raises(NotFittedError):
            index.num_parameters()
        with pytest.raises(NotFittedError):
            _ = index.n_bins

    def test_build_assigns_every_point(self, built_usp_index, tiny_dataset):
        assert built_usp_index.assignments.shape == (tiny_dataset.n_points,)
        assert built_usp_index.bin_sizes().sum() == tiny_dataset.n_points
        assert built_usp_index.n_bins == 4

    def test_lookup_table_consistent_with_assignments(self, built_usp_index):
        for bin_id in range(built_usp_index.n_bins):
            members = built_usp_index.points_in_bin(bin_id)
            assert (built_usp_index.assignments[members] == bin_id).all()

    def test_bin_scores_are_probabilities(self, built_usp_index, tiny_dataset):
        scores = built_usp_index.bin_scores(tiny_dataset.queries)
        assert scores.shape == (tiny_dataset.n_queries, 4)
        np.testing.assert_allclose(scores.sum(axis=1), np.ones(tiny_dataset.n_queries), atol=1e-9)

    def test_candidate_sets_grow_with_probes(self, built_usp_index, tiny_dataset):
        small = built_usp_index.candidate_sets(tiny_dataset.queries, 1)
        large = built_usp_index.candidate_sets(tiny_dataset.queries, 3)
        assert all(len(l) >= len(s) for s, l in zip(small, large))

    def test_candidates_come_from_ranked_bins(self, built_usp_index, tiny_dataset):
        query = tiny_dataset.queries[:1]
        top_bin = built_usp_index.ranked_bins(query)[0, 0]
        candidates = built_usp_index.candidate_sets(query, 1)[0]
        assert set(candidates) == set(built_usp_index.points_in_bin(int(top_bin)))

    def test_query_returns_sorted_real_neighbors(self, built_usp_index, tiny_dataset):
        indices, distances = built_usp_index.query(tiny_dataset.queries[0], k=5, n_probes=2)
        valid = indices >= 0
        assert valid.sum() == 5
        assert (np.diff(distances[valid]) >= -1e-9).all()
        # Distances must match the actual base vectors.
        recomputed = np.linalg.norm(
            tiny_dataset.base[indices[valid]] - tiny_dataset.queries[0], axis=1
        )
        np.testing.assert_allclose(distances[valid], recomputed, atol=1e-9)

    def test_full_probe_reaches_perfect_recall(self, built_usp_index, tiny_dataset):
        indices, _ = built_usp_index.batch_query(
            tiny_dataset.queries, k=10, n_probes=built_usp_index.n_bins
        )
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_partition_beats_random_candidate_sets(self, built_usp_index, tiny_dataset):
        """The learned partition's candidate recall must beat a random partition's."""
        rng = np.random.default_rng(0)
        candidates = built_usp_index.candidate_sets(tiny_dataset.queries, 1)
        learned = candidate_recall(candidates, tiny_dataset.ground_truth, 10)
        random_assignment = rng.integers(0, 4, size=tiny_dataset.n_points)
        random_recall = []
        for i, c in enumerate(candidates):
            bucket = np.where(random_assignment == rng.integers(0, 4))[0]
            random_recall.append(
                len(set(bucket) & set(tiny_dataset.ground_truth[i, :10])) / 10
            )
        assert learned > np.mean(random_recall)

    def test_training_seconds_and_parameters(self, built_usp_index):
        assert built_usp_index.training_seconds() > 0
        assert built_usp_index.num_parameters() > 0

    def test_invalid_bin_id(self, built_usp_index):
        with pytest.raises(ValidationError):
            built_usp_index.points_in_bin(99)

    def test_query_dim_mismatch(self, built_usp_index):
        with pytest.raises(ValidationError):
            built_usp_index.query(np.zeros(3), 5)


class TestRerankCandidates:
    def test_padding_when_fewer_than_k(self):
        base = np.random.default_rng(0).normal(size=(10, 3))
        queries = base[:2]
        indices, distances = rerank_candidates(base, queries, [np.array([1, 2]), np.array([], dtype=int)], k=5)
        assert (indices[0, 2:] == -1).all()
        assert (indices[1] == -1).all()
        assert np.isinf(distances[1]).all()

    def test_exact_order(self):
        base = np.array([[0.0], [1.0], [2.0], [3.0]])
        queries = np.array([[2.2]])
        indices, _ = rerank_candidates(base, queries, [np.arange(4)], k=2)
        np.testing.assert_array_equal(indices[0], [2, 3])


class TestPartitionIndexBaseValidation:
    def test_finalize_build_validations(self):
        index = PartitionIndexBase()
        with pytest.raises(ValidationError):
            index._finalize_build(np.zeros((5, 2)), np.zeros(4, dtype=int), 2)
        with pytest.raises(ValidationError):
            index._finalize_build(np.zeros((5, 2)), np.full(5, 7), 2)

    def test_bin_scores_abstract(self):
        index = PartitionIndexBase()
        index._finalize_build(np.zeros((4, 2)), np.array([0, 0, 1, 1]), 2)
        with pytest.raises(NotImplementedError):
            index.bin_scores(np.zeros((1, 2)))

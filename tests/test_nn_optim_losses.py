"""Tests for optimisers, losses, batching, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    EpochBatchIterator,
    Linear,
    SGD,
    Sequential,
    Tensor,
    UniformBatchSampler,
    binary_cross_entropy_with_logits,
    clip_grad_norm,
    cross_entropy,
    load_module,
    mse_loss,
    save_module,
    soft_cross_entropy,
    train_validation_split,
)
from repro.utils.exceptions import SerializationError


def quadratic_loss(param):
    return ((param - Tensor(np.array([3.0, -2.0]))) ** 2).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        from repro.nn.layers import Parameter

        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-3)

    def test_momentum_accelerates(self):
        from repro.nn.layers import Parameter

        def run(momentum):
            param = Parameter(np.zeros(2))
            optimizer = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
            return float(quadratic_loss(param).data)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_weights(self):
        from repro.nn.layers import Parameter

        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * Tensor(np.array([0.0]))).sum().backward()  # zero data gradient
        optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_invalid_lr(self):
        from repro.nn.layers import Parameter

        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_requires_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        from repro.nn.layers import Parameter

        param = Parameter(np.zeros(2))
        optimizer = Adam([param], lr=0.2)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0], atol=1e-2)

    def test_skips_parameters_without_grad(self):
        from repro.nn.layers import Parameter

        used = Parameter(np.zeros(1))
        unused = Parameter(np.array([5.0]))
        optimizer = Adam([used, unused], lr=0.1)
        optimizer.zero_grad()
        (used * 2.0).sum().backward()
        optimizer.step()
        assert unused.data[0] == 5.0

    def test_invalid_betas(self):
        from repro.nn.layers import Parameter

        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.5, 0.9))

    def test_trains_small_classifier(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 5))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        net = Sequential(Linear(5, 16, rng=1), Linear(16, 2, rng=2))
        optimizer = Adam(net.parameters(), lr=0.05)
        for _ in range(100):
            optimizer.zero_grad()
            loss = cross_entropy(net(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        predictions = net(Tensor(x)).data.argmax(axis=1)
        assert (predictions == y).mean() > 0.9


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        from repro.nn.layers import Parameter

        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-6)

    def test_leaves_small_gradients(self):
        from repro.nn.layers import Parameter

        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])

    def test_empty_parameters(self):
        assert clip_grad_norm([], 1.0) == 0.0


class TestLosses:
    def test_soft_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]))
        targets = np.array([[0.2, 0.5, 0.3]])
        log_probs = logits.log_softmax().data
        expected = -(targets * log_probs).sum()
        assert soft_cross_entropy(logits, targets).item() == pytest.approx(expected)

    def test_soft_cross_entropy_weighted(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        targets = np.array([[1.0, 0.0], [1.0, 0.0]])
        uniform = soft_cross_entropy(logits, targets).item()
        # Weighting the well-classified row more should lower the loss.
        weighted = soft_cross_entropy(logits, targets, weights=np.array([10.0, 0.1])).item()
        assert weighted < uniform

    def test_soft_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 2)))

    def test_soft_cross_entropy_bad_weights(self):
        logits = Tensor(np.zeros((2, 2)))
        targets = np.full((2, 2), 0.5)
        with pytest.raises(ValueError):
            soft_cross_entropy(logits, targets, weights=np.zeros(3))
        with pytest.raises(ValueError):
            soft_cross_entropy(logits, targets, weights=np.zeros(2))

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-4

    def test_cross_entropy_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_mse_loss(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        assert mse_loss(pred, np.array([[0.0, 0.0]])).item() == pytest.approx(2.5)

    def test_bce_with_logits_extremes(self):
        logits = Tensor(np.array([[20.0], [-20.0]]))
        targets = np.array([[1.0], [0.0]])
        assert binary_cross_entropy_with_logits(logits, targets).item() < 1e-4


class TestBatching:
    def test_uniform_sampler_respects_size(self):
        points = np.random.default_rng(0).normal(size=(100, 3))
        sampler = UniformBatchSampler(points, 16, rng=0)
        batch = sampler.sample()
        assert len(batch) == 16
        assert batch.points.shape == (16, 3)
        np.testing.assert_array_equal(batch.points, points[batch.indices])

    def test_uniform_sampler_no_duplicates_within_batch(self):
        sampler = UniformBatchSampler(np.zeros((50, 2)), 30, rng=0)
        batch = sampler.sample()
        assert len(np.unique(batch.indices)) == 30

    def test_uniform_sampler_caps_at_dataset_size(self):
        sampler = UniformBatchSampler(np.zeros((10, 2)), 100, rng=0)
        assert sampler.batch_size == 10

    def test_iter_batches_count(self):
        sampler = UniformBatchSampler(np.zeros((30, 2)), 8, rng=0)
        assert len(list(sampler.iter_batches(5))) == 5

    def test_epoch_iterator_covers_every_point(self):
        points = np.arange(20, dtype=float).reshape(10, 2)
        iterator = EpochBatchIterator(points, 3, rng=0)
        seen = np.concatenate([b.indices for b in iterator])
        assert sorted(seen.tolist()) == list(range(10))
        assert len(iterator) == 4

    def test_epoch_iterator_drop_last(self):
        iterator = EpochBatchIterator(np.zeros((10, 2)), 3, rng=0, drop_last=True)
        assert len(iterator) == 3
        assert all(len(b) == 3 for b in iterator)

    def test_train_validation_split_disjoint(self):
        points = np.zeros((50, 2))
        train, val = train_validation_split(points, 0.2, rng=0)
        assert len(train) == 40 and len(val) == 10
        assert not set(train) & set(val)

    def test_train_validation_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_validation_split(np.zeros((10, 2)), 1.0)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        net = Sequential(Linear(3, 4, rng=0), Linear(4, 2, rng=1))
        path = tmp_path / "model.npz"
        save_module(net, path)
        other = Sequential(Linear(3, 4, rng=5), Linear(4, 2, rng=6))
        load_module(other, path)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            load_module(Sequential(Linear(2, 2, rng=0)), tmp_path / "missing.npz")

    def test_load_incompatible_raises(self, tmp_path):
        net = Sequential(Linear(3, 4, rng=0))
        path = tmp_path / "model.npz"
        save_module(net, path)
        with pytest.raises(SerializationError):
            load_module(Sequential(Linear(5, 5, rng=0)), path)

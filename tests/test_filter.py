"""Tests for filtered vector search (repro.filter + the filter= paths).

The central guarantees:

* **predicate correctness** — every id a filtered query returns
  satisfies the predicate, on every back-end, at every selectivity;
* **sharded exactness** — filtered sharded-bruteforce returns
  bitwise-identical ids to brute force over the filtered subset, with
  distances equal to float tolerance (hypothesis property over random
  predicates at selectivities {0.01, 0.1, 0.5, 1.0}, euclidean and
  cosine);
* **cache correctness** — the predicate's canonical fingerprint is part
  of the result-cache key: the same query under a different predicate
  must miss;
* **persistence** — the attribute store rides along with ``save`` /
  ``load_index`` and filtered answers are identical after reload.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import load_index, make_index
from repro.filter import (
    And,
    AttributeStore,
    Eq,
    FilterPlanner,
    In,
    Not,
    Or,
    Predicate,
    Range,
    predicate_from_dict,
    random_attribute_store,
    resolve_filter,
)
from repro.service import QueryRequest, Router, SearchService
from repro.utils.distances import pairwise_topk
from repro.utils.exceptions import ValidationError


@pytest.fixture(scope="module")
def store() -> AttributeStore:
    s = AttributeStore()
    s.add_numeric("price", [9.5, 120.0, 42.0, np.nan, 77.0, 3.0])
    s.add_categorical("shop", ["a", "b", "a", None, "c", "b"])
    s.add_tags("labels", [["new"], [], ["new", "sale"], ["sale"], [], ["x"]])
    return s


# ---------------------------------------------------------------------- #
# the attribute store
# ---------------------------------------------------------------------- #
class TestAttributeStore:
    def test_columns_and_kinds(self, store):
        assert store.n_rows == 6
        assert store.columns() == ["labels", "price", "shop"]
        assert store.column_kind("price") == "numeric"
        assert store.column_kind("shop") == "categorical"
        assert store.column_kind("labels") == "tags"

    def test_unknown_column_and_bad_shapes(self, store):
        with pytest.raises(ValidationError, match="unknown attribute"):
            Eq("brand", "a").mask(store)
        s = AttributeStore()
        s.add_numeric("a", [1.0, 2.0])
        with pytest.raises(ValidationError, match="rows"):
            s.add_numeric("b", [1.0, 2.0, 3.0])
        with pytest.raises(ValidationError, match="already exists"):
            s.add_numeric("a", [0.0, 0.0])

    def test_missing_values_never_match(self, store):
        # NaN price, None shop (row 3) match no predicate of any shape.
        assert not Range("price", low=-1e9, high=1e9).mask(store)[3]
        assert not Eq("shop", "None").mask(store)[3]
        assert not In("shop", ["a", "b", "c"]).mask(store)[3]

    def test_extend_appends_rows_and_new_vocabulary(self):
        s = AttributeStore()
        s.add_numeric("price", [1.0])
        s.add_categorical("shop", ["a"])
        s.add_tags("labels", [["t1"]])
        s.extend({"price": [2.0, 3.0], "shop": ["z", "a"], "labels": [["t2"], []]})
        assert s.n_rows == 3
        np.testing.assert_array_equal(Eq("shop", "z").mask(s), [False, True, False])
        np.testing.assert_array_equal(Eq("labels", "t2").mask(s), [False, True, False])
        with pytest.raises(ValidationError, match="missing values"):
            s.extend({"price": [4.0]})
        with pytest.raises(ValidationError, match="ragged"):
            s.extend({"price": [4.0], "shop": ["a", "b"], "labels": [[]]})

    def test_numeric_predicates_reject_non_numeric_values(self, store):
        with pytest.raises(ValidationError, match="numeric"):
            Eq("price", "cheap").mask(store)
        with pytest.raises(ValidationError, match="numeric"):
            In("price", ["cheap", "pricey"]).mask(store)
        with pytest.raises(ValidationError, match="numeric"):
            Range("price", high="cheap")

    def test_extend_is_atomic_on_bad_values(self):
        # A cast failure on a later column must leave every column (and
        # the version counter) untouched — no torn store, no stale masks.
        s = AttributeStore()
        s.add_categorical("shop", ["a", "b"])
        s.add_numeric("price", [1.0, 2.0])
        version = s.version
        with pytest.raises(ValidationError, match="numeric"):
            s.extend({"shop": ["c"], "price": ["not-a-number"]})
        assert s.n_rows == 2
        assert len(s.column("shop")) == len(s.column("price")) == 2
        assert s.version == version
        np.testing.assert_array_equal(
            (Eq("shop", "a") & Range("price", high=1.5)).mask(s), [True, False]
        )

    def test_extend_accepts_iterators_without_corruption(self):
        s = AttributeStore()
        s.add_numeric("p", [1.0, 2.0]).add_numeric("q", [5.0, 6.0])
        s.extend({"p": [3.0], "q": (x for x in [7.0])})
        assert s.n_rows == 3
        assert len(s.column("p")) == len(s.column("q")) == 3
        np.testing.assert_array_equal(
            (Range("p", high=10.0) & Range("q", high=10.0)).mask(s),
            [True, True, True],
        )

    def test_cached_mask_reuses_until_store_mutates(self):
        s = AttributeStore().add_numeric("v", [0.0, 1.0, 2.0])
        predicate = Range("v", high=1.0)
        first = predicate.cached_mask(s)
        assert predicate.cached_mask(s) is first
        s.extend({"v": [0.5]})
        second = predicate.cached_mask(s)
        assert second is not first and second.shape[0] == 4

    def test_state_round_trip(self, store):
        config, arrays = store.to_state()
        again = AttributeStore.from_state(config, arrays)
        assert again.n_rows == store.n_rows
        for predicate in (Eq("shop", "a"), Range("price", high=50.0), In("labels", ["sale"])):
            np.testing.assert_array_equal(predicate.mask(again), predicate.mask(store))


# ---------------------------------------------------------------------- #
# the predicate algebra
# ---------------------------------------------------------------------- #
class TestPredicates:
    def test_leaf_masks(self, store):
        np.testing.assert_array_equal(
            Eq("shop", "a").mask(store), [True, False, True, False, False, False]
        )
        np.testing.assert_array_equal(
            In("shop", ["b", "c"]).mask(store), [False, True, False, False, True, True]
        )
        np.testing.assert_array_equal(
            Range("price", low=10.0, high=80.0).mask(store),
            [False, False, True, False, True, False],
        )
        # tags: Eq = has tag, In = has any
        np.testing.assert_array_equal(
            Eq("labels", "sale").mask(store), [False, False, True, True, False, False]
        )
        np.testing.assert_array_equal(
            In("labels", ["new", "x"]).mask(store),
            [True, False, True, False, False, True],
        )

    def test_combinators_and_operators(self, store):
        both = Eq("shop", "a") & Range("price", high=40.0)
        np.testing.assert_array_equal(
            both.mask(store), [True, False, False, False, False, False]
        )
        either = Eq("shop", "c") | Eq("labels", "x")
        np.testing.assert_array_equal(
            either.mask(store), [False, False, False, False, True, True]
        )
        negated = ~Eq("shop", "a")
        np.testing.assert_array_equal(
            negated.mask(store), [False, True, False, True, True, True]
        )

    def test_fingerprint_is_canonical(self):
        a, b = Eq("shop", "a"), Range("price", high=40.0)
        assert And(a, b).fingerprint() == And(b, a).fingerprint()
        assert Or(a, b) == Or(b, a)
        assert In("shop", ["x", "y"]) == In("shop", ["y", "x", "y"])
        # numerically-equal values of different types are distinct
        # predicates (their masks differ on categorical columns)
        assert In("c", [1, True]) != In("c", [1])
        assert In("c", [1]) != In("c", [True])
        assert In("c", [1, 1]) == In("c", [1])
        assert And(a, b) != Or(a, b)
        assert Not(a) != a
        # nesting flattens, so grouping does not split the cache
        assert And(a, And(b, Not(a))) == And(a, b, Not(a))
        assert len({And(a, b), And(b, a)}) == 1

    def test_dict_round_trip(self):
        predicate = (
            Eq("shop", "a") & Range("price", high=40.0)
        ) | ~In("labels", ["sale", "new"])
        rebuilt = predicate_from_dict(predicate.as_dict())
        assert isinstance(rebuilt, Predicate)
        assert rebuilt == predicate

    def test_validation(self):
        with pytest.raises(ValidationError):
            Range("price")  # no bounds
        with pytest.raises(ValidationError):
            Range("price", low=2.0, high=1.0)
        with pytest.raises(ValidationError):
            In("shop", [])
        with pytest.raises(ValidationError):
            Eq("shop", object())
        with pytest.raises(ValidationError):
            predicate_from_dict({"op": "xor"})
        with pytest.raises(ValidationError, match="Range"):
            # tags columns do not support ranges
            Range("labels", high=1.0).mask(
                AttributeStore().add_tags("labels", [["a"]])
            )


# ---------------------------------------------------------------------- #
# filter resolution + planning
# ---------------------------------------------------------------------- #
class TestResolveAndPlan:
    def test_resolve_forms(self):
        index = make_index("bruteforce").build(np.eye(4))
        index.set_attributes(AttributeStore().add_numeric("v", [0.0, 1.0, 2.0, 3.0]))
        mask = resolve_filter(Range("v", high=1.0), index, 4)
        np.testing.assert_array_equal(mask, [True, True, False, False])
        np.testing.assert_array_equal(
            resolve_filter(np.array([True, False, True, False]), index, 4),
            [True, False, True, False],
        )
        np.testing.assert_array_equal(
            resolve_filter([0, 3], index, 4), [True, False, False, True]
        )
        assert resolve_filter(None, index, 4) is None

    def test_resolve_errors(self):
        index = make_index("bruteforce").build(np.eye(4))
        with pytest.raises(ValidationError, match="no attribute store"):
            index.batch_query(np.eye(4)[:1], 2, filter=Eq("shop", "a"))
        with pytest.raises(ValidationError, match="entries"):
            resolve_filter(np.array([True, False]), index, 4)
        with pytest.raises(ValidationError, match="allowlist"):
            resolve_filter(np.array([0, 9]), index, 4)
        with pytest.raises(ValidationError, match="Predicate"):
            resolve_filter(np.array([0.5, 0.5]), index, 4)

    def test_empty_allowlist_matches_nothing(self):
        index = make_index("bruteforce").build(np.eye(4))
        ids, distances = index.batch_query(np.eye(4)[:2], 3, filter=[])
        assert (ids == -1).all() and np.isinf(distances).all()
        request = QueryRequest(k=3, filter=[])
        assert request.filter.size == 0  # accepted, not a dtype error

    def test_ambiguous_zero_one_filter_is_rejected(self):
        # a bool mask that lost its dtype (e.g. via JSON) must not be
        # silently read as the allowlist {0, 1}
        index = make_index("bruteforce").build(np.eye(6))
        with pytest.raises(ValidationError, match="ambiguous"):
            index.batch_query(np.eye(6)[:1], 2, filter=[1, 0, 1, 0, 1, 0])
        # a genuine short allowlist of low ids still works
        ids, _ = index.batch_query(np.eye(6)[:1], 2, filter=[0, 1])
        assert set(ids[0]) <= {0, 1}
        # on a 1- or 2-point index every allowlist is full-length and
        # {0,1}-valued, so the guard stands down
        two = make_index("bruteforce").build(np.eye(2))
        ids, _ = two.batch_query(np.eye(2)[:1], 1, filter=np.array([0, 1]))
        assert ids[0, 0] in (0, 1)

    def test_predicate_shorter_store_pads_false_on_mutable_only(self):
        # Mutable indexes: vectors added after the store was written
        # match nothing until AttributeStore.extend catches up.
        sharded = make_index("sharded-bruteforce", n_shards=2).build(np.eye(4))
        sharded.set_attributes(AttributeStore().add_numeric("v", [0.0, 1.0]))
        mask = resolve_filter(Range("v", low=-1.0), sharded, 4)
        np.testing.assert_array_equal(mask, [True, True, False, False])
        sharded.close()
        # Immutable indexes: a short store is a caller bug, not a lag —
        # it must fail loudly instead of silently excluding tail ids.
        bf = make_index("bruteforce").build(np.eye(4))
        with pytest.raises(ValidationError, match="one row per id"):
            bf.set_attributes(AttributeStore().add_numeric("v", [0.0, 1.0]))

    def test_planner_strategy_selection(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(400, 8))
        planner = FilterPlanner()
        kmeans = make_index("kmeans", n_bins=8, seed=0).build(base)
        hnsw = make_index("hnsw").build(base)
        sparse = np.zeros(400, dtype=bool)
        sparse[:4] = True
        dense = np.ones(400, dtype=bool)
        assert planner.plan(kmeans, sparse, 10).strategy == "prefilter"
        assert planner.plan(kmeans, dense, 10).strategy == "inline"
        assert planner.plan(hnsw, dense, 10).strategy == "postfilter"
        assert planner.plan(hnsw, np.zeros(400, dtype=bool), 10).strategy == "empty"

    def test_exact_index_plans_prefilter_at_every_selectivity(self):
        base = np.random.default_rng(2).normal(size=(200, 8))
        bf = make_index("bruteforce").build(base)
        planner = FilterPlanner()
        for allowed in (2, 100, 200):
            mask = np.zeros(200, dtype=bool)
            mask[:allowed] = True
            assert planner.plan(bf, mask, 10).strategy == "prefilter"

    def test_forced_strategy_override(self):
        from repro.filter import filtered_search

        rng = np.random.default_rng(3)
        base = rng.normal(size=(200, 8))
        queries = rng.normal(size=(4, 8))
        kmeans = make_index("kmeans", n_bins=4, seed=0).build(base)
        mask = np.zeros(200, dtype=bool)
        mask[::2] = True
        planned_ids, _ = filtered_search(
            kmeans, queries, 5, mask, query_kwargs={"n_probes": 4}
        )
        forced_ids, _ = filtered_search(
            kmeans, queries, 5, mask, query_kwargs={"n_probes": 4}, strategy="prefilter"
        )
        assert mask[planned_ids[planned_ids >= 0]].all()
        # the forced pre-filter is the exact answer over the subset
        allowed = np.flatnonzero(mask)
        exact_local, _ = pairwise_topk(queries, base[allowed], 5)
        np.testing.assert_array_equal(forced_ids, allowed[exact_local])
        with pytest.raises(ValidationError, match="strategy"):
            filtered_search(kmeans, queries, 5, mask, strategy="bogus")
        # forcing a strategy the index cannot execute fails loudly
        hnsw = make_index("hnsw").build(base)
        with pytest.raises(ValidationError, match="inline"):
            filtered_search(hnsw, queries, 5, mask, strategy="inline")

    def test_public_filtered_search_never_returns_tombstoned_ids(self):
        # Calling the exported helper directly on a mutable index must
        # respect tombstones exactly like index.batch_query(filter=) does.
        from repro.filter import filtered_search

        rng = np.random.default_rng(11)
        base = rng.normal(size=(120, 8))
        queries = rng.normal(size=(4, 8))
        sharded = make_index(
            "sharded-bruteforce", n_shards=2, compact_threshold=None
        ).build(base)
        sharded.set_attributes(random_attribute_store(120, seed=0))
        removed = np.arange(50)
        sharded.remove(removed)
        predicate = Range("price", high=10.0)  # low selectivity -> prefilter
        ids, _ = filtered_search(sharded, queries, 5, predicate)
        assert not np.isin(ids[ids >= 0], removed).any()
        expected, _ = sharded.batch_query(queries, 5, filter=predicate)
        np.testing.assert_array_equal(ids, expected)
        sharded.close()

    def test_postfilter_stops_when_candidate_pool_is_exhausted(self):
        # With n_probes fixed, a larger fetch cannot add candidates; the
        # retry loop must finalise exhausted rows instead of re-querying
        # them all the way up to fetch == n_rows.
        from repro.filter.planner import DEFAULT_PLANNER

        rng = np.random.default_rng(5)
        base = rng.normal(size=(400, 8))
        queries = rng.normal(size=(6, 8))
        index = make_index("ivf-flat", n_lists=8, seed=0).build(base)
        calls = {"n": 0}
        original = index.batch_query

        def counting(batch, k=10, **kw):
            calls["n"] += 1
            return original(batch, k, **kw)

        index.batch_query = counting
        mask = np.zeros(400, dtype=bool)
        mask[::40] = True  # sparse: most probed cells hold few survivors
        ids, _ = DEFAULT_PLANNER.filtered_search(
            index, queries, 10, mask,
            query_kwargs={"n_probes": 1}, strategy="postfilter",
        )
        del index.batch_query
        assert mask[ids[ids >= 0]].all()
        # pool ~50 candidates/row at n_probes=1: fetch doubles 10→20→40→80,
        # where -1 padding reveals exhaustion and finalises every row —
        # without the early exit the loop runs on to fetch == 400 (7 rounds)
        assert calls["n"] <= 4, f"pool-exhausted rows were re-queried {calls['n']} times"

    def test_postfilter_overfetch_reaches_full_scan(self):
        # An adversarial mask allowing only the *farthest* points forces
        # the multiplicative retry loop to widen until candidates are
        # exhausted — and the result must still satisfy the mask exactly.
        rng = np.random.default_rng(1)
        base = rng.normal(size=(300, 8))
        queries = rng.normal(size=(3, 8))
        hnsw = make_index("hnsw").build(base)
        exact_all, _ = pairwise_topk(queries, base, 300)
        worst = np.unique(exact_all[:, -30:])  # farthest ids per query
        mask = np.zeros(300, dtype=bool)
        mask[worst] = True
        ids, _ = hnsw.batch_query(queries, 5, filter=mask)
        assert (ids >= 0).all()
        assert mask[ids].all()


# ---------------------------------------------------------------------- #
# every back-end returns only matching ids
# ---------------------------------------------------------------------- #
FILTERABLE_FAST_BACKENDS = [
    ("bruteforce", {}, {}),
    ("kmeans", dict(n_bins=8, seed=0), dict(n_probes=4)),
    ("ivf-flat", dict(n_lists=8, seed=0), dict(n_probes=4)),
    ("hnsw", {}, {}),
    ("pca-tree", dict(depth=3), dict(n_probes=2)),
    ("hyperplane-lsh", dict(n_hyperplanes=3, seed=0), dict(n_probes=2)),
    ("sharded-bruteforce", dict(n_shards=3), {}),
    ("sq8", {}, {}),
    ("pq-adc", dict(n_subspaces=4, n_codewords=16, seed=0), {}),
    ("sharded-sq8", dict(n_shards=2), {}),
]


class TestFilteredBackends:
    @pytest.fixture(scope="class")
    def search_setup(self, tiny_dataset):
        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        return tiny_dataset, store

    @pytest.mark.parametrize(
        "name,params,kwargs",
        FILTERABLE_FAST_BACKENDS,
        ids=[entry[0] for entry in FILTERABLE_FAST_BACKENDS],
    )
    def test_every_returned_id_satisfies_predicate(self, search_setup, name, params, kwargs):
        data, store = search_setup
        index = make_index(name, **params).build(data.base)
        index.set_attributes(store)
        for predicate in (
            Range("price", high=1.0),            # ~1% survivors
            Eq("shop", "shop-1"),                # ~20%
            Range("price", high=55.0),           # ~55%
            In("labels", ["label-0", "label-1"]),
        ):
            mask = predicate.mask(store)
            ids, distances = index.batch_query(
                data.queries, 10, filter=predicate, **kwargs
            )
            returned = ids[ids >= 0]
            assert mask[returned].all(), (name, predicate)
            # padding is well-formed: -1 ids pair with inf distances
            assert np.isinf(distances[ids < 0]).all()
        if hasattr(index, "close"):
            index.close()

    def test_single_query_matches_batch(self, search_setup):
        data, store = search_setup
        index = make_index("kmeans", n_bins=8, seed=0).build(data.base)
        index.set_attributes(store)
        predicate = Eq("shop", "shop-0")
        batch_ids, _ = index.batch_query(data.queries[:1], 5, n_probes=4, filter=predicate)
        one_ids, _ = index.query(data.queries[0], 5, n_probes=4, filter=predicate)
        np.testing.assert_array_equal(one_ids, batch_ids[0])

    def test_filter_never_changes_result_shape(self):
        # k > n_points: filtered and unfiltered answers keep the same
        # column count per index (partition indexes pad to k either way).
        rng = np.random.default_rng(0)
        base = rng.normal(size=(5, 4))
        queries = rng.normal(size=(2, 4))
        for name, params in [("kmeans", dict(n_bins=2, seed=0)), ("hnsw", {})]:
            index = make_index(name, **params).build(base)
            plain, _ = index.batch_query(queries, 10)
            filtered, _ = index.batch_query(queries, 10, filter=np.ones(5, dtype=bool))
            assert filtered.shape == plain.shape == (2, 10), name

    def test_empty_predicate_returns_padding(self, search_setup):
        data, store = search_setup
        index = make_index("bruteforce").build(data.base)
        index.set_attributes(store)
        ids, distances = index.batch_query(
            data.queries, 5, filter=Range("price", low=1000.0)
        )
        assert (ids == -1).all() and np.isinf(distances).all()


# ---------------------------------------------------------------------- #
# hypothesis property: filtered sharded == brute force over the subset
# ---------------------------------------------------------------------- #
def _exact_filtered(base, queries, mask, k, metric):
    allowed = np.flatnonzero(mask)
    if allowed.size == 0:
        return (
            np.full((queries.shape[0], k), -1, dtype=np.int64),
            np.full((queries.shape[0], k), np.inf),
        )
    local, distances = pairwise_topk(
        queries, base[allowed], min(k, allowed.size), metric=metric
    )
    ids = allowed[local]
    if ids.shape[1] < k:
        pad = k - ids.shape[1]
        ids = np.pad(ids, ((0, 0), (0, pad)), constant_values=-1)
        distances = np.pad(distances, ((0, 0), (0, pad)), constant_values=np.inf)
    return ids, distances


class TestShardedFilterProperty:
    SELECTIVITIES = (0.01, 0.1, 0.5, 1.0)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_shards=st.sampled_from([2, 3, 5]),
        metric=st.sampled_from(["euclidean", "cosine"]),
    )
    def test_filtered_sharded_matches_bruteforce_over_subset(
        self, seed, n_shards, metric
    ):
        rng = np.random.default_rng(seed)
        n = 300
        base = rng.normal(size=(n, 12))
        queries = rng.normal(size=(6, 12))
        # A random predicate: a uniform score column thresholded at each
        # target selectivity (a random permutation decides who survives).
        score = rng.permutation(n).astype(np.float64) / n
        store = AttributeStore().add_numeric("score", score)
        sharded = make_index(
            "sharded-bruteforce", n_shards=n_shards, metric=metric
        ).build(base)
        sharded.set_attributes(store)
        for selectivity in self.SELECTIVITIES:
            predicate = Range("score", high=selectivity - 0.5 / n)
            mask = predicate.mask(store)
            assert abs(mask.mean() - selectivity) < 1.5 / n
            expected_ids, expected_distances = _exact_filtered(
                base, queries, mask, 10, metric
            )
            got_ids, got_distances = sharded.batch_query(queries, 10, filter=predicate)
            # ids are bitwise-identical; distances match to float tolerance
            # (BLAS accumulation order varies with the scanned matrix shape)
            np.testing.assert_array_equal(got_ids, expected_ids)
            np.testing.assert_allclose(got_distances, expected_distances, rtol=1e-12)
        sharded.close()

    def test_filtered_quant_matches_bruteforce_over_subset(self):
        # Inline masks over code rows: with the over-fetch budget
        # covering the allowed subset, a quantized backend's filtered
        # answer IS brute force over the subset (the scan is skipped,
        # the subset re-ranks exactly); with the default budget every
        # returned id still satisfies the mask and carries its exact
        # full-precision distance.
        for backend, params in (
            ("sq8", {}),
            ("pq-adc", dict(n_subspaces=4, n_codewords=16, seed=0)),
        ):
            for metric in ("euclidean", "cosine"):
                rng = np.random.default_rng(13)
                n = 300
                base = rng.normal(size=(n, 12))
                queries = rng.normal(size=(6, 12))
                score = rng.permutation(n).astype(np.float64) / n
                attr_store = AttributeStore().add_numeric("score", score)
                index = make_index(backend, metric=metric, **params).build(base)
                index.set_attributes(attr_store)
                stored = base.astype(np.float32)
                from repro.utils.distances import get_metric

                full = get_metric(metric)(queries, stored)
                rows = np.arange(queries.shape[0])[:, None]
                for selectivity in (0.01, 0.1, 0.5):
                    predicate = Range("score", high=selectivity - 0.5 / n)
                    mask = predicate.mask(attr_store)
                    expected_ids, expected_distances = _exact_filtered(
                        stored, queries, mask, 10, metric
                    )
                    got_ids, got_distances = index.batch_query(
                        queries, 10, filter=predicate, rerank=int(mask.sum())
                    )
                    np.testing.assert_array_equal(got_ids, expected_ids)
                    np.testing.assert_allclose(
                        got_distances, expected_distances, rtol=1e-12
                    )
                    got_ids, got_distances = index.batch_query(
                        queries, 10, filter=predicate
                    )
                    returned = got_ids >= 0
                    assert mask[got_ids[returned]].all(), (backend, selectivity)
                    np.testing.assert_allclose(
                        got_distances[returned],
                        full[np.broadcast_to(rows, got_ids.shape)[returned], got_ids[returned]],
                        rtol=1e-12,
                    )

    def test_filtered_sharded_with_mutation(self):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(200, 8))
        queries = rng.normal(size=(4, 8))
        store = random_attribute_store(200, seed=0)
        sharded = make_index(
            "sharded-bruteforce", n_shards=3, compact_threshold=None
        ).build(base)
        sharded.set_attributes(store)
        predicate = Range("price", low=-1.0)  # everything with a price row
        new_ids = sharded.add(rng.normal(size=(3, 8)))
        # rows without attributes match nothing until the store extends
        ids, _ = sharded.batch_query(queries, 200, filter=predicate)
        assert not np.isin(new_ids, ids).any()
        store.extend(
            {"price": [1.0, 2.0, 3.0], "shop": ["shop-0"] * 3, "labels": [[]] * 3}
        )
        ids, _ = sharded.batch_query(queries, 203, filter=predicate)
        assert np.isin(new_ids, ids).all()
        # tombstones beat the mask: a removed id never comes back
        sharded.remove(new_ids[:1])
        ids, _ = sharded.batch_query(queries, 203, filter=predicate)
        assert not np.isin(new_ids[:1], ids).any()
        # and the merge still matches brute force over (alive & allowed)
        sharded.compact()
        alive_mask = predicate.mask(store) & sharded._alive
        expected_ids, _ = _exact_filtered(
            sharded._data, queries, alive_mask, 10, "euclidean"
        )
        got_ids, _ = sharded.batch_query(queries, 10, filter=predicate)
        np.testing.assert_array_equal(got_ids, expected_ids)
        sharded.close()


# ---------------------------------------------------------------------- #
# serving: request plumbing, cache correctness, persistence
# ---------------------------------------------------------------------- #
class TestFilteredServing:
    @pytest.fixture(scope="class")
    def served(self, tiny_dataset):
        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        index = make_index("bruteforce").build(tiny_dataset.base)
        index.set_attributes(store)
        return tiny_dataset, store, index

    def test_cache_same_query_different_predicate_must_miss(self, served):
        data, store, index = served
        service = SearchService(index, cache_size=512)
        eq, rng_pred = Eq("shop", "shop-1"), Range("price", high=60.0)
        first = service.search_batch(data.queries, QueryRequest(k=5, filter=And(eq, rng_pred)))
        repeat = service.search_batch(data.queries, QueryRequest(k=5, filter=And(eq, rng_pred)))
        other = service.search_batch(data.queries, QueryRequest(k=5, filter=Eq("shop", "shop-2")))
        unfiltered = service.search_batch(data.queries, QueryRequest(k=5))
        assert first.cache_hits == 0
        assert repeat.cache_hits == data.n_queries
        assert other.cache_hits == 0, "different predicate hit a cached answer"
        assert unfiltered.cache_hits == 0, "unfiltered request hit a filtered answer"
        assert not np.array_equal(repeat.ids, other.ids)
        # semantically equal predicates written differently DO share entries
        commuted = service.search_batch(
            data.queries, QueryRequest(k=5, filter=And(rng_pred, eq))
        )
        assert commuted.cache_hits == data.n_queries

    def test_cache_invalidates_when_attribute_store_changes(self, tiny_dataset):
        # Swapping the store (or extending it) changes what a predicate
        # means — cached filtered answers must not survive either.
        index = make_index("bruteforce").build(tiny_dataset.base)
        n = tiny_dataset.n_points
        store_a = AttributeStore().add_categorical("shop", ["a"] * (n // 2) + ["b"] * (n - n // 2))
        store_b = AttributeStore().add_categorical("shop", ["b"] * (n // 2) + ["a"] * (n - n // 2))
        index.set_attributes(store_a)
        service = SearchService(index, cache_size=256)
        request = QueryRequest(k=5, filter=Eq("shop", "a"))
        service.search_batch(tiny_dataset.queries, request)
        index.set_attributes(store_b)
        swapped = service.search_batch(tiny_dataset.queries, request)
        assert swapped.cache_hits == 0, "stale answers served after set_attributes"
        mask_b = Eq("shop", "a").mask(store_b)
        returned = swapped.ids[swapped.ids >= 0]
        assert mask_b[returned].all()
        # growing the same store must invalidate too (version bump)
        repeat = service.search_batch(tiny_dataset.queries, request)
        assert repeat.cache_hits == tiny_dataset.n_queries
        store_b.add_numeric("price", np.zeros(n))
        grown = service.search_batch(tiny_dataset.queries, request)
        assert grown.cache_hits == 0, "stale answers served after store mutation"

    def test_request_equality_and_hash_with_array_filters(self):
        request = QueryRequest(k=5, filter=np.array([True, False, True]))
        again = QueryRequest.from_dict(request.as_dict())
        assert request == again
        assert hash(request) == hash(again)
        assert request != QueryRequest(k=5, filter=np.array([False, True, True]))
        predicate_request = QueryRequest(k=5, filter=Eq("shop", "a"))
        assert predicate_request == QueryRequest(k=5, filter=Eq("shop", "a"))
        assert len({predicate_request, QueryRequest(k=5, filter=Eq("shop", "a"))}) == 1
        # array-valued metadata must compare, not raise
        left = QueryRequest(k=5, metadata={"m": np.array([1, 2, 3])})
        right = QueryRequest(k=5, metadata={"m": np.array([1, 2, 3])})
        assert left == right
        # array fingerprints are memoized on the frozen request
        assert request.filter_fingerprint() is request.filter_fingerprint()
        # array filters are snapshotted: mutating the caller's array
        # afterwards changes neither the request nor its fingerprint
        source = np.array([True, False, True])
        snapshotted = QueryRequest(k=5, filter=source)
        before = snapshotted.filter_fingerprint()
        source[:] = False
        assert snapshotted.filter_fingerprint() == before
        assert snapshotted.filter.sum() == 2
        with pytest.raises(ValueError):
            snapshotted.filter[0] = False  # read-only snapshot

    def test_request_round_trip_and_fingerprint(self):
        predicate = Eq("shop", "a") & Range("price", high=10.0)
        request = QueryRequest(k=7, filter=predicate)
        again = QueryRequest.from_dict(request.as_dict())
        assert again.cache_key() == request.cache_key()
        mask_request = QueryRequest(k=7, filter=np.array([True, False, True]))
        again = QueryRequest.from_dict(mask_request.as_dict())
        assert again.cache_key() == mask_request.cache_key()
        ids_request = QueryRequest(k=7, filter=np.array([1, 2, 3]))
        again = QueryRequest.from_dict(ids_request.as_dict())
        assert again.cache_key() == ids_request.cache_key()
        with pytest.raises(ValidationError, match="filter"):
            QueryRequest(k=5, filter="price < 10")
        # float-dtype arrays fail at construction rather than silently
        # persisting as an integer allowlist
        with pytest.raises(ValidationError, match="dtype"):
            QueryRequest(k=5, filter=np.array([1.0, 5.0]))
        # unknown serialized filter payloads fail loudly, never silently
        # become an empty match-nothing allowlist
        with pytest.raises(ValidationError, match="unknown filter payload"):
            QueryRequest.from_dict({"k": 5, "filter": {"allow": [1, 2]}})

    def test_unfilterable_index_is_rejected(self, served):
        from repro.api import IndexCapabilities

        data, _, index = served

        class Opaque:
            """A built index whose capabilities do not include filtering."""

            capabilities = IndexCapabilities(probe_parameter=None)
            is_built = True

            def batch_query(self, queries, k=10):
                raise AssertionError("must not be reached")

        service = SearchService(Opaque())
        with pytest.raises(ValidationError, match="filter"):
            service.search_batch(data.queries, QueryRequest(k=5, filter=Eq("shop", "a")))

    def test_router_routes_filtered_requests(self, served):
        data, store, index = served
        router = Router()
        router.add_index("exact", index)
        result = router.search_batch(
            data.queries, QueryRequest(k=5, filter=Eq("shop", "shop-1"))
        )
        mask = Eq("shop", "shop-1").mask(store)
        returned = result.ids[result.ids >= 0]
        assert mask[returned].all()
        assert router.route(filterable=True) is router.service("exact")

    def test_save_load_keeps_attributes_and_answers(self, served, tmp_path):
        data, store, index = served
        predicate = In("labels", ["label-2", "label-3"]) & Range("price", high=80.0)
        expected_ids, expected_distances = index.batch_query(
            data.queries, 10, filter=predicate
        )
        index.save(tmp_path / "flt")
        again = load_index(tmp_path / "flt")
        assert again.attributes is not None
        assert again.attributes.columns() == store.columns()
        got_ids, got_distances = again.batch_query(data.queries, 10, filter=predicate)
        np.testing.assert_array_equal(got_ids, expected_ids)
        np.testing.assert_array_equal(got_distances, expected_distances)
        assert "attributes" in again.stats()

    def test_save_rejects_mismatched_store_attached_before_build(self, tmp_path):
        # attach-before-build skips attach-time validation; save must not
        # produce an artifact that load_index() would then reject
        from repro.utils.exceptions import SerializationError

        index = make_index("bruteforce")
        index.set_attributes(random_attribute_store(100, seed=0))
        index.build(np.random.default_rng(0).normal(size=(200, 8)))
        with pytest.raises(SerializationError, match="attribute store"):
            index.save(tmp_path / "bad")

    def test_resave_without_store_does_not_resurrect_attributes(self, tiny_dataset, tmp_path):
        index = make_index("bruteforce").build(tiny_dataset.base)
        index.set_attributes(random_attribute_store(tiny_dataset.n_points, seed=4))
        index.save(tmp_path / "idx")
        index.set_attributes(None)
        index.save(tmp_path / "idx")
        again = load_index(tmp_path / "idx")
        assert again.attributes is None, "detached store resurrected from stale files"

    def test_router_save_load_round_trips_attributes(self, served, tmp_path):
        data, store, index = served
        router = Router()
        router.add_index(
            "flt",
            index,
            cache_size=32,
            default_request=QueryRequest(k=5, filter=Eq("shop", "shop-1")),
        )
        expected = router.search_batch(data.queries, name="flt")
        router.save(tmp_path / "deployment")
        reloaded = Router.load(tmp_path / "deployment")
        got = reloaded.search_batch(data.queries, name="flt")
        np.testing.assert_array_equal(got.ids, expected.ids)


# ---------------------------------------------------------------------- #
# the eval curve
# ---------------------------------------------------------------------- #
class TestFilterSweep:
    def test_filter_selectivity_curve(self, tiny_dataset):
        from repro.eval import filter_selectivity_curve

        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        points = filter_selectivity_curve(
            "bruteforce",
            tiny_dataset,
            store,
            [("narrow", Range("price", high=2.0)), ("wide", Range("price", high=90.0))],
            k=10,
        )
        assert [p.label for p in points] == ["narrow", "wide"]
        for point in points:
            assert point.recall == 1.0  # exact back-end
            assert point.queries_per_second > 0
            assert point.strategy == "prefilter"
        assert points[0].selectivity < points[1].selectivity

    def test_filter_selectivity_curve_accepts_reloaded_store(self, tiny_dataset, tmp_path):
        # load_index re-attaches an equal-content copy of the store; the
        # curve must accept it rather than demanding object identity.
        from repro.eval import filter_selectivity_curve

        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        index = make_index("bruteforce").build(tiny_dataset.base)
        index.set_attributes(store)
        index.save(tmp_path / "idx")
        reloaded = load_index(tmp_path / "idx")
        assert reloaded.attributes is not store
        points = filter_selectivity_curve(
            reloaded, tiny_dataset, store, [("wide", Range("price", high=90.0))], k=10
        )
        assert points[0].recall == 1.0
        other = random_attribute_store(tiny_dataset.n_points, seed=5)
        with pytest.raises(ValidationError, match="different attribute store"):
            filter_selectivity_curve(
                reloaded, tiny_dataset, other, [("wide", Range("price", high=90.0))]
            )

    def test_sweep_accepts_reloaded_store_with_missing_values(self, tiny_dataset, tmp_path):
        # NaN marks a missing numeric value; a reloaded equal-content
        # store containing one must still be recognised as the same store.
        from repro.eval import filter_selectivity_curve

        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        prices = store.column("price").values
        prices[0] = np.nan
        index = make_index("bruteforce").build(tiny_dataset.base)
        index.set_attributes(store)
        index.save(tmp_path / "nan-idx")
        reloaded = load_index(tmp_path / "nan-idx")
        points = filter_selectivity_curve(
            reloaded, tiny_dataset, store, [("wide", Range("price", high=90.0))], k=5
        )
        assert points[0].recall == 1.0

    def test_sweep_detaches_its_temporary_store(self, tiny_dataset):
        # A caller-supplied index must not come back from a sweep with
        # the benchmark's synthetic store attached (a later save() would
        # persist it into the artifact).
        from repro.eval import filter_selectivity_curve

        index = make_index("bruteforce").build(tiny_dataset.base)
        store = random_attribute_store(tiny_dataset.n_points, seed=4)
        filter_selectivity_curve(
            index, tiny_dataset, store, [("wide", Range("price", high=90.0))], k=5
        )
        assert index.attributes is None

"""Tests for the K-means baseline and the balanced graph partitioner."""

import numpy as np
import pytest

from repro.baselines import (
    GraphPartitionResult,
    KMeans,
    KMeansIndex,
    kmeans_plus_plus_init,
    partition_knn_graph,
)
from repro.core import build_knn_matrix
from repro.eval import knn_accuracy
from repro.utils.exceptions import NotFittedError, ValidationError


class TestKMeans:
    def test_recovers_separated_blobs(self, blob_points, blob_labels):
        model = KMeans(3, n_init=3, seed=0).fit(blob_points)
        # Each true cluster should map to exactly one predicted cluster.
        for cluster in range(3):
            predicted = model.labels[blob_labels == cluster]
            assert len(np.unique(predicted)) == 1

    def test_inertia_decreases_with_more_clusters(self, blob_points):
        inertia_2 = KMeans(2, seed=0).fit(blob_points).result.inertia
        inertia_6 = KMeans(6, seed=0).fit(blob_points).result.inertia
        assert inertia_6 < inertia_2

    def test_predict_assigns_to_nearest_centroid(self, blob_points):
        model = KMeans(3, seed=0).fit(blob_points)
        new_points = model.centroids + 0.01
        np.testing.assert_array_equal(model.predict(new_points), np.arange(3))

    def test_handles_duplicate_points(self):
        points = np.zeros((20, 3))
        model = KMeans(2, seed=0).fit(points)
        assert model.labels.shape == (20,)

    def test_n_clusters_exceeds_points(self):
        with pytest.raises(ValidationError):
            KMeans(10, seed=0).fit(np.zeros((3, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            _ = KMeans(2).centroids

    def test_plus_plus_init_spreads_centroids(self, blob_points):
        rng = np.random.default_rng(0)
        centroids = kmeans_plus_plus_init(blob_points, 3, rng)
        pairwise = np.linalg.norm(centroids[:, None] - centroids[None, :], axis=2)
        assert pairwise[np.triu_indices(3, 1)].min() > 2.0

    def test_empty_cluster_repair(self):
        # Force an empty cluster: 3 clusters but only 2 distinct locations.
        points = np.vstack([np.zeros((10, 2)), np.ones((10, 2)) * 10])
        model = KMeans(3, seed=0).fit(points)
        assert model.result.inertia >= 0
        assert len(np.unique(model.labels)) <= 3


class TestKMeansIndex:
    def test_build_and_query(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        assert index.bin_sizes().sum() == tiny_dataset.n_points
        indices, _ = index.batch_query(tiny_dataset.queries, k=10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_bin_scores_prefer_nearest_centroid(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        scores = index.bin_scores(tiny_dataset.queries)
        assert scores.shape == (tiny_dataset.n_queries, 4)
        # Scores are negative squared distances: argmax == nearest centroid.
        nearest = np.linalg.norm(
            tiny_dataset.queries[:, None, :] - index.centroids[None], axis=2
        ).argmin(axis=1)
        np.testing.assert_array_equal(scores.argmax(axis=1), nearest)

    def test_num_parameters_is_centroid_table(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        assert index.num_parameters() == 4 * tiny_dataset.dim

    def test_assignments_match_kmeans_labels(self, tiny_dataset):
        index = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        np.testing.assert_array_equal(index.assignments, index._kmeans.labels)


class TestGraphPartition:
    @pytest.fixture(scope="class")
    def knn_indices(self, tiny_dataset):
        return build_knn_matrix(tiny_dataset.base, 8).indices

    def test_balanced_partition(self, knn_indices):
        result = partition_knn_graph(knn_indices, 4, imbalance=0.05, seed=0)
        assert isinstance(result, GraphPartitionResult)
        sizes = np.bincount(result.labels, minlength=4)
        capacity = int(np.ceil(1.05 * len(knn_indices) / 4))
        assert sizes.max() <= capacity
        assert result.imbalance <= 0.06

    def test_every_vertex_assigned(self, knn_indices):
        result = partition_knn_graph(knn_indices, 4, seed=0)
        assert result.labels.min() >= 0
        assert result.labels.max() < 4
        assert result.labels.shape == (len(knn_indices),)

    def test_cut_better_than_random(self, knn_indices):
        result = partition_knn_graph(knn_indices, 4, seed=0)
        rng = np.random.default_rng(0)
        random_labels = rng.integers(0, 4, size=len(knn_indices))
        sources = np.repeat(np.arange(len(knn_indices)), knn_indices.shape[1])
        random_cut = int((random_labels[sources] != random_labels[knn_indices.reshape(-1)]).sum())
        assert result.edge_cut < random_cut

    def test_fennel_method(self, knn_indices):
        result = partition_knn_graph(knn_indices, 4, method="fennel", seed=0)
        assert np.bincount(result.labels, minlength=4).min() > 0

    def test_unknown_method(self, knn_indices):
        with pytest.raises(ValidationError):
            partition_knn_graph(knn_indices, 4, method="metis")

    def test_more_parts_than_vertices_rejected(self):
        with pytest.raises(ValidationError):
            partition_knn_graph(np.zeros((3, 1), dtype=int), 10)

    def test_deterministic_given_seed(self, knn_indices):
        a = partition_knn_graph(knn_indices, 4, seed=5)
        b = partition_knn_graph(knn_indices, 4, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)

"""Tests for the ANN back-ends: brute force, PQ, AVQ, IVF, HNSW, ScaNN."""

import numpy as np
import pytest

from repro.ann import (
    AnisotropicQuantizer,
    BruteForceIndex,
    HnswIndex,
    IVFFlatIndex,
    IVFPQIndex,
    ProductQuantizer,
    ScannSearcher,
    anisotropic_distortion,
    kmeans_scann,
    usp_scann,
    vanilla_scann,
)
from repro.baselines import KMeansIndex
from repro.eval import knn_accuracy
from repro.utils.exceptions import NotFittedError, ValidationError


class TestBruteForce:
    def test_exact_results(self, tiny_dataset):
        index = BruteForceIndex().build(tiny_dataset.base)
        indices, distances = index.batch_query(tiny_dataset.queries, 10)
        np.testing.assert_array_equal(indices, tiny_dataset.ground_truth[:, :10])
        assert (np.diff(distances, axis=1) >= -1e-12).all()

    def test_single_query(self, tiny_dataset):
        index = BruteForceIndex().build(tiny_dataset.base)
        indices, _ = index.query(tiny_dataset.queries[0], 5)
        np.testing.assert_array_equal(indices, tiny_dataset.ground_truth[0, :5])

    def test_not_built(self):
        with pytest.raises(NotFittedError):
            BruteForceIndex().query(np.zeros(4), 3)

    def test_k_clipped_to_dataset(self):
        index = BruteForceIndex().build(np.eye(4))
        indices, _ = index.batch_query(np.eye(4), 100)
        assert indices.shape == (4, 4)


class TestProductQuantizer:
    def test_reconstruction_better_with_more_codewords(self, tiny_dataset):
        small = ProductQuantizer(4, 4, seed=0).fit(tiny_dataset.base)
        large = ProductQuantizer(4, 64, seed=0).fit(tiny_dataset.base)
        assert large.reconstruction_error(tiny_dataset.base) < small.reconstruction_error(
            tiny_dataset.base
        )

    def test_codes_shape_and_range(self, tiny_dataset):
        pq = ProductQuantizer(4, 16, seed=0).fit(tiny_dataset.base)
        codes = pq.encode(tiny_dataset.base)
        assert codes.shape == (tiny_dataset.n_points, 4)
        assert codes.min() >= 0 and codes.max() < 16

    def test_decode_shape(self, tiny_dataset):
        pq = ProductQuantizer(4, 16, seed=0).fit(tiny_dataset.base)
        decoded = pq.decode(pq.encode(tiny_dataset.base[:5]))
        assert decoded.shape == (5, tiny_dataset.dim)

    def test_adc_matches_decoded_distance(self, tiny_dataset):
        pq = ProductQuantizer(4, 16, seed=0).fit(tiny_dataset.base)
        codes = pq.encode(tiny_dataset.base[:50])
        query = tiny_dataset.queries[0]
        adc = pq.adc_distances(query, codes)
        decoded = pq.decode(codes)
        exact = ((decoded - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-9)

    def test_dimension_not_divisible_rejected(self):
        with pytest.raises(ValidationError):
            ProductQuantizer(5, 8).fit(np.zeros((10, 16)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ProductQuantizer(4, 8).encode(np.zeros((2, 16)))


class TestAnisotropicQuantizer:
    def test_distortion_weights_parallel_error_more(self):
        point = np.array([[1.0, 0.0]])
        parallel_error = np.array([[0.9, 0.0]])  # error along the point direction
        orthogonal_error = np.array([[1.0, 0.1]])  # same magnitude, orthogonal
        eta = 4.0
        parallel = anisotropic_distortion(point, parallel_error, eta)[0]
        orthogonal = anisotropic_distortion(point, orthogonal_error, eta)[0]
        assert parallel > orthogonal

    def test_eta_one_close_to_plain_pq_error(self, tiny_dataset):
        aq = AnisotropicQuantizer(4, 16, eta=1.0, iterations=3, seed=0).fit(tiny_dataset.base)
        pq = ProductQuantizer(4, 16, seed=0).fit(tiny_dataset.base)
        aq_err = np.mean(
            ((aq.decode(aq.encode(tiny_dataset.base)) - tiny_dataset.base) ** 2).sum(axis=1)
        )
        pq_err = pq.reconstruction_error(tiny_dataset.base)
        assert aq_err <= pq_err * 1.5

    def test_invalid_eta(self):
        with pytest.raises(ValidationError):
            AnisotropicQuantizer(4, 8, eta=0.5)

    def test_adc_distances_positive(self, tiny_dataset):
        aq = AnisotropicQuantizer(4, 8, iterations=2, seed=0).fit(tiny_dataset.base)
        codes = aq.encode(tiny_dataset.base[:20])
        dists = aq.adc_distances(tiny_dataset.queries[0], codes)
        assert (dists >= 0).all()

    def test_anisotropic_error_reported(self, tiny_dataset):
        aq = AnisotropicQuantizer(4, 8, iterations=2, seed=0).fit(tiny_dataset.base)
        assert aq.anisotropic_error(tiny_dataset.base) > 0


class TestIVF:
    def test_ivf_flat_high_recall_with_enough_probes(self, tiny_dataset):
        index = IVFFlatIndex(8, seed=0).build(tiny_dataset.base)
        indices, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=8)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_ivf_flat_recall_grows_with_probes(self, tiny_dataset):
        index = IVFFlatIndex(8, seed=0).build(tiny_dataset.base)
        one, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=1)
        four, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(four, tiny_dataset.ground_truth, 10) >= knn_accuracy(
            one, tiny_dataset.ground_truth, 10
        )

    def test_list_sizes_cover_dataset(self, tiny_dataset):
        index = IVFFlatIndex(8, seed=0).build(tiny_dataset.base)
        assert index.list_sizes().sum() == tiny_dataset.n_points

    def test_ivfpq_reasonable_recall(self, tiny_dataset):
        index = IVFPQIndex(8, n_subspaces=4, n_codewords=32, rerank_factor=8, seed=0).build(
            tiny_dataset.base
        )
        indices, _ = index.batch_query(tiny_dataset.queries, 10, n_probes=8)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.8

    def test_query_dim_mismatch(self, tiny_dataset):
        index = IVFFlatIndex(4, seed=0).build(tiny_dataset.base)
        with pytest.raises(ValidationError):
            index.query(np.zeros(3), 5)

    def test_not_built(self):
        with pytest.raises(NotFittedError):
            IVFFlatIndex(4).query(np.zeros(4), 5)


class TestHnsw:
    @pytest.fixture(scope="class")
    def hnsw_index(self, tiny_dataset):
        return HnswIndex(8, ef_construction=40, ef_search=40, seed=0).build(tiny_dataset.base)

    def test_high_recall(self, hnsw_index, tiny_dataset):
        indices, _ = hnsw_index.batch_query(tiny_dataset.queries, 10)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.9

    def test_recall_improves_with_ef(self, hnsw_index, tiny_dataset):
        low, _ = hnsw_index.batch_query(tiny_dataset.queries, 10, ef=10)
        high, _ = hnsw_index.batch_query(tiny_dataset.queries, 10, ef=80)
        assert knn_accuracy(high, tiny_dataset.ground_truth, 10) >= knn_accuracy(
            low, tiny_dataset.ground_truth, 10
        )

    def test_distances_sorted_and_consistent(self, hnsw_index, tiny_dataset):
        indices, distances = hnsw_index.query(tiny_dataset.queries[0], 5)
        valid = indices >= 0
        recomputed = np.linalg.norm(
            tiny_dataset.base[indices[valid]] - tiny_dataset.queries[0], axis=1
        )
        np.testing.assert_allclose(distances[valid], recomputed, atol=1e-9)
        assert (np.diff(distances[valid]) >= -1e-9).all()

    def test_every_point_reachable(self, hnsw_index, tiny_dataset):
        """Querying with a base point should find that point itself first."""
        for i in range(0, tiny_dataset.n_points, 97):
            indices, _ = hnsw_index.query(tiny_dataset.base[i], 1, ef=40)
            assert indices[0] == i

    def test_not_built(self):
        with pytest.raises(NotFittedError):
            HnswIndex().query(np.zeros(4), 3)


class TestScann:
    def test_vanilla_scann_near_exact(self, tiny_dataset):
        searcher = vanilla_scann(n_subspaces=4, n_codewords=32, rerank_factor=20, seed=0).build(
            tiny_dataset.base
        )
        indices, _ = searcher.batch_query(tiny_dataset.queries, 10)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.9

    def test_kmeans_scann_pipeline(self, tiny_dataset):
        searcher = kmeans_scann(4, n_subspaces=4, n_codewords=32, rerank_factor=20, seed=0).build(
            tiny_dataset.base
        )
        indices, _ = searcher.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.9

    def test_usp_scann_pipeline(self, tiny_dataset, fast_usp_config):
        searcher = usp_scann(
            fast_usp_config.with_updates(epochs=3),
            n_subspaces=4,
            n_codewords=32,
            rerank_factor=20,
            seed=0,
        ).build(tiny_dataset.base)
        indices, _ = searcher.batch_query(tiny_dataset.queries, 10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) > 0.9

    def test_prebuilt_partitioner_reused(self, tiny_dataset):
        partitioner = KMeansIndex(4, seed=0).build(tiny_dataset.base)
        searcher = ScannSearcher(partitioner, n_subspaces=4, n_codewords=16, seed=0).build(
            tiny_dataset.base
        )
        assert searcher.partitioner is partitioner

    def test_odd_dimension_subspace_fallback(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(200, 15))  # 15 is not divisible by 8
        searcher = vanilla_scann(n_subspaces=8, n_codewords=8, seed=0).build(base)
        indices, _ = searcher.batch_query(base[:3], 5)
        assert (indices[:, 0] == np.arange(3)).all()

    def test_not_built(self):
        with pytest.raises(NotFittedError):
            vanilla_scann().batch_query(np.zeros((1, 8)), 5)

"""Tests for the HTTP serving layer (``repro.net``).

The guarantees under test:

* results over HTTP are **bitwise identical** to in-process
  ``SearchService`` calls — filtered or not, single or batched — and
  mutations acknowledged over HTTP are durable across a restart;
* overload surfaces as typed 429 *responses* (never dropped sockets),
  deadlines expire as 504s whether the request was queued or already
  executing, and executing work stops at the next micro-batch boundary;
* shutdown drains: in-flight requests complete, new mutations are
  refused with 503, and collection-backed services checkpoint.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import replace

import numpy as np
import pytest

from repro.ann.bruteforce import BruteForceIndex
from repro.api import make_index
from repro.filter import And, AttributeStore, Eq, Range
from repro.net import (
    AdmissionController,
    Deadline,
    DeadlineExpired,
    SearchServer,
    ServerConfig,
    ShedLoad,
    request_json,
)
from repro.service import QueryRequest, QueryResult, Router, SearchService
from repro.service.request import BatchResult
from repro.store import Collection

DIM = 12


# ---------------------------------------------------------------------- #
# fixtures and helpers
# ---------------------------------------------------------------------- #
def make_attribute_store(n: int) -> AttributeStore:
    store = AttributeStore()
    store.add_categorical("shop", [f"shop-{i % 3}" for i in range(n)])
    store.add_numeric("price", [float((7 * i) % 50) for i in range(n)])
    return store


def build_sharded(base: np.ndarray):
    index = make_index("sharded-bruteforce")
    index.build(base)
    index.set_attributes(make_attribute_store(base.shape[0]))
    return index


class SlowBruteForce(BruteForceIndex):
    """Brute force with a per-call sleep: deterministic slow execution."""

    delay = 0.15

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = 0

    def query(self, query, k=10, *, filter=None):
        self.calls += 1
        time.sleep(self.delay)
        return super().query(query, k, filter=filter)

    def batch_query(self, queries, k=10, *, filter=None):
        self.calls += 1
        time.sleep(self.delay)
        return super().batch_query(queries, k, filter=filter)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(23)
    base = rng.standard_normal((260, DIM)).astype(np.float32)
    queries = rng.standard_normal((12, DIM)).astype(np.float32)
    return base, queries


def wait_until(condition, *, timeout=10.0, interval=0.005):
    stop_at = time.monotonic() + timeout
    while time.monotonic() < stop_at:
        if condition():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within the timeout")


def http_call(url, *, method="GET", body=None, headers=None, timeout=30.0):
    """Like request_json but also returns the response headers."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), json.loads(response.read() or b"null")
    except urllib.error.HTTPError as error:
        raw = error.read()
        parsed = json.loads(raw) if raw else None
        return error.code, dict(error.headers), parsed


def slow_server(delay=0.15, **config_kwargs):
    rng = np.random.default_rng(5)
    index = SlowBruteForce()
    index.delay = delay
    index.build(rng.standard_normal((50, DIM)).astype(np.float32))
    service = SearchService(index, cache_size=0)
    defaults = dict(port=0, max_concurrency=1, queue_limit=1, chunk_rows=1)
    defaults.update(config_kwargs)
    return SearchServer(service, config=ServerConfig(**defaults)), index


# ---------------------------------------------------------------------- #
# HTTP plumbing and the error taxonomy
# ---------------------------------------------------------------------- #
class TestErrorTaxonomy:
    @pytest.fixture(scope="class")
    def server(self, data):
        base, _ = data
        with SearchServer(SearchService(build_sharded(base))) as server:
            yield server

    def test_unknown_endpoint_404(self, server):
        status, body = request_json(server.url + "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_wrong_method_405(self, server):
        status, body = request_json(server.url + "/query")
        assert status == 405
        assert body["error"]["code"] == "method_not_allowed"
        status, body = request_json(server.url + "/stats", method="POST", body={})
        assert status == 405

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{oops", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["code"] == "bad_json"

    def test_missing_and_malformed_fields_400(self, server, data):
        _, queries = data
        cases = [
            {},  # no vector
            {"vector": "not numbers"},
            {"vector": [[1.0] * DIM]},  # 2-d where 1-d expected
            {"vector": [float("nan")] * DIM},
            {"vector": queries[0].tolist(), "request": {"k": 0}},
        ]
        for body in cases:
            status, parsed = request_json(server.url + "/query", method="POST", body=body)
            assert status == 400, body
            assert parsed["error"]["code"] in ("bad_request", "validation", "bad_json")

    def test_remove_unknown_ids_400(self, server):
        status, body = request_json(server.url + "/remove", method="POST", body={"ids": [99999]})
        assert status == 400
        assert body["error"]["code"] == "validation"

    def test_unfilterable_index_422(self, data):
        base, queries = data

        class Unfilterable(BruteForceIndex):
            capabilities = replace(BruteForceIndex.capabilities, filterable=False)

        index = Unfilterable().build(base)
        with SearchServer(SearchService(index)) as server:
            status, body = request_json(
                server.url + "/query", method="POST",
                body={
                    "vector": queries[0].tolist(),
                    "request": {"k": 3, "filter": {"ids": [1, 2, 3]}},
                },
            )
        assert status == 422
        assert body["error"]["code"] == "unfilterable_index"

    def test_oversized_body_413(self, data):
        base, queries = data
        with SearchServer(
            SearchService(build_sharded(base)),
            config=ServerConfig(port=0, max_body_bytes=256),
        ) as server:
            status, _, body = http_call(
                server.url + "/batch_query", method="POST",
                body={"vectors": [[0.0] * DIM] * 100, "request": {"k": 3}},
            )
        assert status == 413

    def test_bad_deadline_header_400(self, server, data):
        _, queries = data
        status, _, body = http_call(
            server.url + "/query", method="POST",
            body={"vector": queries[0].tolist()},
            headers={"X-Deadline-Ms": "-5"},
        )
        assert status == 400


# ---------------------------------------------------------------------- #
# end-to-end equivalence over a durable collection (the acceptance test)
# ---------------------------------------------------------------------- #
class TestDurableServing:
    @pytest.fixture()
    def collection(self, tmp_path, data):
        base, _ = data
        collection = Collection.create(tmp_path / "col", build_sharded(base))
        yield collection
        collection.close()

    def test_http_results_bitwise_identical_to_in_process(self, collection, data):
        base, queries = data
        reference = SearchService(build_sharded(base), cache_size=0)
        requests = [
            QueryRequest(k=5),
            QueryRequest(k=3, filter=Eq("shop", "shop-1")),
            QueryRequest(k=4, filter=And(Eq("shop", "shop-0"), Range("price", high=30.0))),
            QueryRequest(k=5, filter=np.arange(0, 260, 2)),  # id allowlist
            QueryRequest(k=5, filter=np.arange(260) % 2 == 0),  # mask
        ]
        with SearchServer(collection, config=ServerConfig(port=0)) as server:
            for request in requests:
                expected = reference.search(queries[0], request)
                status, wire = request_json(
                    server.url + "/query", method="POST",
                    body={"vector": queries[0].tolist(), "request": request.as_dict()},
                )
                assert status == 200
                got = QueryResult.from_dict(wire)
                np.testing.assert_array_equal(got.ids, expected.ids)
                np.testing.assert_array_equal(got.distances, expected.distances)
                assert wire["filter_fingerprint"] == request.filter_fingerprint_digest()

                batch_expected = reference.search_batch(queries, request)
                status, wire = request_json(
                    server.url + "/batch_query", method="POST",
                    body={"vectors": queries.tolist(), "request": request.as_dict()},
                )
                assert status == 200
                got = BatchResult.from_dict(wire)
                np.testing.assert_array_equal(got.ids, batch_expected.ids)
                np.testing.assert_array_equal(got.distances, batch_expected.distances)
                assert wire["n_queries"] == len(queries)
                assert len(wire["per_query_latency_seconds"]) == len(queries)

    def test_mutations_acked_over_http_survive_restart(self, tmp_path, collection, data):
        base, queries = data
        rng = np.random.default_rng(11)
        extra = rng.standard_normal((4, DIM)).astype(np.float32)
        with SearchServer(collection, config=ServerConfig(port=0)) as server:
            seq_before = collection.last_seq
            status, body = request_json(
                server.url + "/add", method="POST",
                body={
                    "vectors": extra.tolist(),
                    "attributes": {
                        "shop": ["shop-9"] * 4,
                        "price": [1.0, 2.0, 3.0, 4.0],
                    },
                },
            )
            assert status == 200
            new_ids = body["ids"]
            assert body["count"] == 4
            # the ack implies the WAL record is already on disk
            assert collection.last_seq > seq_before

            status, body = request_json(
                server.url + "/remove", method="POST", body={"ids": new_ids[:2]}
            )
            assert status == 200 and body["removed"] == 2

            status, filtered = request_json(
                server.url + "/query", method="POST",
                body={
                    "vector": extra[2].tolist(),
                    "request": {
                        "k": 2,
                        "filter": {"predicate": {"op": "eq", "column": "shop", "value": "shop-9"}},
                    },
                },
            )
            assert status == 200
            assert set(filtered["ids"]) <= set(new_ids[2:])
        assert server.drain_clean is True
        collection.close()

        reopened = Collection.open(tmp_path / "col")
        try:
            assert int(reopened.index.n_points) == base.shape[0] + 2
            result = SearchService(reopened).search(
                np.asarray(extra[2], dtype=np.float32),
                QueryRequest(k=2, filter=Eq("shop", "shop-9")),
            )
            np.testing.assert_array_equal(np.sort(result.ids), np.sort(filtered["ids"]))
        finally:
            reopened.close()

    def test_concurrent_queries_and_mutations(self, collection, data):
        base, queries = data
        errors = []
        with SearchServer(collection, config=ServerConfig(port=0, max_concurrency=4)) as server:
            def query_loop():
                try:
                    for i in range(15):
                        status, body = request_json(
                            server.url + "/query", method="POST",
                            body={"vector": queries[i % len(queries)].tolist(),
                                  "request": {"k": 3}},
                        )
                        assert status == 200, body
                except Exception as exc:  # noqa: BLE001 - surfaced to the test
                    errors.append(exc)

            def mutate_loop():
                rng = np.random.default_rng(3)
                try:
                    for _ in range(8):
                        status, body = request_json(
                            server.url + "/add", method="POST",
                            body={"vectors": rng.standard_normal((1, DIM)).tolist()},
                        )
                        assert status == 200, body
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=query_loop) for _ in range(3)]
            threads.append(threading.Thread(target=mutate_loop))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert server.drain_clean is True


class TestRouterServing:
    def test_named_dispatch_and_filter_routing(self, data):
        base, queries = data

        class Unfilterable(BruteForceIndex):
            capabilities = replace(BruteForceIndex.capabilities, filterable=False)

        router = Router()
        router.add_service("plain", SearchService(Unfilterable().build(base)))
        router.add_service("filtered", SearchService(build_sharded(base)))
        with SearchServer(router) as server:
            status, body = request_json(
                server.url + "/query?service=filtered", method="POST",
                body={"vector": queries[0].tolist(), "request": {"k": 3}},
            )
            assert status == 200

            status, body = request_json(
                server.url + "/query?service=missing", method="POST",
                body={"vector": queries[0].tolist()},
            )
            assert status == 404
            assert body["error"]["code"] == "unknown_service"

            # a filter in the request routes to the filterable service
            status, body = request_json(
                server.url + "/query", method="POST",
                body={
                    "vector": queries[0].tolist(),
                    "request": {"k": 3, "filter": {"ids": list(range(50))}},
                },
            )
            assert status == 200
            assert max(body["ids"]) < 50

            status, stats = request_json(server.url + "/stats")
            assert set(stats["services"]) == {"plain", "filtered"}


# ---------------------------------------------------------------------- #
# admission control, deadlines, backpressure (satellite 3)
# ---------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_burst_sheds_with_typed_429_and_no_drops(self, data):
        _, queries = data
        server, _ = slow_server(delay=0.5, max_concurrency=1, queue_limit=1)
        payload = {"vector": queries[0][:DIM].tolist(), "request": {"k": 3}}
        results = []
        with server:
            blocker = threading.Thread(
                target=request_json,
                args=(server.url + "/query",),
                kwargs={"method": "POST", "body": payload},
            )
            blocker.start()
            wait_until(lambda: server.admission.active >= 1)

            def one():
                results.append(http_call(server.url + "/query", method="POST", body=payload))

            threads = [threading.Thread(target=one) for _ in range(7)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            blocker.join()
        # every connection got an HTTP response: nothing dropped
        assert len(results) == 7
        statuses = sorted(status for status, _, _ in results)
        assert set(statuses) <= {200, 429}
        # the waiting room holds one; the burst beyond it must shed
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 4
        for status, headers, body in results:
            if status == 429:
                assert body["error"]["code"] == "overloaded"
                assert body["error"]["retry_after_seconds"] > 0
                assert "Retry-After" in headers

    def test_deadline_expires_while_queued(self, data):
        _, queries = data
        server, _ = slow_server(delay=0.6, max_concurrency=1, queue_limit=4)
        payload = {"vector": queries[0][:DIM].tolist(), "request": {"k": 3}}
        with server:
            blocker = threading.Thread(
                target=request_json,
                args=(server.url + "/query",),
                kwargs={"method": "POST", "body": payload},
            )
            blocker.start()
            wait_until(lambda: server.admission.active >= 1)
            status, body = request_json(
                server.url + "/query", method="POST", body=payload, deadline_ms=100
            )
            blocker.join()
        assert status == 504
        assert body["error"]["code"] == "deadline_exceeded"
        assert body["error"]["stage"] == "queued"

    def test_deadline_expires_mid_execution_and_stops_work(self, data):
        _, queries = data
        server, index = slow_server(delay=0.12, max_concurrency=1, queue_limit=4)
        vectors = np.tile(queries[0][:DIM], (8, 1))
        with server:
            status, body = request_json(
                server.url + "/batch_query", method="POST",
                body={"vectors": vectors.tolist(), "request": {"k": 3}},
                deadline_ms=300,
            )
            assert status == 504
            assert body["error"]["stage"] == "execution"
            time.sleep(0.3)  # any orphaned work would keep counting
            calls_after = index.calls
        # 8 chunks were requested; expiry stopped the loop well short
        assert calls_after < 8

    def test_deadline_metrics_and_stats_counters(self, data):
        _, queries = data
        server, _ = slow_server(delay=0.5, max_concurrency=1, queue_limit=0)
        payload = {"vector": queries[0][:DIM].tolist(), "request": {"k": 3}}
        with server:
            blocker = threading.Thread(
                target=request_json,
                args=(server.url + "/query",),
                kwargs={"method": "POST", "body": payload},
            )
            blocker.start()
            wait_until(lambda: server.admission.active >= 1)
            # the slot is held and the waiting room is zero-sized: these
            # must be shed immediately with typed 429s
            for _ in range(2):
                status, body = request_json(
                    server.url + "/query", method="POST", body=payload
                )
                assert status == 429, body
            status, stats = request_json(server.url + "/stats")
            assert status == 200
            assert stats["server"]["shed_total"] >= 2
            blocker.join()
            status, stats = request_json(server.url + "/stats")
            assert stats["server"]["admitted_total"] >= 1
            status, text = request_json(server.url + "/metrics")
            assert status == 200
        assert "repro_http_shed_total" in text
        assert 'repro_http_requests_total{endpoint="query",status="200"}' in text
        assert "repro_http_request_seconds_bucket" in text
        assert 'le="+Inf"' in text

    def test_admission_controller_unit(self):
        async def scenario():
            controller = AdmissionController(1, 0)
            await controller.admit(Deadline(None))
            with pytest.raises(ShedLoad):
                await controller.admit(Deadline(None))
            with pytest.raises(DeadlineExpired):
                # queue_limit=0 still sheds, so use a waiting-room of 1
                waiting = AdmissionController(1, 1)
                await waiting.admit(Deadline(None))
                await waiting.admit(Deadline(0.05))
            controller.release(exec_seconds=0.01)
            assert controller.depth == 0
            assert await controller.drain(timeout=1.0) is True

        import asyncio

        asyncio.run(scenario())


class TestDrain:
    def test_inflight_completes_then_listener_closes(self, data):
        _, queries = data
        server, _ = slow_server(delay=0.5, max_concurrency=1, queue_limit=4)
        server.start_in_thread()
        url = server.url
        outcome = {}

        def slow_call():
            outcome["response"] = request_json(
                url + "/query", method="POST",
                body={"vector": queries[0][:DIM].tolist(), "request": {"k": 3}},
            )

        thread = threading.Thread(target=slow_call)
        thread.start()
        wait_until(lambda: server.admission.active >= 1)
        clean = server.stop()
        thread.join()
        assert clean is True
        assert outcome["response"][0] == 200
        with pytest.raises(urllib.error.URLError):
            request_json(url + "/healthz", timeout=2.0)

    def test_mutation_during_drain_refused_503(self, data):
        _, queries = data
        server, _ = slow_server(delay=1.2, max_concurrency=1, queue_limit=4)
        server.start_in_thread()
        url = server.url
        payload = {"vector": queries[0][:DIM].tolist(), "request": {"k": 3}}
        blocker = threading.Thread(
            target=request_json,
            args=(url + "/query",),
            kwargs={"method": "POST", "body": payload},
        )
        blocker.start()
        wait_until(lambda: server.admission.active >= 1)
        stopper = threading.Thread(target=server.stop)
        stopper.start()
        wait_until(lambda: server.draining)
        # drain is waiting on the slow query; the listener is still open
        status, headers, body = http_call(
            url + "/add", method="POST",
            body={"vectors": [[0.0] * DIM]}, timeout=5.0,
        )
        assert status == 503
        assert body["error"]["code"] == "draining"
        status, _, health = http_call(url + "/healthz", timeout=5.0)
        assert status == 200 and health["status"] == "draining"
        blocker.join()
        stopper.join()
        assert server.drain_clean is True

    def test_drain_checkpoints_collection(self, tmp_path, data):
        base, _ = data
        collection = Collection.create(tmp_path / "col", build_sharded(base))
        with SearchServer(collection, config=ServerConfig(port=0)) as server:
            status, _ = request_json(
                server.url + "/add", method="POST",
                body={"vectors": [[0.5] * DIM]},
            )
            assert status == 200
            assert collection.wal_ops > 0
        # __exit__ drained: the WAL was folded into a fresh generation
        assert server.drain_clean is True
        assert collection.wal_ops == 0
        collection.close()


# ---------------------------------------------------------------------- #
# stats() consistency under concurrency (satellite 1)
# ---------------------------------------------------------------------- #
class TestStatsConsistency:
    def test_snapshot_is_internally_consistent_under_churn(self, data):
        base, queries = data
        service = SearchService(build_sharded(base), cache_size=64)
        stop = threading.Event()
        failures = []

        def searcher():
            i = 0
            while not stop.is_set():
                service.search(queries[i % len(queries)], QueryRequest(k=3))
                i += 1

        def mutator():
            rng = np.random.default_rng(7)
            while not stop.is_set():
                ids = service.add(rng.standard_normal((2, DIM)))
                service.remove(ids)

        def checker():
            try:
                for _ in range(200):
                    stats = service.stats()
                    queries_n = stats["queries"]
                    hits = stats["cache_hits"]
                    ratio = stats["cache_hit_ratio"]
                    assert 0 <= hits <= max(queries_n, 1)
                    expected = hits / queries_n if queries_n else 0.0
                    assert ratio == expected, (ratio, expected)
                    mutation = stats.get("mutation")
                    if mutation is not None and "mutation_pressure" in mutation:
                        derived = (
                            mutation.get("n_pending", 0) + mutation.get("n_tombstones", 0)
                        ) / max(mutation["n_live"], 1)
                        assert mutation["mutation_pressure"] == derived, mutation
            except Exception as exc:  # noqa: BLE001 - surfaced to the test
                failures.append(exc)

        threads = [
            threading.Thread(target=searcher),
            threading.Thread(target=mutator),
            threading.Thread(target=checker),
            threading.Thread(target=checker),
        ]
        for thread in threads:
            thread.start()
        threads[2].join()
        threads[3].join()
        stop.set()
        threads[0].join()
        threads[1].join()
        assert not failures, failures[0]


# ---------------------------------------------------------------------- #
# client retry policy: 429/503 with capped jittered backoff
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.5, jitter=0.0)
        assert policy.delay_seconds(0) == pytest.approx(0.1)
        assert policy.delay_seconds(1) == pytest.approx(0.2)
        assert policy.delay_seconds(2) == pytest.approx(0.4)
        assert policy.delay_seconds(3) == pytest.approx(0.5)  # capped

    def test_retry_after_overrides_backoff_but_not_the_cap(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(base_delay_seconds=0.1, max_delay_seconds=0.5, jitter=0.0)
        assert policy.delay_seconds(0, retry_after=0.3) == pytest.approx(0.3)
        assert policy.delay_seconds(0, retry_after=9.0) == pytest.approx(0.5)
        deaf = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.5, jitter=0.0,
            respect_retry_after=False,
        )
        assert deaf.delay_seconds(0, retry_after=0.3) == pytest.approx(0.1)

    def test_jitter_stays_within_the_fraction(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(base_delay_seconds=0.1, jitter=0.5, seed=7)
        delays = [policy.delay_seconds(0) for _ in range(64)]
        assert all(0.05 <= delay <= 0.15 for delay in delays)
        assert len(set(delays)) > 1

    def test_should_retry_matches_statuses_and_budget(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(429, 0) and policy.should_retry(503, 1)
        assert not policy.should_retry(429, 2)  # budget spent
        assert not policy.should_retry(500, 0)  # not a retryable status

    def test_validation(self):
        from repro.net import RetryPolicy
        from repro.utils.exceptions import ValidationError

        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay_seconds=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_delay_seconds=1.0, max_delay_seconds=0.5)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.0)

    def test_retry_after_from_header_and_error_body(self):
        from repro.net import retry_after_from

        assert retry_after_from({"retry-after": "1.5"}, None) == 1.5
        assert retry_after_from({"retry-after": "soon"}, None) is None
        assert retry_after_from({}, {"error": {"retry_after_seconds": 0.25}}) == 0.25
        assert retry_after_from({}, {"error": {}}) is None

    @staticmethod
    def _canned(status_line, body, extra_headers=()):
        payload = json.dumps(body).encode("utf-8")
        head = [
            status_line,
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            *extra_headers,
        ]
        return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload

    def _run_against_canned(self, responses, retry):
        """Serve scripted responses on a raw socket; return the final reply."""
        import asyncio

        from repro.net import AsyncHttpClient

        remaining = list(responses)
        served = []

        async def handler(reader, writer):
            while remaining:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break
                length = 0
                for line in head.decode("latin-1").split("\r\n"):
                    if line.lower().startswith("content-length:"):
                        length = int(line.split(":", 1)[1])
                if length:
                    await reader.readexactly(length)
                writer.write(remaining.pop(0))
                served.append(1)
                await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            async with AsyncHttpClient("127.0.0.1", port, retry=retry) as client:
                status, headers, parsed = await client.get("/query")
                retries = client.retries_total
            server.close()
            await server.wait_closed()
            return status, parsed, retries, len(served)

        import asyncio as _asyncio

        return _asyncio.run(scenario())

    def test_client_retries_through_429_and_503_to_success(self):
        from repro.net import RetryPolicy

        responses = [
            self._canned(
                "HTTP/1.1 429 Too Many Requests",
                {"error": {"code": "overloaded", "retry_after_seconds": 0.001}},
                ("Retry-After: 0.001",),
            ),
            self._canned("HTTP/1.1 503 Service Unavailable", {"error": {"code": "draining"}}),
            self._canned("HTTP/1.1 200 OK", {"ok": True}),
        ]
        status, parsed, retries, served = self._run_against_canned(
            responses,
            RetryPolicy(max_retries=3, base_delay_seconds=0.001, jitter=0.0),
        )
        assert (status, parsed) == (200, {"ok": True})
        assert retries == 2 and served == 3

    def test_exhausted_budget_returns_the_last_typed_response(self):
        from repro.net import RetryPolicy

        responses = [
            self._canned("HTTP/1.1 429 Too Many Requests", {"error": {"code": "overloaded"}})
            for _ in range(3)
        ]
        status, parsed, retries, served = self._run_against_canned(
            responses, RetryPolicy(max_retries=2, base_delay_seconds=0.001, jitter=0.0)
        )
        assert status == 429 and parsed["error"]["code"] == "overloaded"
        assert retries == 2 and served == 3

    def test_no_policy_means_no_retries(self):
        responses = [
            self._canned("HTTP/1.1 429 Too Many Requests", {"error": {"code": "overloaded"}})
        ]
        status, parsed, retries, served = self._run_against_canned(responses, None)
        assert status == 429 and retries == 0 and served == 1

"""Persistence corruption paths must fail loudly with typed errors.

A production restart loads its indexes from disk; a artifact damaged by a
partial copy, a full disk, or a botched deploy must raise
:class:`~repro.utils.exceptions.SerializationError` — never come back as
a silently empty (or subtly wrong) index.  Covered here:

* truncated / zero-byte / garbage ``arrays.npz``;
* a sharded deployment missing one shard artifact;
* a manifest whose registry name and recorded class disagree
  (hand-edited or mixed from two artifacts);
* corrupt JSON manifests, including the attribute-store sidecar.
"""

import json
import shutil

import numpy as np
import pytest

from repro.api import load_index, make_index
from repro.filter import random_attribute_store
from repro.shard import ShardedIndex
from repro.utils.exceptions import SerializationError


@pytest.fixture()
def base():
    return np.random.default_rng(0).normal(size=(80, 8))


def save_kmeans(tmp_path, base):
    path = tmp_path / "kmeans"
    make_index("kmeans", n_bins=4, seed=0).build(base).save(path)
    return path


class TestTruncatedArrays:
    def test_truncated_npz_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        arrays = path / "arrays.npz"
        arrays.write_bytes(arrays.read_bytes()[: arrays.stat().st_size // 2])
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load_index(path)

    def test_zero_byte_npz_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        (path / "arrays.npz").write_bytes(b"")
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load_index(path)

    def test_garbage_npz_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        (path / "arrays.npz").write_bytes(b"not a zip archive at all")
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load_index(path)

    def test_truncated_attribute_arrays_raise(self, tmp_path, base):
        index = ShardedIndex(2, parallel="serial").build(base)
        index.set_attributes(random_attribute_store(base.shape[0], seed=1))
        path = tmp_path / "with-attrs"
        index.save(path)
        sidecar = path / "attributes.npz"
        sidecar.write_bytes(sidecar.read_bytes()[:10])
        with pytest.raises(SerializationError, match="truncated or corrupt"):
            load_index(path)


class TestMissingArtifacts:
    def test_missing_shard_artifact_raises(self, tmp_path, base):
        path = tmp_path / "sharded"
        ShardedIndex(3, parallel="serial").build(base).save(path)
        shutil.rmtree(path / "shard-1")
        with pytest.raises(SerializationError, match="not a saved index"):
            load_index(path)

    def test_missing_manifest_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        (path / "index.json").unlink()
        with pytest.raises(SerializationError, match="not a saved index"):
            load_index(path)


class TestManifestMismatch:
    def test_registry_name_and_class_disagreeing_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        metadata = json.loads((path / "index.json").read_text())
        metadata["name"] = "bruteforce"  # dispatches to the wrong backend
        (path / "index.json").write_text(json.dumps(metadata))
        with pytest.raises(SerializationError, match="do not belong together"):
            load_index(path)

    def test_garbage_manifest_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        (path / "index.json").write_text("{not json")
        with pytest.raises(SerializationError, match="could not read"):
            load_index(path)

    def test_wrong_format_marker_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        metadata = json.loads((path / "index.json").read_text())
        metadata["format"] = "something-else"
        (path / "index.json").write_text(json.dumps(metadata))
        with pytest.raises(SerializationError, match="is not a repro-index"):
            load_index(path)

    def test_future_format_version_raises(self, tmp_path, base):
        path = save_kmeans(tmp_path, base)
        metadata = json.loads((path / "index.json").read_text())
        metadata["format_version"] = 99
        (path / "index.json").write_text(json.dumps(metadata))
        with pytest.raises(SerializationError, match="format version"):
            load_index(path)

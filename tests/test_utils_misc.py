"""Tests for repro.utils rng / validation / timing / exceptions."""

import time

import numpy as np
import pytest

from repro.utils import (
    ConfigurationError,
    NotFittedError,
    ReproError,
    Stopwatch,
    ValidationError,
    as_float_matrix,
    as_query_matrix,
    check_fraction,
    check_labels,
    check_positive_int,
    resolve_rng,
    spawn_rngs,
    timed,
)


class TestRng:
    def test_none_seed_is_deterministic(self):
        a = resolve_rng(None).integers(0, 1000, 5)
        b = resolve_rng(None).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_int_seed_reproducible(self):
        assert resolve_rng(42).random() == resolve_rng(42).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_spawn_rngs_are_independent(self):
        rngs = spawn_rngs(0, 3)
        values = [r.random() for r in rngs]
        assert len(set(values)) == 3

    def test_spawn_rngs_reproducible(self):
        first = [r.random() for r in spawn_rngs(7, 4)]
        second = [r.random() for r in spawn_rngs(7, 4)]
        assert first == second

    def test_spawn_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_as_float_matrix_promotes_1d(self):
        out = as_float_matrix([1.0, 2.0, 3.0])
        assert out.shape == (1, 3)

    def test_as_float_matrix_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            as_float_matrix(np.array([[np.nan, 1.0]]))

    def test_as_float_matrix_rejects_3d(self):
        with pytest.raises(ValidationError):
            as_float_matrix(np.zeros((2, 2, 2)))

    def test_as_float_matrix_rejects_empty(self):
        with pytest.raises(ValidationError):
            as_float_matrix(np.zeros((0, 3)))

    def test_as_query_matrix_checks_dim(self):
        with pytest.raises(ValidationError, match="dimension"):
            as_query_matrix(np.zeros((2, 3)), dim=5)

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.5, "f") == 0.5
        with pytest.raises(ValidationError):
            check_fraction(0.0, "f")
        assert check_fraction(0.0, "f", inclusive_low=True) == 0.0
        with pytest.raises(ValidationError):
            check_fraction(1.5, "f")

    def test_check_labels_length(self):
        out = check_labels([0, 1, 2], 3)
        assert out.dtype == np.int64
        with pytest.raises(ValidationError):
            check_labels([0, 1], 3)


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(ValidationError, ReproError)
        assert issubclass(NotFittedError, ReproError)


class TestTiming:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        with sw.section("a"):
            time.sleep(0.01)
        with sw.section("a"):
            time.sleep(0.01)
        with sw.section("b"):
            pass
        totals = sw.totals()
        assert totals["a"] >= 0.02
        assert "b" in totals
        assert len(sw.records()) == 3

    def test_timed_context(self):
        with timed() as result:
            time.sleep(0.01)
        assert result[0] >= 0.01

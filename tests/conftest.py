"""Shared fixtures for the test suite.

Datasets are deliberately tiny so the full suite runs in well under a
minute; the benchmark harness under ``benchmarks/`` is where realistic
scales live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import KnnMatrix, UspConfig, UspIndex, build_knn_matrix
from repro.datasets import AnnDataset, sift_like


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset() -> AnnDataset:
    """A small clustered ANN dataset (600 base points, 40 queries, 16-d)."""
    return sift_like(n_points=600, n_queries=40, dim=16, n_clusters=6, gt_k=20, seed=3)


@pytest.fixture(scope="session")
def tiny_knn(tiny_dataset: AnnDataset) -> KnnMatrix:
    return build_knn_matrix(tiny_dataset.base, 8)


@pytest.fixture(scope="session")
def fast_usp_config() -> UspConfig:
    """A USP configuration that trains in a second or two on the tiny dataset."""
    return UspConfig(
        n_bins=4,
        k_prime=8,
        eta=10.0,
        hidden_dim=32,
        epochs=6,
        max_batch_size=128,
        min_batch_size=64,
        learning_rate=3e-3,
        seed=0,
    )


@pytest.fixture(scope="session")
def built_usp_index(tiny_dataset: AnnDataset, tiny_knn: KnnMatrix, fast_usp_config: UspConfig) -> UspIndex:
    """A trained USP index shared by the read-only query/introspection tests."""
    return UspIndex(fast_usp_config).build(tiny_dataset.base, knn=tiny_knn)


@pytest.fixture(scope="session")
def blob_points(rng: np.random.Generator) -> np.ndarray:
    """Three well-separated Gaussian blobs in 2-D (for clustering tests)."""
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    labels = np.repeat(np.arange(3), 60)
    return centers[labels] + rng.normal(scale=0.6, size=(180, 2))


@pytest.fixture(scope="session")
def blob_labels() -> np.ndarray:
    return np.repeat(np.arange(3), 60)

"""The PR 1 naming convention is enforced: indexes build, codecs fit.

The old spellings survive as thin aliases that must emit exactly one
``DeprecationWarning`` per call — one, so callers are told; exactly one,
so composite indexes (ensembles, hierarchies, ScaNN pipelines) do not
multiply the warning through their internal members.
"""

import warnings

import numpy as np
import pytest

from repro.api import make_index
from repro.datasets import sift_like

from test_api_registry import TINY_PARAMS


@pytest.fixture(scope="module")
def deprecation_dataset():
    return sift_like(n_points=300, n_queries=8, dim=16, n_clusters=4, gt_k=10, seed=5)


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
class TestFitAliasWarnsOncePerCall:
    def test_fit_warns_exactly_once_per_call(self, name, deprecation_dataset):
        index = make_index(name, **TINY_PARAMS[name])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index.fit(deprecation_dataset.base)
        first_call = _deprecations(caught)
        assert len(first_call) == 1, (
            f"{name}.fit() emitted {len(first_call)} DeprecationWarnings, expected 1"
        )
        assert "use build" in str(first_call[0].message)
        assert index.is_built
        # A second call warns again (once): the alias is per-call, not one-shot.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index.fit(deprecation_dataset.base)
        assert len(_deprecations(caught)) == 1

    def test_build_is_silent(self, name, deprecation_dataset):
        index = make_index(name, **TINY_PARAMS[name])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            index.build(deprecation_dataset.base)
        assert not _deprecations(caught)


@pytest.mark.parametrize("quantizer_name", ["ProductQuantizer", "AnisotropicQuantizer"])
class TestQuantizerBuildAliasWarnsOncePerCall:
    def _make(self, quantizer_name):
        import repro.ann as ann

        cls = getattr(ann, quantizer_name)
        return cls(4, 4, seed=0)

    def test_build_warns_exactly_once_per_call(self, quantizer_name, deprecation_dataset):
        quantizer = self._make(quantizer_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            quantizer.build(deprecation_dataset.base)
        deprecated = _deprecations(caught)
        assert len(deprecated) == 1
        assert "use fit" in str(deprecated[0].message)

    def test_fit_is_silent(self, quantizer_name, deprecation_dataset):
        quantizer = self._make(quantizer_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            quantizer.fit(deprecation_dataset.base)
        assert not _deprecations(caught)


def test_every_registered_index_is_covered():
    """TINY_PARAMS drives this module; it must track the live registry."""
    from repro.api import available_indexes

    assert set(TINY_PARAMS) == set(available_indexes())


def test_deprecated_calls_still_return_usable_indexes(deprecation_dataset):
    index = make_index("kmeans", n_bins=4, seed=0)
    with pytest.warns(DeprecationWarning):
        index.fit(deprecation_dataset.base)
    ids, distances = index.batch_query(deprecation_dataset.queries, 3, n_probes=2)
    assert ids.shape == (deprecation_dataset.n_queries, 3)
    assert np.all(np.isfinite(distances))

"""Multi-tenant serving tests: quotas, ACL injection, fairness, metrics.

The central guarantees:

* **token buckets** — driven by an injected fake clock (no sleeping):
  burst consumption, sustained refill, and a denial's ``Retry-After``
  accurate to the refill schedule (retrying at exactly that instant
  succeeds; a hair earlier still fails);
* **ACL correctness** — a tenant's query through its gateway returns
  bitwise-identical ids to brute force over ``And(acl, user_filter)``'s
  subset, across selectivities and back-ends including the sharded path
  (hypothesis property);
* **cache isolation** — two tenants with different ACLs can never share
  a cached answer, on the shared service cache or the per-tenant
  partitions, because the injected predicate is in every cache key;
* **fairness** — the cross-tenant scheduler's coalesced batches are
  bitwise-identical to per-tenant serial execution, and a flooding
  tenant cannot starve a neighbour's round share;
* **wire behaviour** — 429 ``quota_exceeded`` (refill-derived
  ``Retry-After``) distinct from admission sheds, 404 ``unknown_tenant``,
  400 ``missing_tenant``, and ``/metrics`` label values escaped against
  hostile tenant names.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_index
from repro.filter import And, AttributeStore, Eq, Range
from repro.net import SearchServer, ServerConfig, request_json
from repro.net.metrics import ServerMetrics, escape_label_value, format_labels
from repro.service import QueryRequest, Router, SearchService
from repro.service.cache import QueryCache
from repro.tenant import (
    CacheBudget,
    FairScheduler,
    TenantConfig,
    TenantGateway,
    TenantRegistry,
    TokenBucket,
)
from repro.utils.distances import pairwise_topk
from repro.utils.exceptions import (
    QuotaExceededError,
    UnknownTenantError,
    ValidationError,
)

DIM = 8


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += float(seconds)


def make_service(n=200, *, owners=("acme", "globex"), cache_size=0, metric="euclidean"):
    rng = np.random.default_rng(5)
    base = rng.normal(size=(n, DIM))
    index = make_index("bruteforce", metric=metric)
    index.build(base)
    store = AttributeStore()
    store.add_categorical("owner", [owners[i % len(owners)] for i in range(n)])
    store.add_numeric("score", np.arange(n, dtype=np.float64) / n)
    index.set_attributes(store)
    return SearchService(index, name="ns", cache_size=cache_size), base, store


def make_mutable_service(n=50):
    from repro.shard import ShardedIndex

    rng = np.random.default_rng(7)
    base = rng.normal(size=(n, DIM))
    index = ShardedIndex(2, compact_threshold=None, parallel="serial").build(base)
    return SearchService(index, name="ns"), base


# ---------------------------------------------------------------------- #
# token buckets (fake clock; no time.sleep anywhere)
# ---------------------------------------------------------------------- #
class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire() is None
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        assert bucket.granted == 4 and bucket.denied == 1

    def test_sustained_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=8.0, burst=1.0, clock=clock)
        served = 0
        for _ in range(50):
            if bucket.try_acquire() is None:
                served += 1
            clock.advance(0.125)  # exactly the refill period (binary-exact)
        assert served == 50  # 8/s sustained is exactly affordable

    def test_retry_after_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
        bucket.try_acquire(2)  # drain
        retry = bucket.try_acquire()
        assert retry == pytest.approx(0.25)
        # A hair before the promised instant: still denied.
        clock.advance(retry - 1e-6)
        assert bucket.try_acquire() is not None
        # At the promised instant: granted.
        clock.advance(1e-6)
        assert bucket.try_acquire() is None

    def test_oversize_acquire_needs_full_bucket(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        # Full bucket: a batch larger than burst is granted as debt.
        assert bucket.try_acquire(10) is None
        assert bucket.tokens == pytest.approx(-6.0)
        # In debt: even one token is denied, with the wait to refill to
        # a single token (bucket must climb from -6 to 1 at 1/s).
        retry = bucket.try_acquire()
        assert retry == pytest.approx(7.0)
        # Debt refills at the configured rate — sustained throughput is
        # still bounded by rate regardless of oversize grants.
        clock.advance(7.0)
        assert bucket.try_acquire() is None

    def test_not_full_oversize_is_denied(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        bucket.try_acquire()  # no longer full
        retry = bucket.try_acquire(10)
        assert retry == pytest.approx(1.0)  # time to refill back to burst

    def test_acquire_or_raise_carries_fields(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        bucket.try_acquire()
        with pytest.raises(QuotaExceededError) as excinfo:
            bucket.acquire_or_raise(resource="qps")
        assert excinfo.value.resource == "qps"
        assert excinfo.value.retry_after_seconds == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            TokenBucket(rate=0)
        with pytest.raises(ValidationError):
            TokenBucket(rate=1.0, burst=-1.0)


# ---------------------------------------------------------------------- #
# declarative tenant config
# ---------------------------------------------------------------------- #
class TestTenantConfig:
    def test_round_trips_through_json_shape(self):
        config = TenantConfig(
            acl=And(Eq("owner", "acme"), Range("score", high=0.5)),
            max_vectors=1000,
            qps=50.0,
            qps_burst=100.0,
            write_ops=5.0,
            cache_weight=2.0,
        )
        clone = TenantConfig.from_dict(config.as_dict())
        assert clone.acl.fingerprint() == config.acl.fingerprint()
        assert clone.max_vectors == 1000 and clone.qps_burst == 100.0
        assert clone.cache_weight == 2.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            TenantConfig(acl="owner == acme")
        with pytest.raises(ValidationError):
            TenantConfig(qps=-1.0)
        with pytest.raises(ValidationError):
            TenantConfig(qps_burst=10.0)  # burst without a rate
        with pytest.raises(ValidationError):
            TenantConfig(cache_weight=0.0)
        with pytest.raises(ValidationError):
            TenantConfig.from_dict({"surprise": 1})


# ---------------------------------------------------------------------- #
# byte-accounted result cache + the shared budget
# ---------------------------------------------------------------------- #
class TestQueryCacheBytes:
    def test_stats_report_resident_bytes(self):
        cache = QueryCache(8)
        key = QueryCache.key_for(np.zeros(DIM), ("r",))
        ids = np.arange(5, dtype=np.int64)
        distances = np.zeros(5)
        cache.put(key, ids, distances)
        expected = ids.nbytes + distances.nbytes + len(key[0])
        stats = cache.stats()
        assert stats["cache_bytes"] == expected
        # Replacing the same key must not double-charge.
        cache.put(key, ids, distances)
        assert cache.stats()["cache_bytes"] == expected
        cache.clear()
        assert cache.stats()["cache_bytes"] == 0

    def test_max_bytes_evicts_lru(self):
        cache = QueryCache(100, max_bytes=600)
        entries = []
        for i in range(5):
            key = QueryCache.key_for(np.full(DIM, float(i)), ("r",))
            entries.append(key)
            cache.put(key, np.arange(10, dtype=np.int64), np.zeros(10))
        stats = cache.stats()
        assert stats["cache_bytes"] <= 600
        assert stats["evictions"] > 0
        assert cache.get(entries[0]) is None  # oldest went first
        assert cache.get(entries[-1]) is not None

    def test_entry_count_knob_still_works(self):
        cache = QueryCache(2)
        for i in range(4):
            cache.put(
                QueryCache.key_for(np.full(DIM, float(i)), ("r",)),
                np.arange(3, dtype=np.int64),
                np.zeros(3),
            )
        assert len(cache) == 2
        assert cache.stats()["max_bytes"] is None

    def test_service_stats_surface_cache_bytes(self):
        service, base, _ = make_service(cache_size=4)
        service.search(base[0], k=3)
        assert service.stats()["cache_bytes"] > 0


class TestCacheBudget:
    @staticmethod
    def fill(cache, n, tag):
        for i in range(n):
            cache.put(
                QueryCache.key_for(np.full(DIM, float(i)), (tag,)),
                np.arange(16, dtype=np.int64),
                np.zeros(16),
            )

    def test_weighted_eviction_prefers_low_weight(self):
        budget = CacheBudget(2000)
        light = budget.create_partition("light", weight=1.0)
        heavy = budget.create_partition("heavy", weight=4.0)
        self.fill(light, 10, "light")
        self.fill(heavy, 10, "heavy")
        assert budget.total_bytes() > 2000
        budget.reconcile()
        assert budget.total_bytes() <= 2000
        # Pressure lands on bytes-per-weight: the weight-1 partition
        # shrinks well below the weight-4 one.
        assert light.bytes < heavy.bytes
        assert budget.evictions > 0

    def test_partition_lifecycle(self):
        budget = CacheBudget(1 << 20)
        budget.create_partition("a")
        with pytest.raises(ValidationError):
            budget.create_partition("a")
        assert "a" in budget.stats()["partitions"]
        budget.drop_partition("a")
        assert "a" not in budget.stats()["partitions"]


# ---------------------------------------------------------------------- #
# the gateway: ACL injection, quotas, per-tenant cache
# ---------------------------------------------------------------------- #
class TestTenantGateway:
    def test_acl_restricts_results(self):
        service, base, store = make_service()
        gateway = TenantGateway("acme", service, TenantConfig(acl=Eq("owner", "acme")))
        allowed = set(np.flatnonzero(Eq("owner", "acme").mask(store)))
        result = gateway.search_batch(base[:10], k=5)
        assert set(result.ids[result.ids >= 0].tolist()) <= allowed

    def test_acl_composes_with_user_predicate(self):
        service, base, store = make_service()
        gateway = TenantGateway("acme", service, TenantConfig(acl=Eq("owner", "acme")))
        user = Range("score", high=0.25)
        request = gateway.effective_request(QueryRequest(k=5, filter=user))
        combined = And(Eq("owner", "acme"), user)
        assert request.filter.fingerprint() == combined.fingerprint()

    def test_acl_refuses_mask_filters(self):
        service, base, _ = make_service()
        gateway = TenantGateway("acme", service, TenantConfig(acl=Eq("owner", "acme")))
        with pytest.raises(ValidationError, match="mask/allowlist"):
            gateway.search(base[0], k=3, filter=np.zeros(200, dtype=bool))

    def test_no_acl_passes_requests_through(self):
        service, base, _ = make_service()
        gateway = TenantGateway("open", service)
        direct = service.search(base[0], k=4)
        via = gateway.search(base[0], k=4)
        np.testing.assert_array_equal(direct.ids, via.ids)

    def test_vector_quota_is_hard(self):
        service, base = make_mutable_service()
        gateway = TenantGateway("acme", service, TenantConfig(max_vectors=3))
        rng = np.random.default_rng(0)
        gateway.add(rng.normal(size=(3, DIM)))
        with pytest.raises(QuotaExceededError) as excinfo:
            gateway.add(rng.normal(size=(1, DIM)))
        assert excinfo.value.resource == "vectors"
        assert excinfo.value.retry_after_seconds is None  # waiting won't help
        assert gateway.vectors_used == 3

    def test_remove_frees_vector_quota(self):
        service, base = make_mutable_service()
        gateway = TenantGateway("acme", service, TenantConfig(max_vectors=2))
        ids = gateway.add(np.random.default_rng(1).normal(size=(2, DIM)))
        gateway.remove(ids[:1])
        assert gateway.vectors_used == 1
        gateway.add(np.random.default_rng(2).normal(size=(1, DIM)))  # fits again

    def test_write_bucket_meters_mutations(self):
        clock = FakeClock()
        service, base = make_mutable_service()
        gateway = TenantGateway(
            "acme", service, TenantConfig(write_ops=1.0, write_burst=1.0), clock=clock
        )
        gateway.add(np.random.default_rng(3).normal(size=(1, DIM)))
        with pytest.raises(QuotaExceededError) as excinfo:
            gateway.remove([0])
        assert excinfo.value.resource == "write_ops"
        clock.advance(1.0)
        gateway.remove([0])  # refilled

    def test_query_bucket_charges_rows(self):
        clock = FakeClock()
        service, base, _ = make_service()
        gateway = TenantGateway(
            "acme", service, TenantConfig(qps=100.0, qps_burst=10.0), clock=clock
        )
        gateway.search_batch(base[:10], k=3)  # exactly the burst
        with pytest.raises(QuotaExceededError):
            gateway.search(base[0], k=3)
        assert gateway.stats()["quota_denials"] == 1

    def test_partition_serves_repeat_queries(self):
        service, base, _ = make_service()
        budget = CacheBudget(1 << 20)
        gateway = TenantGateway(
            "acme",
            service,
            TenantConfig(acl=Eq("owner", "acme")),
            cache=budget.create_partition("acme"),
            budget=budget,
        )
        cold = gateway.search_batch(base[:6], k=4)
        warm = gateway.search_batch(base[:6], k=4)
        np.testing.assert_array_equal(cold.ids, warm.ids)
        assert warm.cache_hits == 6
        assert gateway.cache.stats()["hits"] == 6

    def test_partition_invalidates_on_mutation(self):
        service, base = make_mutable_service()
        budget = CacheBudget(1 << 20)
        gateway = TenantGateway(
            "acme", service, cache=budget.create_partition("acme"), budget=budget
        )
        gateway.search_batch(base[:4], k=3)
        assert len(gateway.cache) == 4
        gateway.add(np.random.default_rng(4).normal(size=(1, DIM)))
        gateway.search(base[0], k=3)  # tag changed: partition was cleared
        assert gateway.cache.stats()["hits"] == 0

    def test_cross_tenant_cache_isolation(self):
        # Both tenants share one namespace *and* its service-level cache;
        # the same vector must still answer per each tenant's ACL.
        service, base, store = make_service(cache_size=64)
        acme = TenantGateway("acme", service, TenantConfig(acl=Eq("owner", "acme")))
        globex = TenantGateway(
            "globex", service, TenantConfig(acl=Eq("owner", "globex"))
        )
        first = acme.search(base[0], k=5)
        second = globex.search(base[0], k=5)
        acme_rows = set(np.flatnonzero(Eq("owner", "acme").mask(store)))
        globex_rows = set(np.flatnonzero(Eq("owner", "globex").mask(store)))
        assert set(first.ids[first.ids >= 0].tolist()) <= acme_rows
        assert set(second.ids[second.ids >= 0].tolist()) <= globex_rows
        assert not second.cached  # different fingerprint, different key

    def test_stats_and_service_config_overlay(self):
        service, base, _ = make_service()
        gateway = TenantGateway(
            "acme", service, TenantConfig(acl=Eq("owner", "acme"), qps=10.0)
        )
        gateway.search(base[0], k=3)
        stats = gateway.stats()
        assert stats["tenant"] == "acme" and stats["queries"] == 1
        assert stats["qps_bucket"]["granted"] == 1
        config = gateway.service_config()
        assert config["tenant"]["name"] == "acme"
        assert config["tenant"]["acl"] is not None


# ---------------------------------------------------------------------- #
# hypothesis property: gateway answers == bruteforce over And(acl, user)
# ---------------------------------------------------------------------- #
def exact_filtered(base, queries, mask, k, metric="euclidean"):
    allowed = np.flatnonzero(mask)
    if allowed.size == 0:
        return (
            np.full((queries.shape[0], k), -1, dtype=np.int64),
            np.full((queries.shape[0], k), np.inf),
        )
    local, distances = pairwise_topk(
        queries, base[allowed], min(k, allowed.size), metric=metric
    )
    ids = allowed[local]
    if ids.shape[1] < k:
        pad = k - ids.shape[1]
        ids = np.pad(ids, ((0, 0), (0, pad)), constant_values=-1)
        distances = np.pad(distances, ((0, 0), (0, pad)), constant_values=np.inf)
    return ids, distances


class TestAclProperty:
    SELECTIVITIES = (0.05, 0.3, 1.0)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        backend=st.sampled_from(["bruteforce", "sharded-bruteforce"]),
        owner=st.sampled_from(["acme", "globex"]),
    )
    def test_gateway_matches_bruteforce_over_acl_subset(self, seed, backend, owner):
        rng = np.random.default_rng(seed)
        n = 240
        base = rng.normal(size=(n, DIM))
        queries = rng.normal(size=(5, DIM))
        store = AttributeStore()
        store.add_categorical(
            "owner", ["acme" if i % 3 else "globex" for i in range(n)]
        )
        store.add_numeric("score", rng.permutation(n).astype(np.float64) / n)
        kwargs = {"n_shards": 3} if backend == "sharded-bruteforce" else {}
        index = make_index(backend, **kwargs).build(base)
        index.set_attributes(store)
        service = SearchService(index, name="ns")
        acl = Eq("owner", owner)
        gateway = TenantGateway(owner, service, TenantConfig(acl=acl))
        try:
            for selectivity in self.SELECTIVITIES:
                user = Range("score", high=selectivity - 0.5 / n)
                mask = And(acl, user).mask(store)
                expected_ids, expected_distances = exact_filtered(
                    base, queries, mask, 10
                )
                got = gateway.search_batch(queries, k=10, filter=user)
                np.testing.assert_array_equal(got.ids, expected_ids)
                np.testing.assert_allclose(
                    got.distances, expected_distances, rtol=1e-12
                )
        finally:
            close = getattr(index, "close", None)
            if close is not None:
                close()


# ---------------------------------------------------------------------- #
# the fair scheduler
# ---------------------------------------------------------------------- #
class TestFairScheduler:
    def make_tenants(self, *, qps=None):
        service, base, _ = make_service(n=300)
        config = TenantConfig(qps=qps) if qps else TenantConfig()
        a = TenantGateway("a", service, config)
        b = TenantGateway("b", service, TenantConfig())
        return service, base, a, b

    def test_coalesced_batches_match_serial_execution(self):
        service, base, a, b = self.make_tenants()
        scheduler = FairScheduler(quantum_rows=64)
        qa, qb = base[:12], base[12:20]
        fa = scheduler.submit(a, qa, k=7)
        fb = scheduler.submit(b, qb, k=7)
        scheduler.flush()
        # Equal requests against one service stack into ONE call...
        assert scheduler.stats()["coalesced_calls"] == 1
        assert scheduler.stats()["executed_calls"] == 1
        # ...and the slices are bitwise-identical to serial per-tenant runs.
        serial_a = service.search_batch(qa, k=7)
        serial_b = service.search_batch(qb, k=7)
        np.testing.assert_array_equal(fa.result().ids, serial_a.ids)
        np.testing.assert_array_equal(fa.result().distances, serial_a.distances)
        np.testing.assert_array_equal(fb.result().ids, serial_b.ids)
        np.testing.assert_array_equal(fb.result().distances, serial_b.distances)

    def test_different_acls_do_not_coalesce_but_stay_correct(self):
        service, base, store = make_service(n=300)
        a = TenantGateway("a", service, TenantConfig(acl=Eq("owner", "acme")))
        b = TenantGateway("b", service, TenantConfig(acl=Eq("owner", "globex")))
        scheduler = FairScheduler()
        fa = scheduler.submit(a, base[:4], k=5)
        fb = scheduler.submit(b, base[:4], k=5)
        scheduler.flush()
        assert scheduler.stats()["coalesced_calls"] == 0
        assert scheduler.stats()["executed_calls"] == 2
        acme_rows = set(np.flatnonzero(Eq("owner", "acme").mask(store)))
        ids_a = fa.result().ids
        assert set(ids_a[ids_a >= 0].tolist()) <= acme_rows
        ids_b = fb.result().ids
        assert set(ids_b[ids_b >= 0].tolist()).isdisjoint(acme_rows)

    def test_drr_gives_flooded_neighbour_its_share(self):
        service, base, a, b = self.make_tenants()
        scheduler = FairScheduler(quantum_rows=8, max_pending_rows=10_000)
        # Tenant a floods; tenant b asks for one small batch.
        for _ in range(30):
            scheduler.submit(a, base[:8], k=3)
        fb = scheduler.submit(b, base[:4], k=3)
        scheduler.run_round()
        # One round: b is already served, despite a's 240-row backlog.
        assert fb.done()
        served = scheduler.stats()["served_rows"]
        assert served["b"] == 4
        assert scheduler.pending_rows("a") > 0
        scheduler.flush()
        assert scheduler.pending_rows() == 0

    def test_oversized_batch_banks_deficit(self):
        service, base, a, b = self.make_tenants()
        scheduler = FairScheduler(quantum_rows=4)
        big = scheduler.submit(a, base[:10], k=3)  # 10 rows > 4-row quantum
        assert scheduler.run_round() == 0  # banks 4
        assert scheduler.run_round() == 0  # banks 8
        assert scheduler.run_round() == 10  # 12 covers it
        assert big.done()

    def test_pending_bound_is_a_typed_quota(self):
        service, base, a, b = self.make_tenants()
        scheduler = FairScheduler(max_pending_rows=16)
        scheduler.submit(a, base[:16], k=3)
        with pytest.raises(QuotaExceededError) as excinfo:
            scheduler.submit(a, base[:1], k=3)
        assert excinfo.value.resource == "queue"
        scheduler.flush()

    def test_quota_is_charged_at_submit(self):
        clock = FakeClock()
        service, base, _ = make_service(n=300)
        a = TenantGateway(
            "a", service, TenantConfig(qps=100.0, qps_burst=8.0), clock=clock
        )
        scheduler = FairScheduler()
        scheduler.submit(a, base[:8], k=3)
        with pytest.raises(QuotaExceededError):
            scheduler.submit(a, base[:1], k=3)
        scheduler.flush()

    def test_background_thread_drains(self):
        service, base, a, b = self.make_tenants()
        with FairScheduler(quantum_rows=16) as scheduler:
            futures = [scheduler.submit(a, base[:4], k=3) for _ in range(5)]
            results = [f.result(timeout=10.0) for f in futures]
        assert all(r.ids.shape == (4, 3) for r in results)

    def test_failures_fan_out_to_submitters(self):
        service, base, a, b = self.make_tenants()
        scheduler = FairScheduler()
        future = scheduler.submit(a, np.zeros((2, DIM + 3)), k=3)  # bad dim
        scheduler.flush()
        with pytest.raises(Exception):
            future.result(timeout=1.0)


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #
class TestTenantRegistry:
    def test_unknown_tenant_is_typed(self):
        registry = TenantRegistry()
        with pytest.raises(UnknownTenantError):
            registry.gateway("nobody")
        with pytest.raises(UnknownTenantError):
            registry.drop_tenant("nobody")

    def test_lifecycle_and_stats(self):
        service, base, _ = make_service()
        registry = TenantRegistry(cache_budget_bytes=1 << 20)
        registry.add_namespace("ns", service)
        registry.create_tenant("acme", "ns", TenantConfig(qps=10.0))
        assert "acme" in registry and len(registry) == 1
        with pytest.raises(ValidationError):
            registry.create_tenant("acme", "ns")
        with pytest.raises(ValidationError):
            registry.create_tenant("other", "missing-ns")
        with pytest.raises(ValidationError):
            registry.create_tenant("bad name!", "ns")
        registry.gateway("acme").search(base[0], k=3)
        stats = registry.stats()
        assert stats["tenants"]["acme"]["queries"] == 1
        assert stats["cache_budget"]["max_bytes"] == 1 << 20
        registry.drop_tenant("acme")
        assert "acme" not in registry

    def test_submit_routes_through_scheduler(self):
        service, base, _ = make_service()
        registry = TenantRegistry()
        registry.add_namespace("ns", service)
        registry.create_tenant("acme", "ns")
        future = registry.submit("acme", base[:4], k=3)
        registry.scheduler.flush()
        assert future.result().ids.shape == (4, 3)

    def test_namespace_must_be_service_shaped(self):
        registry = TenantRegistry()
        with pytest.raises(ValidationError, match="serving target"):
            registry.add_namespace("ns", object())

    def test_router_hosts_gateways(self):
        service, base, _ = make_service()
        gateway = TenantGateway("acme", service, TenantConfig(acl=Eq("owner", "acme")))
        router = Router()
        router.add_tenant("tenant-acme", gateway)
        result = router.search(base[0], name="tenant-acme", k=4)
        assert result.ids.shape == (4,)
        with pytest.raises(ValidationError, match="tenant gateway"):
            router.add_tenant("bogus", object())

    def test_gateway_over_replica_group(self, tmp_path):
        # The delegate is duck-typed: a ReplicaGroup serves reads through
        # followers, writes through the primary — with tenant policy on top.
        from repro.replica import Follower, Primary, ReplicaGroup
        from repro.shard import ShardedIndex
        from repro.store import Collection

        rng = np.random.default_rng(9)
        base = rng.normal(size=(40, DIM))
        index = ShardedIndex(2, compact_threshold=None, parallel="serial").build(base)
        store = AttributeStore()
        store.add_categorical("owner", ["acme" if i % 2 else "globex" for i in range(40)])
        index.set_attributes(store)
        collection = Collection.create(tmp_path / "primary", index)
        primary = Primary(collection)
        follower = Follower.bootstrap(tmp_path / "replica", primary)
        group = ReplicaGroup(primary, [follower])
        gateway = TenantGateway(
            "acme",
            group,
            TenantConfig(acl=Eq("owner", "acme"), max_vectors=100),
        )
        result = gateway.search_batch(base[:5], k=4)
        allowed = set(np.flatnonzero(Eq("owner", "acme").mask(store)))
        assert set(result.ids[result.ids >= 0].tolist()) <= allowed
        # Replica groups cannot vouch for freshness: no gateway cache.
        assert gateway._partition() is None
        gateway.add(
            rng.normal(size=(2, DIM)),
            attributes={"owner": ["acme", "acme"]},
        )
        assert gateway.vectors_used == 2
        follower.collection.close()
        collection.close()


# ---------------------------------------------------------------------- #
# metrics escaping (hostile label values must not split a sample line)
# ---------------------------------------------------------------------- #
class TestMetricsEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_hostile_tenant_name_stays_one_sample_line(self):
        hostile = 'evil"} 1\ninjected_metric 999 # {x="'
        rendered = ServerMetrics().render(
            tenant_stats={hostile: {"queries": 3, "query_rows": 7}}
        )
        lines = [
            line
            for line in rendered.splitlines()
            if line.startswith("repro_tenant_queries_total{")
        ]
        assert len(lines) == 1
        assert lines[0].endswith(" 3")
        # The embedded newline never splits the sample: the injected
        # "metric" stays inside a quoted label value, never a line of
        # its own, and every rendered line still parses as exposition
        # text (comment, or name{...} value).
        assert 'evil"} 1\ninjected' not in rendered
        assert not any(
            line.startswith("injected_metric") for line in rendered.splitlines()
        )

    def test_format_labels_sorted_and_quoted(self):
        assert format_labels({"b": 1, "a": 'x"y'}) == '{a="x\\"y",b="1"}'


# ---------------------------------------------------------------------- #
# the wire: X-Tenant, typed 429/404/400, per-tenant scrape
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tenant_server():
    service, base, store = make_service(cache_size=16)
    registry = TenantRegistry(cache_budget_bytes=1 << 20)
    registry.add_namespace("ns", service)
    registry.create_tenant(
        "acme",
        "ns",
        TenantConfig(acl=Eq("owner", "acme"), qps=1e9, max_vectors=5),
    )
    registry.create_tenant(
        "starved", "ns", TenantConfig(qps=1e-3, qps_burst=1.0)
    )
    with SearchServer(registry, config=ServerConfig(port=0)) as server:
        yield server, base, store


class TestTenantServing:
    def test_tenant_header_serves_through_gateway(self, tenant_server):
        server, base, store = tenant_server
        status, body = request_json(
            server.url + "/query",
            method="POST",
            body={"vector": base[0].tolist(), "request": {"k": 5}},
            headers={"X-Tenant": "acme"},
        )
        assert status == 200
        allowed = set(np.flatnonzero(Eq("owner", "acme").mask(store)))
        assert set(i for i in body["ids"] if i >= 0) <= allowed

    def test_tenant_query_param_works_too(self, tenant_server):
        server, base, _ = tenant_server
        status, body = request_json(
            server.url + "/query?tenant=acme",
            method="POST",
            body={"vector": base[1].tolist(), "request": {"k": 3}},
        )
        assert status == 200

    def test_missing_tenant_is_400(self, tenant_server):
        server, base, _ = tenant_server
        status, body = request_json(
            server.url + "/query",
            method="POST",
            body={"vector": base[0].tolist()},
        )
        assert status == 400
        assert body["error"]["code"] == "missing_tenant"

    def test_unknown_tenant_is_404(self, tenant_server):
        server, base, _ = tenant_server
        status, body = request_json(
            server.url + "/query",
            method="POST",
            body={"vector": base[0].tolist()},
            headers={"X-Tenant": "nobody"},
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_tenant"

    def test_quota_429_is_distinct_from_admission_shed(self, tenant_server):
        server, base, _ = tenant_server
        payload = {"vector": base[0].tolist(), "request": {"k": 3}}
        first, _ = request_json(
            server.url + "/query",
            method="POST",
            body=payload,
            headers={"X-Tenant": "starved"},
        )
        assert first == 200  # burst of 1
        status, body = request_json(
            server.url + "/query",
            method="POST",
            body=payload,
            headers={"X-Tenant": "starved"},
        )
        assert status == 429
        assert body["error"]["code"] == "quota_exceeded"  # NOT "overloaded"
        assert body["error"]["resource"] == "qps"
        # Refill-derived: 1 token at 1e-3/s is a ~1000s wait.
        assert body["error"]["retry_after_seconds"] > 100

    def test_vector_quota_429_carries_no_retry_after(self, tenant_server):
        server, base, _ = tenant_server
        rng = np.random.default_rng(2)
        status, body = request_json(
            server.url + "/add",
            method="POST",
            body={"vectors": rng.normal(size=(9, DIM)).tolist()},
            headers={"X-Tenant": "acme"},
        )
        assert status == 429
        assert body["error"]["code"] == "quota_exceeded"
        assert body["error"]["resource"] == "vectors"
        assert "retry_after_seconds" not in body["error"]

    def test_stats_and_metrics_break_out_tenants(self, tenant_server):
        server, base, _ = tenant_server
        status, stats = request_json(server.url + "/stats")
        assert status == 200
        assert set(stats["tenants"]["tenants"]) == {"acme", "starved"}
        assert stats["tenants"]["cache_budget"]["max_bytes"] == 1 << 20
        status, text = request_json(server.url + "/metrics")
        assert status == 200
        assert 'repro_tenant_queries_total{tenant="acme"}' in text
        assert 'repro_tenant_quota_denials_total{tenant="starved"}' in text

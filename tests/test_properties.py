"""Property-based tests (hypothesis) on core invariants.

These complement the unit tests with randomly generated inputs: partition
indexes must always cover the dataset, candidate sets must always come from
the claimed bins, metrics must stay in range, and the loss must respond to
eta the way Equation 5 says it should.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import KMeansIndex, PcaTreeIndex
from repro.core import neighbor_bin_distribution, usp_loss
from repro.core.base import rerank_candidates
from repro.eval import knn_accuracy, probe_schedule
from repro.nn import Tensor


def clustered_points(seed: int, n: int, dim: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=5.0, size=(4, dim))
    labels = rng.integers(0, 4, size=n)
    return centers[labels] + rng.normal(size=(n, dim))


class TestPartitionInvariants:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=40, max_value=150),
        st.integers(min_value=2, max_value=6),
    )
    def test_kmeans_index_partitions_dataset(self, seed, n, n_bins):
        points = clustered_points(seed, n, 4)
        index = KMeansIndex(n_bins, seed=seed).build(points)
        sizes = index.bin_sizes()
        assert sizes.sum() == n
        assert index.assignments.min() >= 0
        assert index.assignments.max() < n_bins

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=2, max_value=4))
    def test_tree_index_candidates_come_from_lookup(self, seed, depth):
        points = clustered_points(seed, 120, 5)
        index = PcaTreeIndex(depth=depth, seed=seed).build(points)
        queries = points[:5]
        ranked = index.ranked_bins(queries)
        candidates = index.candidate_sets(queries, 1)
        for i in range(5):
            expected = set(index.points_in_bin(int(ranked[i, 0])).tolist())
            assert set(candidates[i].tolist()) == expected

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_full_probe_query_equals_bruteforce(self, seed):
        points = clustered_points(seed, 100, 4)
        index = KMeansIndex(4, seed=seed).build(points)
        queries = clustered_points(seed + 1, 8, 4)
        approx, _ = index.batch_query(queries, k=5, n_probes=4)
        dists = np.linalg.norm(queries[:, None, :] - points[None, :, :], axis=2)
        exact = np.argsort(dists, axis=1)[:, :5]
        exact_dist = np.take_along_axis(dists, exact, axis=1)
        approx_dist = np.take_along_axis(dists, approx, axis=1)
        np.testing.assert_allclose(approx_dist, exact_dist, atol=1e-9)


class TestRerankProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=10))
    def test_rerank_returns_subset_of_candidates_sorted(self, seed, k):
        rng = np.random.default_rng(seed)
        base = rng.normal(size=(50, 3))
        queries = rng.normal(size=(3, 3))
        candidate_lists = [rng.choice(50, size=rng.integers(1, 30), replace=False) for _ in range(3)]
        indices, distances = rerank_candidates(base, queries, candidate_lists, k)
        for i in range(3):
            valid = indices[i] >= 0
            assert set(indices[i][valid]).issubset(set(candidate_lists[i].tolist()))
            d = distances[i][valid]
            assert (np.diff(d) >= -1e-9).all()


class TestMetricProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=8))
    def test_knn_accuracy_in_unit_interval(self, seed, k):
        rng = np.random.default_rng(seed)
        retrieved = rng.integers(0, 50, size=(6, k))
        truth = rng.integers(0, 50, size=(6, k))
        value = knn_accuracy(retrieved, truth, k)
        assert 0.0 <= value <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=512))
    def test_probe_schedule_always_valid(self, n_bins):
        schedule = probe_schedule(n_bins)
        assert schedule[0] >= 1
        assert schedule[-1] == n_bins
        assert all(b <= n_bins for b in schedule)
        assert schedule == sorted(set(schedule))


class TestLossProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=2, max_value=6),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_total_is_quality_plus_eta_balance(self, seed, n_bins, eta):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(24, n_bins)), requires_grad=True)
        neighbor_bins = rng.integers(0, n_bins, size=(24, 5))
        _, breakdown = usp_loss(logits, neighbor_bins, n_bins, eta=eta)
        assert breakdown.total == pytest.approx(
            breakdown.quality + eta * breakdown.balance, rel=1e-6, abs=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=2, max_value=8))
    def test_balance_term_bounded(self, seed, n_bins):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(32, n_bins)), requires_grad=True)
        neighbor_bins = rng.integers(0, n_bins, size=(32, 4))
        _, breakdown = usp_loss(logits, neighbor_bins, n_bins, eta=1.0)
        assert -1.0 - 1e-9 <= breakdown.balance <= 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_quality_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(16, 4)), requires_grad=True)
        neighbor_bins = rng.integers(0, 4, size=(16, 6))
        _, breakdown = usp_loss(logits, neighbor_bins, 4, eta=0.0)
        assert breakdown.quality >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=2, max_value=6))
    def test_neighbor_distribution_matches_counts(self, seed, n_bins):
        rng = np.random.default_rng(seed)
        bins = rng.integers(0, n_bins, size=(7, 9))
        dist = neighbor_bin_distribution(bins, n_bins)
        for i in range(7):
            counts = np.bincount(bins[i], minlength=n_bins)
            np.testing.assert_allclose(dist[i], counts / 9.0)

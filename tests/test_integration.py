"""Integration tests: the paper's qualitative claims at test scale.

These exercise the full pipelines end to end (dataset -> offline phase ->
online phase -> evaluation) and assert the *shape* of the paper's results:
USP produces balanced partitions whose accuracy-vs-candidate-size frontier
is at least as good as K-means and data-oblivious LSH, ensembling does not
hurt, and USP+ScaNN beats vanilla ScaNN at matched probing.
"""

import numpy as np
import pytest

from repro.ann import usp_scann, vanilla_scann
from repro.baselines import CrossPolytopeLshIndex, KMeansIndex, NeuralLshIndex, NeuralLshConfig
from repro.core import (
    EnsembleConfig,
    UspConfig,
    UspEnsembleIndex,
    UspIndex,
    build_knn_matrix,
)
from repro.datasets import sift_like
from repro.eval import (
    accuracy_candidate_curve,
    candidate_recall,
    knn_accuracy,
    run_figure5,
)


@pytest.fixture(scope="module")
def medium_dataset():
    """Slightly larger dataset with overlapping clusters (harder than tiny)."""
    return sift_like(n_points=1500, n_queries=80, dim=32, n_clusters=10, gt_k=20, seed=5)


@pytest.fixture(scope="module")
def medium_knn(medium_dataset):
    return build_knn_matrix(medium_dataset.base, 10)


@pytest.fixture(scope="module")
def medium_usp(medium_dataset, medium_knn):
    config = UspConfig(
        n_bins=8, k_prime=10, eta=20.0, hidden_dim=64, epochs=15,
        max_batch_size=256, learning_rate=2e-3, seed=0,
    )
    return UspIndex(config).build(medium_dataset.base, knn=medium_knn)


class TestOfflinePhaseInvariants:
    def test_partition_is_reasonably_balanced(self, medium_usp, medium_dataset):
        sizes = medium_usp.bin_sizes()
        expected = medium_dataset.n_points / medium_usp.n_bins
        assert sizes.max() < 3.5 * expected
        assert (sizes > 0).sum() >= medium_usp.n_bins - 1

    def test_training_loss_decreased(self, medium_usp):
        history = medium_usp.history
        assert np.mean(history.total[-5:]) < np.mean(history.total[:5])

    def test_neighbors_tend_to_share_bins(self, medium_usp, medium_knn):
        """The quality objective: most k'-NN edges should stay within a bin."""
        assignments = medium_usp.assignments
        neighbor_bins = assignments[medium_knn.indices]
        same_bin_fraction = (neighbor_bins == assignments[:, None]).mean()
        assert same_bin_fraction > 1.0 / medium_usp.n_bins * 2


class TestFrontierOrdering:
    def test_usp_candidate_recall_beats_lsh_at_matched_size(self, medium_dataset, medium_usp):
        lsh = CrossPolytopeLshIndex(8, seed=0).build(medium_dataset.base)
        usp_curve = accuracy_candidate_curve(medium_usp, medium_dataset, k=10, probes=[1, 2, 4, 8])
        lsh_curve = accuracy_candidate_curve(lsh, medium_dataset, k=10, probes=[1, 2, 4, 8])
        # Compare at an 85% accuracy target: USP should need no more candidates.
        usp_size = usp_curve.candidate_size_at_accuracy(0.85)
        lsh_size = lsh_curve.candidate_size_at_accuracy(0.85)
        assert usp_size <= lsh_size * 1.1

    def test_usp_competitive_with_kmeans(self, medium_dataset, medium_usp):
        kmeans = KMeansIndex(8, seed=0).build(medium_dataset.base)
        usp_curve = accuracy_candidate_curve(medium_usp, medium_dataset, k=10, probes=[1, 2, 4, 8])
        km_curve = accuracy_candidate_curve(kmeans, medium_dataset, k=10, probes=[1, 2, 4, 8])
        usp_size = usp_curve.candidate_size_at_accuracy(0.9)
        km_size = km_curve.candidate_size_at_accuracy(0.9)
        assert usp_size <= km_size * 1.25

    def test_accuracy_increases_with_probes(self, medium_dataset, medium_usp):
        curve = accuracy_candidate_curve(medium_usp, medium_dataset, k=10, probes=[1, 2, 4, 8])
        accuracies = curve.accuracies()
        assert (np.diff(accuracies) >= -1e-9).all()
        assert accuracies[-1] == pytest.approx(1.0)


class TestEnsembleClaim:
    def test_ensemble_candidate_recall_not_worse(self, medium_dataset, medium_knn):
        base_config = UspConfig(
            n_bins=8, k_prime=10, eta=20.0, hidden_dim=32, epochs=8,
            max_batch_size=256, learning_rate=2e-3, seed=0,
        )
        single = UspIndex(base_config).build(medium_dataset.base, knn=medium_knn)
        ensemble = UspEnsembleIndex(EnsembleConfig(n_models=2, base=base_config)).build(
            medium_dataset.base, knn=medium_knn
        )
        single_recall = candidate_recall(
            single.candidate_sets(medium_dataset.queries, 1), medium_dataset.ground_truth, 10
        )
        ensemble_recall = candidate_recall(
            ensemble.candidate_sets(medium_dataset.queries, 1), medium_dataset.ground_truth, 10
        )
        assert ensemble_recall >= single_recall - 0.03

    def test_boosting_weights_focus_on_separated_points(self, medium_dataset, medium_knn):
        config = UspConfig(
            n_bins=8, k_prime=10, eta=20.0, hidden_dim=32, epochs=8,
            max_batch_size=256, seed=0,
        )
        ensemble = UspEnsembleIndex(EnsembleConfig(n_models=2, base=config)).build(
            medium_dataset.base, knn=medium_knn
        )
        weights_round2 = ensemble.weight_history[1]
        assignments = ensemble.members[0].assignments
        neighbor_bins = assignments[medium_knn.indices]
        mismatches = (neighbor_bins != assignments[:, None]).sum(axis=1)
        # Weights must equal the mismatch counts (first-round update).
        np.testing.assert_allclose(weights_round2, mismatches)


class TestScannPipelineClaim:
    def test_usp_scann_beats_vanilla_at_limited_budget(self, medium_dataset):
        codec = dict(n_subspaces=4, n_codewords=16, rerank_factor=4, seed=0)
        usp_pipe = usp_scann(
            UspConfig(n_bins=8, epochs=10, hidden_dim=32, eta=20.0, max_batch_size=256, seed=0),
            **codec,
        ).build(medium_dataset.base)
        vanilla = vanilla_scann(**codec).build(medium_dataset.base)
        usp_ids, _ = usp_pipe.batch_query(medium_dataset.queries, 10, n_probes=4)
        van_ids, _ = vanilla.batch_query(medium_dataset.queries, 10)
        usp_acc = knn_accuracy(usp_ids, medium_dataset.ground_truth, 10)
        van_acc = knn_accuracy(van_ids, medium_dataset.ground_truth, 10)
        # The partitioned pipeline scans ~half the codes yet should not lose
        # more than a little accuracy (the paper's speedup claim).
        assert usp_acc >= van_acc - 0.1


class TestFigureRunnersSmoke:
    def test_run_figure5_tiny(self):
        data = sift_like(n_points=500, n_queries=30, dim=16, n_clusters=6, seed=1)
        curves = run_figure5(data, n_bins=4, ensemble_size=1, epochs=4, probes=[1, 2, 4])
        methods = {c.method for c in curves}
        assert {"USP (1 model)", "Neural LSH", "K-means", "Cross-polytope LSH"} <= methods
        for curve in curves:
            assert len(curve.points) == 3

    def test_neural_lsh_runs_on_shared_knn(self, medium_dataset, medium_knn):
        index = NeuralLshIndex(
            NeuralLshConfig(n_bins=8, k_prime=10, hidden_dim=32, epochs=5, seed=0)
        ).build(medium_dataset.base, knn=medium_knn)
        indices, _ = index.batch_query(medium_dataset.queries, 10, n_probes=8)
        assert knn_accuracy(indices, medium_dataset.ground_truth, 10) == pytest.approx(1.0)

"""Tests for repro.utils.distances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.distances import (
    cosine_distance,
    euclidean,
    get_metric,
    inner_product,
    iter_blocks,
    pairwise_topk,
    squared_euclidean,
)


class TestSquaredEuclidean:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(7, 5))
        y = rng.normal(size=(9, 5))
        expected = ((x[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(squared_euclidean(x, y), expected, atol=1e-9)

    def test_zero_on_identical_rows(self):
        x = np.array([[1.0, 2.0, 3.0]])
        assert squared_euclidean(x, x)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_never_negative_despite_cancellation(self):
        # Large magnitudes provoke floating point cancellation.
        x = np.full((3, 4), 1e8)
        assert (squared_euclidean(x, x) >= 0).all()

    def test_handles_1d_input(self):
        d = squared_euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0]))
        assert d.shape == (1, 1)
        assert d[0, 0] == pytest.approx(25.0)


class TestEuclidean:
    def test_is_sqrt_of_squared(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 3))
        y = rng.normal(size=(6, 3))
        np.testing.assert_allclose(euclidean(x, y) ** 2, squared_euclidean(x, y), atol=1e-9)

    def test_triangle_inequality_on_sample(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(10, 4))
        dist = euclidean(points, points)
        for i in range(10):
            for j in range(10):
                for k in range(10):
                    assert dist[i, j] <= dist[i, k] + dist[k, j] + 1e-9


class TestCosineAndInnerProduct:
    def test_cosine_zero_for_parallel_vectors(self):
        x = np.array([[1.0, 1.0]])
        y = np.array([[2.0, 2.0]])
        assert cosine_distance(x, y)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_cosine_two_for_antiparallel(self):
        x = np.array([[1.0, 0.0]])
        y = np.array([[-1.0, 0.0]])
        assert cosine_distance(x, y)[0, 0] == pytest.approx(2.0)

    def test_cosine_handles_zero_vector(self):
        x = np.zeros((1, 3))
        y = np.array([[1.0, 0.0, 0.0]])
        assert np.isfinite(cosine_distance(x, y)).all()

    def test_inner_product_matches_matmul(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(3, 4))
        y = rng.normal(size=(5, 4))
        np.testing.assert_allclose(inner_product(x, y), x @ y.T)


class TestGetMetric:
    @pytest.mark.parametrize("name", ["euclidean", "sqeuclidean", "cosine"])
    def test_known_metrics(self, name):
        assert callable(get_metric(name))

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            get_metric("manhattan")


class TestIterBlocks:
    def test_covers_range_without_overlap(self):
        blocks = list(iter_blocks(10, 3))
        assert blocks == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_block_when_larger_than_n(self):
        assert list(iter_blocks(5, 100)) == [(0, 5)]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(iter_blocks(5, 0))


class TestPairwiseTopk:
    def test_matches_bruteforce_argsort(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(50, 8))
        queries = rng.normal(size=(12, 8))
        idx, dist = pairwise_topk(queries, points, 5)
        full = euclidean(queries, points)
        expected = np.argsort(full, axis=1)[:, :5]
        np.testing.assert_array_equal(idx, expected)
        np.testing.assert_allclose(dist, np.take_along_axis(full, expected, axis=1))

    def test_exclude_self_removes_diagonal(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(30, 4))
        idx, _ = pairwise_topk(points, points, 3, exclude_self=True)
        for i in range(30):
            assert i not in idx[i]

    def test_distances_sorted_ascending(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(40, 6))
        _, dist = pairwise_topk(points[:10], points, 7)
        assert (np.diff(dist, axis=1) >= -1e-12).all()

    def test_k_clipped_to_dataset_size(self):
        points = np.eye(4)
        idx, _ = pairwise_topk(points, points, 100)
        assert idx.shape == (4, 4)

    def test_blocked_equals_unblocked(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(64, 5))
        queries = rng.normal(size=(20, 5))
        idx_a, _ = pairwise_topk(queries, points, 4, block_size=7)
        idx_b, _ = pairwise_topk(queries, points, 4, block_size=1000)
        np.testing.assert_array_equal(idx_a, idx_b)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, (12, 3), elements=st.floats(-100, 100)),
        st.integers(min_value=1, max_value=5),
    )
    def test_property_first_neighbor_is_argmin(self, points, k):
        idx, dist = pairwise_topk(points[:4], points, k)
        full = euclidean(points[:4], points)
        # Ties may be broken differently, so compare distances not indices.
        np.testing.assert_allclose(dist[:, 0], full.min(axis=1), atol=1e-9)

"""Tests for the quantized two-stage hot path (repro.quant).

The central guarantees:

* **re-rank exactness** — every distance a two-stage backend returns is
  the exact full-precision distance for that (query, id) pair: equal to
  float32 brute force to the last-ulp tolerance of BLAS accumulation
  order, and bitwise-identical once the over-fetch budget covers every
  row (hypothesis property over metrics x backends x plain/sharded);
* **recall floor** — on clustered data the default over-fetch keeps
  recall@10 at or above 0.9 for both code families;
* **store durability** — a saved :class:`VectorStore` reopens bitwise;
  truncated, corrupt, or mismatched artifacts raise typed
  :class:`SerializationError`, never a silently wrong matrix;
* **WAL recovery** — a collection over a sharded quantized index
  recovers acknowledged mutations to bitwise-identical answers;
* **kernel fidelity** — ``distance_tables`` batched == single-query,
  and the int32 reference kernel is exact on the code grid.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import load_index, make_index
from repro.datasets import sift_like
from repro.eval import recall_at_k
from repro.quant import Sq8Index, VectorStore
from repro.quant.memmap_store import HEADER_FILE, VECTORS_FILE
from repro.utils.distances import get_metric, pairwise_topk
from repro.utils.exceptions import (
    ConfigurationError,
    SerializationError,
    ValidationError,
)

QUANT_BACKENDS = {
    "sq8": dict(),
    "pq-adc": dict(n_subspaces=4, n_codewords=32, seed=0),
}


def _build(backend, base, *, metric="euclidean", sharded=False, **overrides):
    params = dict(QUANT_BACKENDS[backend])
    params.update(overrides)
    if sharded:
        return make_index(
            "sharded", n_shards=2, spec=backend, metric=metric, shard_params=params
        ).build(base)
    return make_index(backend, metric=metric, **params).build(base)


# ---------------------------------------------------------------------- #
# hypothesis property: two-stage answers vs float32 brute force
# ---------------------------------------------------------------------- #
class TestTwoStageExactness:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        metric=st.sampled_from(["euclidean", "cosine"]),
        backend=st.sampled_from(sorted(QUANT_BACKENDS)),
        sharded=st.booleans(),
    )
    def test_returned_distances_are_exact_full_precision(
        self, seed, metric, backend, sharded
    ):
        rng = np.random.default_rng(seed)
        n, dim, k = 240, 16, 10
        base = rng.normal(size=(n, dim))
        queries = rng.normal(size=(5, dim))
        index = _build(backend, base, metric=metric, sharded=sharded)
        try:
            ids, distances = index.batch_query(queries, k)
            assert ids.shape == distances.shape == (5, k)
            assert (ids >= 0).all()
            # Stage 2 stores float32: the exactness bound is brute force
            # over the float32 copy (the cast to float64 inside the
            # metric kernels is value-preserving).
            stored = np.asarray(base, dtype=np.float32)
            full = get_metric(metric)(queries, stored)
            rows = np.arange(5)[:, None]
            np.testing.assert_allclose(
                distances, full[rows, ids], rtol=1e-12, atol=0
            )
            # each row is sorted and duplicate-free — a real top-k
            assert (np.diff(distances, axis=1) >= 0).all()
            assert all(len(set(row)) == k for row in ids)
        finally:
            if hasattr(index, "close"):
                index.close()

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        metric=st.sampled_from(["euclidean", "sqeuclidean", "cosine"]),
        backend=st.sampled_from(sorted(QUANT_BACKENDS)),
    )
    def test_saturated_budget_is_bitwise_brute_force(self, seed, metric, backend):
        # rerank >= n skips stage 1 entirely: the answer must be the
        # float32 brute-force answer, ids and distances bitwise.
        rng = np.random.default_rng(seed)
        n, dim, k = 150, 16, 10
        base = rng.normal(size=(n, dim))
        queries = rng.normal(size=(4, dim))
        index = _build(backend, base, metric=metric)
        ids, distances = index.batch_query(queries, k, rerank=n)
        # bitwise reference: the library's shared exact re-rank kernel
        # fed every row — float32 brute force through the same code path
        # partition indexes use
        from repro.core.base import rerank_candidates

        stored = np.asarray(base, dtype=np.float32)
        expected_ids, expected_distances = rerank_candidates(
            stored,
            queries,
            [np.arange(n)] * queries.shape[0],
            k,
            metric=metric,
        )
        np.testing.assert_array_equal(ids, expected_ids)
        np.testing.assert_array_equal(distances, expected_distances)
        # independent check: pairwise_topk agrees up to BLAS
        # accumulation order (gemv per query vs one blocked gemm)
        alt_ids, alt_distances = pairwise_topk(queries, stored, k, metric=metric)
        np.testing.assert_array_equal(ids, alt_ids)
        np.testing.assert_allclose(distances, alt_distances, rtol=1e-12, atol=0)

    def test_recall_floor_at_default_overfetch(self):
        # Clustered data, default rerank_factor: both code families must
        # clear the documented recall@10 >= 0.9 floor (sq8's affine grid
        # is near-lossless here; pq-adc's coarser codes sit closer to it).
        data = sift_like(
            n_points=600, n_queries=20, dim=32, n_clusters=6, gt_k=10, seed=3
        )
        realistic = {
            "sq8": dict(),
            "pq-adc": dict(n_subspaces=8, n_codewords=64, seed=0),
        }
        for backend in sorted(QUANT_BACKENDS):
            for sharded in (False, True):
                index = _build(backend, data.base, sharded=sharded, **realistic[backend])
                try:
                    ids, _ = index.batch_query(data.queries, 10)
                    recall = recall_at_k(ids, data.ground_truth, 10)
                    assert recall >= 0.9, (backend, sharded, recall)
                finally:
                    if hasattr(index, "close"):
                        index.close()

    def test_rerank_knob_trades_recall_monotonically(self):
        data = sift_like(
            n_points=400, n_queries=16, dim=16, n_clusters=4, gt_k=10, seed=1
        )
        index = _build("pq-adc", data.base, n_subspaces=4, n_codewords=8)
        recalls = []
        for rerank in (10, 40, 400):
            ids, _ = index.batch_query(data.queries, 10, rerank=rerank)
            recalls.append(recall_at_k(ids, data.ground_truth, 10))
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[-1] == 1.0  # saturated budget == brute force

    def test_probes_translates_to_rerank_via_capabilities(self):
        # The serving layer's generic probes knob must reach the
        # over-fetch budget without quant-specific plumbing.
        index = make_index("sq8")
        assert index.capabilities.query_kwargs(80) == {"rerank": 80}
        assert index.capabilities.quantized and index.capabilities.rerank

    def test_unsupported_metric_is_rejected(self):
        with pytest.raises(ConfigurationError, match="metric"):
            make_index("sq8", metric="manhattan")
        with pytest.raises(ConfigurationError, match="256"):
            make_index("pq-adc", n_codewords=512)


# ---------------------------------------------------------------------- #
# inline filtering over code rows
# ---------------------------------------------------------------------- #
class TestQuantFiltering:
    SELECTIVITIES = (0.01, 0.1, 0.5)

    @pytest.mark.parametrize("backend", sorted(QUANT_BACKENDS))
    def test_filtered_matches_bruteforce_over_subset(self, backend):
        # At every selectivity each returned id satisfies the mask and
        # the low-selectivity path (subset <= budget) is exactly brute
        # force over the allowed rows.
        rng = np.random.default_rng(9)
        n, k = 400, 10
        base = rng.normal(size=(n, 12))
        queries = rng.normal(size=(6, 12))
        index = _build(backend, base)
        stored = np.asarray(base, dtype=np.float32)
        for selectivity in self.SELECTIVITIES:
            mask = np.zeros(n, dtype=bool)
            mask[rng.choice(n, size=int(n * selectivity), replace=False)] = True
            ids, distances = index.batch_query(queries, k, filter=mask)
            returned = ids[ids >= 0]
            assert mask[returned].all(), (backend, selectivity)
            assert np.isinf(distances[ids < 0]).all()
            allowed = np.flatnonzero(mask)
            top = min(k, allowed.size)
            local, exact = pairwise_topk(queries, stored[allowed], top)
            if allowed.size <= index.rerank_factor * k:
                # scan skipped: answers are brute force over the subset
                np.testing.assert_array_equal(ids[:, :top], allowed[local])
                np.testing.assert_allclose(
                    distances[:, :top], exact, rtol=1e-12, atol=0
                )
            else:
                # survivors still carry exact distances
                full = get_metric("euclidean")(queries, stored)
                rows = np.arange(queries.shape[0])[:, None]
                np.testing.assert_allclose(
                    distances, full[rows, ids], rtol=1e-12, atol=0
                )

    def test_empty_mask_returns_padding(self):
        rng = np.random.default_rng(0)
        index = _build("sq8", rng.normal(size=(50, 8)))
        ids, distances = index.batch_query(
            rng.normal(size=(3, 8)), 5, filter=np.zeros(50, dtype=bool)
        )
        assert (ids == -1).all() and np.isinf(distances).all()


# ---------------------------------------------------------------------- #
# VectorStore durability
# ---------------------------------------------------------------------- #
class TestVectorStore:
    def test_save_reopen_bitwise_round_trip(self, tmp_path):
        vectors = np.random.default_rng(0).normal(size=(64, 12)).astype(np.float32)
        store = VectorStore.create(tmp_path / "vs", vectors)
        assert store.shape == (64, 12) and len(store) == 64
        np.testing.assert_array_equal(np.asarray(store.vectors), vectors)
        reopened = VectorStore.open(tmp_path / "vs")
        assert isinstance(reopened.vectors, np.memmap)
        assert not reopened.vectors.flags.writeable
        np.testing.assert_array_equal(np.asarray(reopened.vectors), vectors)
        np.testing.assert_array_equal(reopened.rows([5, 1, 5]), vectors[[5, 1, 5]])
        assert reopened.file_bytes >= vectors.nbytes

    def test_create_over_existing_store_is_atomic_replace(self, tmp_path):
        first = np.zeros((4, 3), dtype=np.float32)
        second = np.ones((8, 3), dtype=np.float32)
        VectorStore.create(tmp_path / "vs", first)
        VectorStore.create(tmp_path / "vs", second)
        np.testing.assert_array_equal(
            np.asarray(VectorStore.open(tmp_path / "vs").vectors), second
        )

    def test_create_rejects_non_matrix(self, tmp_path):
        with pytest.raises(SerializationError, match="2-D"):
            VectorStore.create(tmp_path / "vs", np.zeros(8))

    def test_missing_header_and_missing_vectors_raise(self, tmp_path):
        with pytest.raises(SerializationError, match="not a vector store"):
            VectorStore.open(tmp_path / "nothing")
        VectorStore.create(tmp_path / "vs", np.zeros((4, 3), dtype=np.float32))
        (tmp_path / "vs" / VECTORS_FILE).unlink()
        with pytest.raises(SerializationError, match="incomplete"):
            VectorStore.open(tmp_path / "vs")

    def test_truncated_vectors_file_raises(self, tmp_path):
        VectorStore.create(
            tmp_path / "vs",
            np.random.default_rng(1).normal(size=(64, 16)).astype(np.float32),
        )
        vectors_file = tmp_path / "vs" / VECTORS_FILE
        for cut in (vectors_file.stat().st_size // 2, 40, 3):
            data = vectors_file.read_bytes()
            vectors_file.write_bytes(data[:cut])
            with pytest.raises(SerializationError):
                VectorStore.open(tmp_path / "vs")
            vectors_file.write_bytes(data)  # restore for the next cut
        VectorStore.open(tmp_path / "vs")  # restored file opens again

    def test_header_mismatches_raise(self, tmp_path):
        VectorStore.create(tmp_path / "vs", np.zeros((4, 3), dtype=np.float32))
        header_file = tmp_path / "vs" / HEADER_FILE
        good = json.loads(header_file.read_text())

        def rewrite(**overrides):
            header_file.write_text(json.dumps({**good, **overrides}))

        rewrite(shape=[5, 3])
        with pytest.raises(SerializationError, match="do not belong together"):
            VectorStore.open(tmp_path / "vs")
        rewrite(dtype="float64")
        with pytest.raises(SerializationError, match="dtype"):
            VectorStore.open(tmp_path / "vs")
        rewrite(format="something-else")
        with pytest.raises(SerializationError, match="header"):
            VectorStore.open(tmp_path / "vs")
        rewrite(format_version=99)
        with pytest.raises(SerializationError, match="version"):
            VectorStore.open(tmp_path / "vs")
        header_file.write_text("{not json")
        with pytest.raises(SerializationError, match="could not read"):
            VectorStore.open(tmp_path / "vs")


# ---------------------------------------------------------------------- #
# index persistence: memmapped re-rank after reload
# ---------------------------------------------------------------------- #
class TestQuantPersistence:
    @pytest.mark.parametrize("backend", sorted(QUANT_BACKENDS))
    def test_reloaded_index_is_bitwise_and_memmapped(self, backend, tmp_path):
        rng = np.random.default_rng(4)
        base = rng.normal(size=(300, 16))
        queries = rng.normal(size=(6, 16))
        index = _build(backend, base, metric="cosine")
        ids, distances = index.batch_query(queries, 10)
        assert index.stats()["rerank_source"] == "resident"
        index.save(tmp_path / backend)
        reloaded = load_index(tmp_path / backend)
        re_ids, re_distances = reloaded.batch_query(queries, 10)
        np.testing.assert_array_equal(ids, re_ids)
        np.testing.assert_array_equal(distances, re_distances)
        # the re-rank vectors are a file-backed mapping, not resident
        stats = reloaded.stats()
        assert stats["rerank_source"] == "memmap"
        assert isinstance(reloaded._vectors, np.memmap)
        assert stats["mapped_bytes"] >= stats["float32_bytes"]
        assert stats["resident_bytes"] < stats["float32_bytes"]
        assert stats["resident_bytes"] == reloaded.resident_bytes()

    def test_mismatched_store_is_rejected_at_load(self, tmp_path):
        rng = np.random.default_rng(5)
        index = _build("sq8", rng.normal(size=(40, 8)))
        index.save(tmp_path / "idx")
        # swap in a store of the wrong shape: codes and vectors no
        # longer belong together, load must refuse
        VectorStore.create(
            tmp_path / "idx" / "vectors",
            rng.normal(size=(39, 8)).astype(np.float32),
        )
        with pytest.raises(SerializationError, match="do not belong together"):
            load_index(tmp_path / "idx")

    def test_missing_store_is_rejected_at_load(self, tmp_path):
        import shutil

        index = _build("sq8", np.random.default_rng(6).normal(size=(40, 8)))
        index.save(tmp_path / "idx")
        shutil.rmtree(tmp_path / "idx" / "vectors")
        with pytest.raises(SerializationError, match="not a vector store"):
            load_index(tmp_path / "idx")

    def test_sharded_quant_round_trips_through_save(self, tmp_path):
        rng = np.random.default_rng(7)
        base = rng.normal(size=(200, 8))
        queries = rng.normal(size=(4, 8))
        sharded = make_index("sharded-sq8", n_shards=2).build(base)
        ids, distances = sharded.batch_query(queries, 5)
        sharded.save(tmp_path / "shq")
        sharded.close()
        reloaded = load_index(tmp_path / "shq")
        re_ids, re_distances = reloaded.batch_query(queries, 5)
        np.testing.assert_array_equal(ids, re_ids)
        np.testing.assert_array_equal(distances, re_distances)
        # every child shard re-ranks from its own memmapped store
        for child in reloaded._shards:
            assert child.stats()["rerank_source"] == "memmap"
        reloaded.close()


# ---------------------------------------------------------------------- #
# durable collections over a quantized index
# ---------------------------------------------------------------------- #
class TestQuantCollection:
    def test_collection_recovers_via_wal_to_identical_answers(self, tmp_path):
        from repro.store import Collection

        rng = np.random.default_rng(8)
        base = rng.normal(size=(150, 8))
        queries = rng.normal(size=(5, 8))
        index = make_index("sharded-sq8", n_shards=2).build(base)
        collection = Collection.create(tmp_path / "qc", index)
        ids = collection.add(rng.normal(size=(12, 8)))
        collection.remove(ids[:4])
        collection.remove(np.arange(10))
        before = collection.batch_query(queries, 10)
        # -- crash: the process dies without close(); reopen replays the
        # snapshot (generation 0) plus the whole WAL tail
        recovered = Collection.open(tmp_path / "qc")
        after = recovered.batch_query(queries, 10)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])
        assert recovered.last_seq == collection.last_seq
        recovered.close()
        collection.close()

    def test_checkpoint_snapshots_quantized_shards(self, tmp_path):
        from repro.store import Collection, MaintenanceLoop

        rng = np.random.default_rng(10)
        base = rng.normal(size=(120, 8))
        queries = rng.normal(size=(4, 8))
        index = make_index("sharded-sq8", n_shards=2).build(base)
        collection = Collection.create(tmp_path / "qc", index)
        collection.add(rng.normal(size=(6, 8)))
        collection.remove(np.arange(3))
        MaintenanceLoop(collection, checkpoint_ops=1).run_once()
        assert collection.generation >= 1
        before = collection.batch_query(queries, 8)
        recovered = Collection.open(tmp_path / "qc")
        after = recovered.batch_query(queries, 8)
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])
        recovered.close()
        collection.close()


# ---------------------------------------------------------------------- #
# kernel regressions
# ---------------------------------------------------------------------- #
class TestKernels:
    def test_distance_tables_single_equals_batched(self):
        from repro.ann import ProductQuantizer

        rng = np.random.default_rng(2)
        points = rng.normal(size=(200, 16))
        queries = rng.normal(size=(7, 16))
        pq = ProductQuantizer(4, 16, seed=0).fit(points)
        batched = pq.distance_tables(queries)
        assert batched.shape == (7, 4, pq.codebooks.shape[1])
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(pq.distance_table(query), batched[i])
        # adc_distances (built on the single-query table) is unchanged
        codes = pq.encode(points)
        adc = pq.adc_distances(queries[0], codes)
        gathered = batched[0][np.arange(4)[None, :], codes].sum(axis=1)
        np.testing.assert_array_equal(adc, gathered)

    def test_distance_tables_validates_dimensionality(self):
        from repro.ann import ProductQuantizer

        pq = ProductQuantizer(4, 8, seed=0).fit(
            np.random.default_rng(0).normal(size=(50, 16))
        )
        with pytest.raises(ValidationError, match="dimensionality"):
            pq.distance_tables(np.zeros((2, 12)))

    def test_int32_reference_kernel_is_exact_on_the_code_grid(self):
        # The integer reference: uint8 x uint8 products accumulated in
        # int32 must equal an int64 accumulation exactly (no overflow).
        rng = np.random.default_rng(3)
        base = rng.normal(size=(300, 24))
        index = Sq8Index(row_block=64).build(base)
        query = rng.normal(size=24)
        got = index.int32_dot(query)
        assert got.dtype == np.int32
        q8 = index.quantize_queries(query)[0].astype(np.int64)
        codes = index._codes.astype(np.int64)
        np.testing.assert_array_equal(got, codes @ q8)

    def test_sq8_scores_rank_like_decoded_distances(self):
        # The float32 SGEMM kernel drops ||q||^2; adding it back must
        # reproduce the decoded-row squared distances to float32 accuracy.
        rng = np.random.default_rng(6)
        base = rng.normal(size=(150, 12))
        index = Sq8Index(row_block=32).build(base)
        queries = rng.normal(size=(4, 12))
        scores = index._scores(queries)
        decoded = index._codec.decode(index._codes)
        exact = get_metric("sqeuclidean")(queries, decoded)
        q_norms = np.einsum("ij,ij->i", queries, queries)
        np.testing.assert_allclose(
            scores + q_norms[:, None], exact, rtol=1e-4, atol=1e-3
        )

    def test_query_blocking_does_not_change_answers(self):
        rng = np.random.default_rng(11)
        base = rng.normal(size=(220, 12))
        queries = rng.normal(size=(9, 12))
        one = _build("sq8", base, query_block=1)
        many = _build("sq8", base, query_block=64)
        ids_one, d_one = one.batch_query(queries, 8)
        ids_many, d_many = many.batch_query(queries, 8)
        np.testing.assert_array_equal(ids_one, ids_many)
        np.testing.assert_array_equal(d_one, d_many)

"""The README's code snippets must actually run.

Docs rot when nothing executes them: this module extracts every fenced
``python`` block from ``README.md`` and ``exec``s it (doctest-style, but
for fenced markdown blocks).  The quickstart snippet carries its own
asserts, so a drifted API fails loudly here — and therefore in CI —
rather than on a new user's first copy-paste.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks() -> list[str]:
    return _FENCE.findall(README.read_text())


def test_readme_exists_with_python_quickstart():
    assert README.is_file(), "the repo front door (README.md) is missing"
    blocks = python_blocks()
    assert blocks, "README.md has no executable ```python quickstart block"


@pytest.mark.parametrize(
    "block_id", range(len(python_blocks())) if README.is_file() else []
)
def test_readme_snippet_executes(block_id):
    """Each fenced python block runs top-to-bottom in a fresh namespace."""
    source = python_blocks()[block_id]
    namespace: dict = {"__name__": f"readme_block_{block_id}"}
    exec(compile(source, f"README.md[python #{block_id}]", "exec"), namespace)


def test_readme_backend_table_matches_registry():
    """The index table is generated from the registry — keep them in sync."""
    from repro.api import available_indexes

    text = README.read_text()
    missing = [
        name for name in available_indexes() if f"| `{name}` |" not in text
    ]
    assert not missing, (
        f"README backend table is stale; missing registry entries: {missing} "
        "(regenerate the table from available_indexes()/index_info())"
    )

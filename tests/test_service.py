"""Tests for the query-serving layer: requests, service, cache, router.

The two central guarantees:

* the thread-pooled ``search_batch`` path returns results bitwise
  identical to the serial path for **every** registered index;
* a router with several named indexes round-trips through deployment
  save/restore and serves identical results after reload.
"""

import numpy as np
import pytest

import repro
from repro.api import make_index
from repro.datasets import sift_like
from repro.service import (
    BatchResult,
    QueryCache,
    QueryRequest,
    Router,
    SearchService,
)
from repro.utils.exceptions import ConfigurationError, SerializationError, ValidationError

from test_api_registry import TINY_PARAMS


@pytest.fixture(scope="module")
def service_dataset():
    return sift_like(n_points=400, n_queries=24, dim=16, n_clusters=4, gt_k=10, seed=5)


@pytest.fixture(scope="module")
def kmeans_index(service_dataset):
    return make_index("kmeans", n_bins=4, seed=0).build(service_dataset.base)


@pytest.fixture()
def kmeans_service(kmeans_index):
    return SearchService(kmeans_index, batch_size=8)


class TestQueryRequest:
    def test_validation(self):
        with pytest.raises(ValidationError):
            QueryRequest(k=0)
        with pytest.raises(ValidationError):
            QueryRequest(probes=0)
        with pytest.raises(ValidationError):
            QueryRequest(candidate_budget=-5)

    def test_with_updates_is_a_copy(self):
        request = QueryRequest(k=10, probes=2)
        updated = request.with_updates(k=5)
        assert (updated.k, updated.probes) == (5, 2)
        assert request.k == 10

    def test_cache_key_ignores_metadata(self):
        a = QueryRequest(k=10, probes=2, metadata={"user": "a"})
        b = QueryRequest(k=10, probes=2, metadata={"user": "b"})
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != QueryRequest(k=10, probes=3).cache_key()

    def test_dict_roundtrip(self):
        request = QueryRequest(k=7, probes=3, candidate_budget=100, metadata={"m": 1})
        assert QueryRequest.from_dict(request.as_dict()) == request


class TestSearchService:
    def test_requires_built_index(self):
        with pytest.raises(ValidationError, match="built"):
            SearchService(make_index("kmeans", n_bins=4))

    def test_search_single(self, kmeans_service, service_dataset):
        result = kmeans_service.search(service_dataset.queries[0], k=5, probes=2)
        assert result.ids.shape == (5,)
        assert result.distances.shape == (5,)
        assert not result.cached
        assert result.request.k == 5

    def test_search_batch_matches_raw_index(self, kmeans_service, kmeans_index, service_dataset):
        batch = kmeans_service.search_batch(
            service_dataset.queries, QueryRequest(k=5, probes=2)
        )
        raw_ids, raw_distances = kmeans_index.batch_query(
            service_dataset.queries, 5, n_probes=2
        )
        np.testing.assert_array_equal(batch.ids, raw_ids)
        np.testing.assert_array_equal(batch.distances, raw_distances)
        assert isinstance(batch, BatchResult)
        assert batch.n_queries == service_dataset.n_queries
        assert batch.queries_per_second > 0

    def test_default_request_and_overrides(self, kmeans_index, service_dataset):
        service = SearchService(
            kmeans_index, default_request=QueryRequest(k=3, probes=1)
        )
        assert service.search_batch(service_dataset.queries).ids.shape[1] == 3
        assert service.search_batch(service_dataset.queries, k=5).ids.shape[1] == 5

    def test_probe_knob_is_capability_mapped(self, service_dataset):
        hnsw = make_index("hnsw", m=4, ef_construction=16, ef_search=8, seed=0).build(
            service_dataset.base
        )
        service = SearchService(hnsw)
        assert service.query_kwargs(QueryRequest(probes=12)) == {"ef": 12}
        bf = SearchService(make_index("bruteforce").build(service_dataset.base))
        from repro.api.protocol import _reset_probe_warning_registry

        _reset_probe_warning_registry()
        with pytest.warns(UserWarning, match="no probe parameter"):
            assert bf.query_kwargs(QueryRequest(probes=12)) == {}
        # and the request actually executes on both back-ends
        assert service.search_batch(service_dataset.queries, k=3, probes=12).ids.shape == (24, 3)
        assert bf.search_batch(service_dataset.queries, k=3, probes=12).ids.shape == (24, 3)

    def test_candidate_budget_plans_probes(self, kmeans_service):
        # 400 points over 4 bins -> ~100 candidates per probe
        assert kmeans_service.plan_probes(100) == 1
        assert kmeans_service.plan_probes(250) == 2
        assert kmeans_service.plan_probes(10_000) == 4  # clamped to n_bins
        kwargs = kmeans_service.query_kwargs(QueryRequest(candidate_budget=250))
        assert kwargs == {"n_probes": 2}

    def test_budget_request_matches_explicit_probes(self, kmeans_service, service_dataset):
        budgeted = kmeans_service.search_batch(
            service_dataset.queries, QueryRequest(k=5, candidate_budget=250)
        )
        explicit = kmeans_service.search_batch(
            service_dataset.queries, QueryRequest(k=5, probes=2)
        )
        np.testing.assert_array_equal(budgeted.ids, explicit.ids)

    def test_empty_batch(self, kmeans_service, service_dataset):
        batch = kmeans_service.search_batch(
            np.empty((0, service_dataset.dim)), QueryRequest(k=5, probes=1)
        )
        assert batch.n_queries == 0

    def test_dimension_mismatch_rejected(self, kmeans_service):
        with pytest.raises(ValidationError):
            kmeans_service.search_batch(np.zeros((3, 7)), k=2)

    def test_from_saved(self, kmeans_index, service_dataset, tmp_path):
        kmeans_index.save(tmp_path / "kmeans")
        service = SearchService.from_saved(tmp_path / "kmeans")
        assert service.name == "kmeans"
        original = kmeans_index.batch_query(service_dataset.queries, 5, n_probes=2)[0]
        reloaded = service.search_batch(service_dataset.queries, k=5, probes=2).ids
        np.testing.assert_array_equal(original, reloaded)

    def test_stats_counters(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index)
        service.search_batch(
            service_dataset.queries,
            QueryRequest(k=5, probes=2),
            ground_truth=service_dataset.ground_truth,
        )
        service.search(service_dataset.queries[0], k=5, probes=2)
        stats = service.stats()
        assert stats["queries"] == service_dataset.n_queries + 1
        assert stats["batches"] == 2
        assert stats["query_seconds"] > 0
        assert stats["queries_per_second"] > 0
        assert 0.0 <= stats["mean_recall"] <= 1.0
        assert stats["index"]["name"] == "kmeans"
        service.reset_stats()
        assert service.stats()["queries"] == 0

    def test_top_level_reexports(self):
        assert repro.SearchService is SearchService
        assert repro.QueryRequest is QueryRequest
        assert repro.Router is Router


class TestQueryCache:
    def test_lru_eviction(self):
        cache = QueryCache(2)
        ids = np.arange(3, dtype=np.int64)
        distances = np.zeros(3)
        for key in ("a", "b", "c"):
            cache.put((key,), ids, distances)
        assert len(cache) == 2
        assert cache.get(("a",)) is None  # evicted
        assert cache.get(("c",)) is not None

    def test_service_cache_hits(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index, cache_size=64)
        first = service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=2))
        second = service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=2))
        assert first.cache_hits == 0
        assert second.cache_hits == service_dataset.n_queries
        np.testing.assert_array_equal(first.ids, second.ids)
        np.testing.assert_array_equal(first.distances, second.distances)

    def test_cache_distinguishes_requests(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index, cache_size=64)
        service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=1))
        other = service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=4))
        assert other.cache_hits == 0

    def test_partial_hits_are_reassembled_in_order(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index, cache_size=64, batch_size=4)
        half = service_dataset.queries[::2]
        service.search_batch(half, QueryRequest(k=5, probes=2))
        uncached = SearchService(kmeans_index)
        full = service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=2))
        expected = uncached.search_batch(service_dataset.queries, QueryRequest(k=5, probes=2))
        assert full.cache_hits == half.shape[0]
        np.testing.assert_array_equal(full.ids, expected.ids)
        np.testing.assert_array_equal(full.distances, expected.distances)

    def test_single_query_cache(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index, cache_size=8)
        first = service.search(service_dataset.queries[0], k=5, probes=2)
        second = service.search(service_dataset.queries[0], k=5, probes=2)
        assert not first.cached and second.cached
        np.testing.assert_array_equal(first.ids, second.ids)


class TestCacheFreshness:
    """The cache key covers k/probes/metric, and mutation invalidates entries.

    Regression tests: a cached answer must never outlive the index state
    it was computed from — neither a metric change nor a mutable-index
    ``add``/``remove`` may serve stale ids.
    """

    def test_cache_key_incorporates_k_and_probes(self, kmeans_index, service_dataset):
        service = SearchService(kmeans_index, cache_size=64)
        service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=1))
        other_k = service.search_batch(service_dataset.queries, QueryRequest(k=3, probes=1))
        other_probes = service.search_batch(service_dataset.queries, QueryRequest(k=5, probes=3))
        assert other_k.cache_hits == 0
        assert other_probes.cache_hits == 0

    def test_cache_key_incorporates_metric(self, service_dataset):
        index = make_index("bruteforce").build(service_dataset.base)
        service = SearchService(index, cache_size=64)
        euclidean = service.search_batch(service_dataset.queries, k=5)
        index.metric = "cosine"  # repoint the live index at another metric
        cosine = service.search_batch(service_dataset.queries, k=5)
        assert cosine.cache_hits == 0
        fresh = make_index("bruteforce", metric="cosine").build(service_dataset.base)
        np.testing.assert_array_equal(
            cosine.ids, fresh.batch_query(service_dataset.queries, 5)[0]
        )
        assert not np.array_equal(euclidean.distances, cosine.distances)

    @pytest.fixture()
    def mutable_service(self, service_dataset):
        from repro.shard import ShardedIndex

        index = ShardedIndex(2, compact_threshold=None).build(service_dataset.base)
        return SearchService(index, cache_size=64)

    def test_add_invalidates_cached_batches(self, mutable_service, service_dataset):
        queries = service_dataset.queries
        mutable_service.search_batch(queries, k=3)
        added = mutable_service.index.add(queries[:1])  # the query itself: new top-1
        after = mutable_service.search_batch(queries, k=3)
        assert after.cache_hits == 0
        assert after.ids[0, 0] == added[0]

    def test_remove_invalidates_cached_single_queries(self, mutable_service, service_dataset):
        query = service_dataset.queries[0]
        before = mutable_service.search(query, k=3)
        assert mutable_service.search(query, k=3).cached
        mutable_service.index.remove([int(before.ids[0])])
        after = mutable_service.search(query, k=3)
        assert not after.cached
        assert before.ids[0] not in after.ids


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
class TestThreadedMatchesSerial:
    """Concurrency correctness: the thread pool must not change any answer."""

    def test_threaded_bitwise_identical_to_serial(self, name, service_dataset):
        index = make_index(name, **TINY_PARAMS[name]).build(service_dataset.base)
        service = SearchService(index, batch_size=4, max_workers=4)
        request = QueryRequest(k=5, probes=2)
        serial = service.search_batch(service_dataset.queries, request, mode="serial")
        threaded = service.search_batch(service_dataset.queries, request, mode="threaded")
        assert serial.mode == "serial" and threaded.mode == "threaded"
        np.testing.assert_array_equal(serial.ids, threaded.ids)
        np.testing.assert_array_equal(serial.distances, threaded.distances)


class TestExecutionModes:
    def test_auto_mode_thresholds(self, kmeans_index, service_dataset):
        service = SearchService(
            kmeans_index, batch_size=4, parallel_threshold=16, max_workers=2
        )
        small = service.search_batch(service_dataset.queries[:8], k=3, probes=1)
        large = service.search_batch(service_dataset.queries, k=3, probes=1)
        assert small.mode == "serial"
        assert large.mode == "threaded"

    def test_unknown_mode_rejected(self, kmeans_service, service_dataset):
        with pytest.raises(ValidationError, match="unknown execution mode"):
            kmeans_service.search_batch(service_dataset.queries, mode="warp-speed")

    def test_context_manager_closes_pool(self, kmeans_index, service_dataset):
        with SearchService(kmeans_index, batch_size=4) as service:
            service.search_batch(service_dataset.queries, k=3, probes=1, mode="threaded")
            assert service._pool is not None
        assert service._pool is None


class TestRouter:
    @pytest.fixture()
    def router(self, service_dataset, kmeans_index):
        router = Router()
        router.add_index("kmeans", kmeans_index, cache_size=16)
        router.add_index("exact", make_index("bruteforce").build(service_dataset.base))
        return router

    def test_add_and_lookup(self, router):
        assert router.names() == ["exact", "kmeans"]
        assert "kmeans" in router and len(router) == 2
        assert router.service("kmeans").name == "kmeans"
        with pytest.raises(ConfigurationError, match="no service named"):
            router.service("nope")

    def test_duplicate_and_invalid_names(self, router, kmeans_index):
        with pytest.raises(ConfigurationError, match="already registered"):
            router.add_index("kmeans", kmeans_index)
        with pytest.raises(ValidationError, match="service name"):
            router.add_index("../escape", kmeans_index)

    def test_capability_routing(self, router):
        assert router.route(exact=True).name == "exact"
        with pytest.raises(ConfigurationError, match="no registered service"):
            router.route(metric="mahalanobis")

    def test_round_robin_cycles(self, router):
        picked = [router.route().name for _ in range(4)]
        assert sorted(set(picked)) == ["exact", "kmeans"]
        assert picked[:2] != picked[1:3]  # it cycles rather than pinning one service

    def test_search_delegates(self, router, service_dataset):
        by_name = router.search_batch(
            service_dataset.queries, name="kmeans", k=5, probes=2
        )
        direct = router.service("kmeans").search_batch(
            service_dataset.queries, k=5, probes=2
        )
        np.testing.assert_array_equal(by_name.ids, direct.ids)
        single = router.search(service_dataset.queries[0], name="exact", k=3)
        assert single.ids.shape == (3,)

    def test_stats_cover_all_services(self, router, service_dataset):
        router.search_batch(service_dataset.queries, name="kmeans", k=3, probes=1)
        stats = router.stats()
        assert stats["n_services"] == 2
        assert stats["services"]["kmeans"]["queries"] == service_dataset.n_queries

    def test_deployment_roundtrip_serves_identical_results(
        self, router, service_dataset, tmp_path
    ):
        """Acceptance: >= 2 named indexes survive save/restore bit-for-bit."""
        deployment = tmp_path / "deployment"
        router.save(deployment)
        reloaded = Router.load(deployment)
        assert reloaded.names() == router.names()
        for name in router.names():
            before = router.search_batch(service_dataset.queries, name=name, k=5, probes=2)
            after = reloaded.search_batch(service_dataset.queries, name=name, k=5, probes=2)
            np.testing.assert_array_equal(before.ids, after.ids)
            np.testing.assert_array_equal(before.distances, after.distances)
        # service configuration (cache size, default request) is restored too
        assert reloaded.service("kmeans").cache is not None
        assert reloaded.service("kmeans").cache.max_entries == 16

    def test_save_empty_router_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="empty router"):
            Router().save(tmp_path / "empty")

    def test_load_missing_manifest_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="not a saved router"):
            Router.load(tmp_path / "nothing")


class TestSweepIntegration:
    def test_sweeps_accept_services(self, kmeans_index, service_dataset):
        from repro.eval import accuracy_candidate_curve, throughput_accuracy_curve

        service = SearchService(kmeans_index)
        curve = accuracy_candidate_curve(
            service, service_dataset, k=5, probes=[1, 2], measure_time=True
        )
        assert len(curve.points) == 2
        assert all(p.queries_per_second > 0 for p in curve.points)
        fig7 = throughput_accuracy_curve(service, service_dataset, k=5, probes=[1, 2])
        assert all(p.queries_per_second > 0 for p in fig7.points)
        # the shared service accumulated every sweep query in its counters
        assert service.stats()["queries"] == 4 * service_dataset.n_queries

"""Tests for the unified API: registry, protocol, capabilities, persistence.

The central guarantee: every registered index can be constructed by name,
built on a dataset, saved to disk, reloaded in a fresh object, and answer
``batch_query`` bitwise-identically to the original instance.
"""

import numpy as np
import pytest

import repro
from repro.api import (
    AnnIndex,
    IndexCapabilities,
    available_indexes,
    index_info,
    load_index,
    make_index,
    save_index,
)
from repro.core import UspConfig
from repro.datasets import sift_like
from repro.utils.exceptions import ConfigurationError, SerializationError

_TINY_USP = dict(
    n_bins=4,
    k_prime=4,
    epochs=2,
    hidden_dim=16,
    max_batch_size=64,
    min_batch_size=32,
    seed=0,
)

#: construction parameters keeping every index tiny enough for unit tests
TINY_PARAMS = {
    "usp": _TINY_USP,
    "usp-ensemble": dict(n_models=2, **_TINY_USP),
    "usp-hierarchical": dict(levels=(2, 2), **{k: v for k, v in _TINY_USP.items() if k != "n_bins"}),
    "kmeans": dict(n_bins=4, seed=0),
    "neural-lsh": dict(n_bins=4, k_prime=4, epochs=2, hidden_dim=16, seed=0),
    "regression-lsh": dict(depth=2, epochs=2, seed=0),
    "cross-polytope-lsh": dict(n_bins=4, seed=0),
    "hyperplane-lsh": dict(n_hyperplanes=2, seed=0),
    "pca-tree": dict(depth=2, seed=0),
    "rp-tree": dict(depth=2, seed=0),
    "kd-tree": dict(depth=2, seed=0),
    "two-means-tree": dict(depth=2, seed=0),
    "boosted-forest": dict(n_trees=2, depth=2, seed=0),
    "bruteforce": {},
    "ivf-flat": dict(n_lists=4, seed=0),
    "ivf-pq": dict(n_lists=4, n_subspaces=4, n_codewords=8, seed=0),
    "hnsw": dict(m=4, ef_construction=16, ef_search=8, seed=0),
    "scann": dict(n_subspaces=4, n_codewords=8, seed=0),
    "kmeans-scann": dict(n_bins=4, n_subspaces=4, n_codewords=8, seed=0),
    "usp-scann": dict(config=UspConfig(**_TINY_USP), n_subspaces=4, n_codewords=8, seed=0),
    "sharded": dict(n_shards=2),
    "sharded-bruteforce": dict(n_shards=3),
    "sharded-kmeans": dict(n_shards=2, shard_params=dict(n_bins=2, seed=0)),
    "sharded-ivf": dict(n_shards=2, shard_params=dict(n_lists=2, seed=0)),
    "sq8": dict(rerank_factor=4),
    "pq-adc": dict(n_subspaces=4, n_codewords=16, seed=0),
    "sharded-sq8": dict(n_shards=2),
}


@pytest.fixture(scope="module")
def api_dataset():
    return sift_like(n_points=300, n_queries=12, dim=16, n_clusters=4, gt_k=10, seed=5)


def _query_kwargs(name):
    probe = index_info(name)["capabilities"]["probe_parameter"]
    if probe == "n_probes":
        return {"n_probes": 2}
    if probe == "ef":
        return {"ef": 12}
    return {}


class TestRegistry:
    def test_every_tiny_param_name_is_registered(self):
        assert set(TINY_PARAMS) == set(available_indexes())

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="unknown index"):
            make_index("definitely-not-an-index")

    def test_aliases_resolve(self):
        info = index_info("scann-usp")
        assert info["name"] == "usp-scann"

    def test_capabilities_attached_to_classes(self):
        index = make_index("kmeans", n_bins=4)
        assert isinstance(type(index).capabilities, IndexCapabilities)
        assert type(index).capabilities.supports_candidate_sets

    def test_index_info_shape(self):
        info = index_info("usp")
        assert info["class"] == "UspIndex"
        assert info["capabilities"]["trainable"] is True

    def test_top_level_reexports(self):
        assert repro.make_index is make_index
        assert "usp" in repro.available_indexes()


class TestProtocol:
    def test_built_indexes_satisfy_the_protocol(self, api_dataset):
        index = make_index("kmeans", n_bins=4, seed=0).build(api_dataset.base)
        assert isinstance(index, AnnIndex)

    def test_stats_reports_shape_and_capabilities(self, api_dataset):
        index = make_index("kmeans", n_bins=4, seed=0).build(api_dataset.base)
        stats = index.stats()
        assert stats["n_points"] == api_dataset.n_points
        assert stats["dim"] == api_dataset.dim
        assert stats["name"] == "kmeans"
        assert stats["capabilities"]["probe_parameter"] == "n_probes"

    def test_fit_alias_is_deprecated(self, api_dataset):
        index = make_index("kmeans", n_bins=4, seed=0)
        with pytest.warns(DeprecationWarning, match="use build"):
            index.fit(api_dataset.base)
        assert index.is_built

    def test_quantizer_build_alias_is_deprecated(self, api_dataset):
        from repro.ann import ProductQuantizer

        with pytest.warns(DeprecationWarning, match="use fit"):
            ProductQuantizer(4, 4, seed=0).build(api_dataset.base)


class TestProbeKnobWarning:
    """Requesting probes on a knobless index warns instead of silently dropping."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_registry(self):
        from repro.api.protocol import _reset_probe_warning_registry

        _reset_probe_warning_registry()
        yield
        _reset_probe_warning_registry()

    def test_probes_on_knobless_index_warns(self):
        capabilities = make_index("bruteforce").capabilities
        with pytest.warns(UserWarning, match="no probe parameter"):
            assert capabilities.query_kwargs(4) == {}

    def test_warning_fires_once_per_capabilities_value(self):
        import warnings as warnings_module

        capabilities = make_index("bruteforce").capabilities
        with pytest.warns(UserWarning):
            capabilities.query_kwargs(4)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert capabilities.query_kwargs(4) == {}  # second request is silent

    def test_no_warning_without_probes_or_with_a_knob(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert make_index("bruteforce").capabilities.query_kwargs(None) == {}
            kmeans = make_index("kmeans", n_bins=4)
            assert kmeans.capabilities.query_kwargs(3) == {"n_probes": 3}


@pytest.mark.parametrize("name", sorted(TINY_PARAMS))
class TestSaveLoadRoundTrip:
    def test_roundtrip_identical_queries(self, name, api_dataset, tmp_path):
        index = make_index(name, **TINY_PARAMS[name]).build(api_dataset.base)
        path = tmp_path / name
        index.save(path)
        reloaded = load_index(path)
        assert type(reloaded) is type(index)
        kwargs = _query_kwargs(name)
        indices, distances = index.batch_query(api_dataset.queries, 5, **kwargs)
        re_indices, re_distances = reloaded.batch_query(api_dataset.queries, 5, **kwargs)
        np.testing.assert_array_equal(indices, re_indices)
        np.testing.assert_array_equal(distances, re_distances)


class TestPersistenceEdges:
    def test_save_unbuilt_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="has not been built"):
            make_index("kmeans", n_bins=4).save(tmp_path / "x")

    def test_load_missing_dir_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="not a saved index"):
            load_index(tmp_path / "nothing-here")

    def test_save_index_function(self, api_dataset, tmp_path):
        index = make_index("bruteforce").build(api_dataset.base)
        save_index(index, tmp_path / "bf")
        reloaded = load_index(tmp_path / "bf")
        a, _ = index.batch_query(api_dataset.queries, 3)
        b, _ = reloaded.batch_query(api_dataset.queries, 3)
        np.testing.assert_array_equal(a, b)

    def test_saved_name_roundtrips_through_generic_loader(self, api_dataset, tmp_path):
        from repro.api.persistence import saved_index_name

        index = make_index("usp-scann", **TINY_PARAMS["usp-scann"]).build(api_dataset.base)
        index.save(tmp_path / "pipeline")
        # composite entries share one saved-index name (their class's)
        assert saved_index_name(tmp_path / "pipeline") == "scann"
        assert saved_index_name(tmp_path / "pipeline" / "partitioner") == "usp"


class TestSweepIntegration:
    def test_accuracy_curve_accepts_registry_names(self, api_dataset):
        from repro.eval import accuracy_candidate_curve

        curve = accuracy_candidate_curve(
            "kmeans",
            api_dataset,
            k=5,
            probes=[1, 2],
            index_params=dict(n_bins=4, seed=0),
        )
        assert curve.method == "kmeans"
        assert len(curve.points) == 2
        assert curve.accuracies().max() <= 1.0

"""Tests for the boosted ensemble and hierarchical partitioning."""

import numpy as np
import pytest

from repro.core import (
    EnsembleConfig,
    HierarchicalConfig,
    HierarchicalUspIndex,
    UspConfig,
    UspEnsembleIndex,
    boosting_weights,
)
from repro.eval import candidate_recall, knn_accuracy
from repro.utils.exceptions import ConfigurationError, NotFittedError


@pytest.fixture(scope="module")
def ensemble_index(tiny_dataset, tiny_knn, fast_usp_config):
    config = EnsembleConfig(n_models=2, base=fast_usp_config.with_updates(epochs=4))
    return UspEnsembleIndex(config).build(tiny_dataset.base, knn=tiny_knn)


class TestEnsembleConfig:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            EnsembleConfig(n_models=0)
        with pytest.raises(ConfigurationError):
            EnsembleConfig(combination="vote")


class TestBoostingWeights:
    def test_zero_for_perfectly_clustered_points(self, tiny_knn):
        # Assign every point and all its neighbours to bin 0 -> no mismatches.
        assignments = np.zeros(tiny_knn.n_points, dtype=np.int64)
        weights = boosting_weights(assignments, tiny_knn)
        np.testing.assert_array_equal(weights, np.zeros(tiny_knn.n_points))

    def test_counts_separated_neighbors(self):
        indices = np.array([[1, 2], [0, 2], [0, 1]])
        from repro.core import KnnMatrix

        knn = KnnMatrix(indices)
        assignments = np.array([0, 0, 1])
        weights = boosting_weights(assignments, knn)
        np.testing.assert_array_equal(weights, [1.0, 1.0, 2.0])

    def test_multiplies_previous_weights(self):
        indices = np.array([[1], [0]])
        from repro.core import KnnMatrix

        knn = KnnMatrix(indices)
        assignments = np.array([0, 1])
        weights = boosting_weights(assignments, knn, previous_weights=np.array([2.0, 3.0]))
        np.testing.assert_array_equal(weights, [2.0, 3.0])


class TestUspEnsembleIndex:
    def test_trains_requested_number_of_members(self, ensemble_index):
        assert ensemble_index.n_models == 2
        assert len(ensemble_index.weight_history) == 2
        np.testing.assert_array_equal(
            ensemble_index.weight_history[0], np.ones(ensemble_index.n_points)
        )

    def test_members_produce_different_partitions(self, ensemble_index):
        a = ensemble_index.members[0].assignments
        b = ensemble_index.members[1].assignments
        assert (a != b).any()

    def test_confidences_shape_and_range(self, ensemble_index, tiny_dataset):
        conf = ensemble_index.confidences(tiny_dataset.queries)
        assert conf.shape == (tiny_dataset.n_queries, 2)
        assert conf.min() > 0 and conf.max() <= 1.0

    def test_best_member_candidate_selected(self, ensemble_index, tiny_dataset):
        queries = tiny_dataset.queries[:5]
        best = ensemble_index.best_members(queries)
        candidates = ensemble_index.candidate_sets(queries, 1)
        for i in range(5):
            member_candidates = ensemble_index.members[int(best[i])].candidate_sets(
                queries[i : i + 1], 1
            )[0]
            np.testing.assert_array_equal(candidates[i], member_candidates)

    def test_query_and_batch_query(self, ensemble_index, tiny_dataset):
        indices, distances = ensemble_index.query(tiny_dataset.queries[0], k=5, n_probes=2)
        assert indices.shape == (5,)
        batch_indices, _ = ensemble_index.batch_query(tiny_dataset.queries, k=5, n_probes=2)
        assert batch_indices.shape == (tiny_dataset.n_queries, 5)

    def test_union_combination_gives_larger_candidates(self, tiny_dataset, tiny_knn, fast_usp_config):
        base_config = fast_usp_config.with_updates(epochs=3)
        best = UspEnsembleIndex(
            EnsembleConfig(n_models=2, base=base_config, combination="best")
        ).build(tiny_dataset.base, knn=tiny_knn)
        union = UspEnsembleIndex(
            EnsembleConfig(n_models=2, base=base_config, combination="union")
        ).build(tiny_dataset.base, knn=tiny_knn)
        best_sizes = [len(c) for c in best.candidate_sets(tiny_dataset.queries[:10], 1)]
        union_sizes = [len(c) for c in union.candidate_sets(tiny_dataset.queries[:10], 1)]
        assert np.mean(union_sizes) >= np.mean(best_sizes)

    def test_ensemble_not_worse_than_single_member(self, ensemble_index, tiny_dataset):
        queries = tiny_dataset.queries
        single = ensemble_index.members[0].candidate_sets(queries, 1)
        combined = ensemble_index.candidate_sets(queries, 1)
        single_recall = candidate_recall(single, tiny_dataset.ground_truth, 10)
        combined_recall = candidate_recall(combined, tiny_dataset.ground_truth, 10)
        assert combined_recall >= single_recall - 0.05

    def test_introspection(self, ensemble_index):
        assert ensemble_index.num_parameters() == sum(
            m.num_parameters() for m in ensemble_index.members
        )
        assert ensemble_index.training_seconds() > 0
        assert ensemble_index.n_bins == 4

    def test_not_built_errors(self, fast_usp_config):
        index = UspEnsembleIndex(EnsembleConfig(n_models=2, base=fast_usp_config))
        with pytest.raises(NotFittedError):
            index.batch_query(np.zeros((1, 16)), 5)

    def test_constructor_overrides(self, fast_usp_config):
        index = UspEnsembleIndex(n_models=4, base_config=fast_usp_config)
        assert index.config.n_models == 4


class TestHierarchicalConfig:
    def test_total_bins(self):
        assert HierarchicalConfig(levels=(4, 4)).total_bins == 16
        assert HierarchicalConfig(levels=(2, 2, 2)).total_bins == 8

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            HierarchicalConfig(levels=())
        with pytest.raises(ConfigurationError):
            HierarchicalConfig(levels=(4, 1))


class TestHierarchicalUspIndex:
    @pytest.fixture(scope="class")
    def hierarchical_index(self, tiny_dataset, fast_usp_config):
        config = HierarchicalConfig(
            levels=(2, 2), base=fast_usp_config.with_updates(epochs=4, n_bins=2)
        )
        return HierarchicalUspIndex(config).build(tiny_dataset.base)

    def test_total_bins_and_assignment_range(self, hierarchical_index, tiny_dataset):
        assert hierarchical_index.n_bins == 4
        assert hierarchical_index.assignments.min() >= 0
        assert hierarchical_index.assignments.max() < 4
        assert hierarchical_index.bin_sizes().sum() == tiny_dataset.n_points

    def test_leaf_scores_form_distribution(self, hierarchical_index, tiny_dataset):
        scores = hierarchical_index.bin_scores(tiny_dataset.queries)
        assert scores.shape == (tiny_dataset.n_queries, 4)
        np.testing.assert_allclose(scores.sum(axis=1), np.ones(tiny_dataset.n_queries), atol=1e-6)

    def test_query_quality_reasonable(self, hierarchical_index, tiny_dataset):
        indices, _ = hierarchical_index.batch_query(tiny_dataset.queries, k=10, n_probes=2)
        accuracy = knn_accuracy(indices, tiny_dataset.ground_truth, 10)
        assert accuracy > 0.5

    def test_full_probe_perfect_recall(self, hierarchical_index, tiny_dataset):
        indices, _ = hierarchical_index.batch_query(tiny_dataset.queries, k=10, n_probes=4)
        assert knn_accuracy(indices, tiny_dataset.ground_truth, 10) == pytest.approx(1.0)

    def test_num_parameters_positive(self, hierarchical_index):
        assert hierarchical_index.num_parameters() > 0
        assert hierarchical_index.depth() == 2
        assert hierarchical_index.training_seconds() > 0

    def test_not_built_error(self):
        with pytest.raises(NotFittedError):
            HierarchicalUspIndex().bin_scores(np.zeros((1, 4)))

    def test_tiny_subsets_handled(self):
        """Degenerate case: more leaf bins than points still builds and queries."""
        rng = np.random.default_rng(0)
        points = rng.normal(size=(30, 4))
        config = HierarchicalConfig(
            levels=(4, 4),
            base=UspConfig(n_bins=4, k_prime=3, epochs=2, hidden_dim=8, max_batch_size=16, min_batch_size=8),
        )
        index = HierarchicalUspIndex(config).build(points)
        indices, _ = index.batch_query(points[:3], k=3, n_probes=16)
        assert (indices >= 0).all()

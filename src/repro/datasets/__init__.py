"""Datasets: synthetic toy data and ANN benchmark stand-ins/loaders."""

from .synthetic import (
    LabeledDataset,
    make_blobs,
    make_circles,
    make_classification,
    make_gaussian_mixture,
    make_moons,
)
from .ground_truth import compute_ground_truth
from .io import (
    load_bundle,
    read_fvecs,
    read_ivecs,
    save_bundle,
    write_fvecs,
    write_ivecs,
)
from .ann import (
    AnnDataset,
    available_datasets,
    from_arrays,
    from_bundle,
    from_fvecs,
    glove_like,
    load_dataset,
    mnist_like,
    sift_like,
)

__all__ = [
    "LabeledDataset",
    "make_blobs",
    "make_circles",
    "make_classification",
    "make_gaussian_mixture",
    "make_moons",
    "compute_ground_truth",
    "load_bundle",
    "read_fvecs",
    "read_ivecs",
    "save_bundle",
    "write_fvecs",
    "write_ivecs",
    "AnnDataset",
    "available_datasets",
    "from_arrays",
    "from_bundle",
    "from_fvecs",
    "glove_like",
    "load_dataset",
    "mnist_like",
    "sift_like",
]

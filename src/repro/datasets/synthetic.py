"""Synthetic 2-D and low-dimensional datasets.

These mirror the scikit-learn toy generators the paper uses in its
clustering comparison (Table 5): ``make_moons``, ``make_circles``,
``make_blobs``, and ``make_classification``, plus a general Gaussian
mixture sampler that the ANN benchmark emulation builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import DatasetError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import check_positive_int


@dataclass
class LabeledDataset:
    """Points plus ground-truth cluster/class labels."""

    points: np.ndarray
    labels: np.ndarray
    name: str = "labeled"

    def __post_init__(self) -> None:
        self.points = np.asarray(self.points, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if len(self.points) != len(self.labels):
            raise DatasetError("points and labels must have the same length")

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def n_clusters(self) -> int:
        return int(np.unique(self.labels).shape[0])


def make_blobs(
    n_points: int = 500,
    n_clusters: int = 3,
    dim: int = 2,
    *,
    cluster_std: float = 1.0,
    center_box: Tuple[float, float] = (-10.0, 10.0),
    seed: SeedLike = None,
) -> LabeledDataset:
    """Isotropic Gaussian blobs (the classic clustering sanity check)."""
    check_positive_int(n_points, "n_points")
    check_positive_int(n_clusters, "n_clusters")
    rng = resolve_rng(seed)
    centers = rng.uniform(center_box[0], center_box[1], size=(n_clusters, dim))
    labels = rng.integers(0, n_clusters, size=n_points)
    points = centers[labels] + rng.normal(scale=cluster_std, size=(n_points, dim))
    return LabeledDataset(points, labels, name="blobs")


def make_moons(
    n_points: int = 500,
    *,
    noise: float = 0.05,
    seed: SeedLike = None,
) -> LabeledDataset:
    """Two interleaving half circles (non-convex clusters)."""
    check_positive_int(n_points, "n_points")
    rng = resolve_rng(seed)
    n_outer = n_points // 2
    n_inner = n_points - n_outer
    outer_angles = np.linspace(0.0, np.pi, n_outer)
    inner_angles = np.linspace(0.0, np.pi, n_inner)
    outer = np.column_stack([np.cos(outer_angles), np.sin(outer_angles)])
    inner = np.column_stack([1.0 - np.cos(inner_angles), 0.5 - np.sin(inner_angles)])
    points = np.vstack([outer, inner])
    labels = np.concatenate([np.zeros(n_outer, dtype=np.int64), np.ones(n_inner, dtype=np.int64)])
    if noise > 0:
        points = points + rng.normal(scale=noise, size=points.shape)
    return LabeledDataset(points, labels, name="moons")


def make_circles(
    n_points: int = 500,
    *,
    noise: float = 0.05,
    factor: float = 0.5,
    seed: SeedLike = None,
) -> LabeledDataset:
    """A large circle containing a smaller circle (non-convex clusters)."""
    check_positive_int(n_points, "n_points")
    if not 0.0 < factor < 1.0:
        raise DatasetError(f"factor must lie in (0, 1), got {factor}")
    rng = resolve_rng(seed)
    n_outer = n_points // 2
    n_inner = n_points - n_outer
    outer_angles = np.linspace(0.0, 2.0 * np.pi, n_outer, endpoint=False)
    inner_angles = np.linspace(0.0, 2.0 * np.pi, n_inner, endpoint=False)
    outer = np.column_stack([np.cos(outer_angles), np.sin(outer_angles)])
    inner = factor * np.column_stack([np.cos(inner_angles), np.sin(inner_angles)])
    points = np.vstack([outer, inner])
    labels = np.concatenate([np.zeros(n_outer, dtype=np.int64), np.ones(n_inner, dtype=np.int64)])
    if noise > 0:
        points = points + rng.normal(scale=noise, size=points.shape)
    return LabeledDataset(points, labels, name="circles")


def make_classification(
    n_points: int = 500,
    n_clusters: int = 4,
    dim: int = 2,
    *,
    class_sep: float = 2.0,
    anisotropy: float = 0.6,
    seed: SeedLike = None,
) -> LabeledDataset:
    """Anisotropic, partially overlapping Gaussian classes.

    This emulates the ``make_classification`` dataset with four clusters that
    the paper calls "challenging for many clustering algorithms": each class
    is an elongated (anisotropically transformed) Gaussian, so K-means style
    spherical clusters fit it poorly.
    """
    check_positive_int(n_points, "n_points")
    check_positive_int(n_clusters, "n_clusters")
    rng = resolve_rng(seed)
    centers = rng.normal(scale=class_sep, size=(n_clusters, dim)) * np.sqrt(dim)
    labels = rng.integers(0, n_clusters, size=n_points)
    points = np.empty((n_points, dim), dtype=np.float64)
    for cluster in range(n_clusters):
        mask = labels == cluster
        count = int(mask.sum())
        if count == 0:
            continue
        # Random anisotropic covariance per class.
        basis = rng.normal(size=(dim, dim))
        q, _ = np.linalg.qr(basis)
        scales = rng.uniform(anisotropy, 1.0, size=dim)
        transform = q @ np.diag(scales)
        noise = rng.normal(size=(count, dim)) @ transform.T
        points[mask] = centers[cluster] + noise
    return LabeledDataset(points, labels, name="classification")


def make_gaussian_mixture(
    n_points: int,
    n_components: int,
    dim: int,
    *,
    cluster_std_range: Tuple[float, float] = (0.5, 1.5),
    center_scale: float = 10.0,
    weights: Optional[Sequence[float]] = None,
    seed: SeedLike = None,
) -> LabeledDataset:
    """Sample from a Gaussian mixture with per-component scales and weights.

    This is the workhorse behind :func:`repro.datasets.ann.sift_like`: real
    descriptor datasets are strongly clustered with uneven cluster sizes, so
    heavy-tailed component weights reproduce the structure that makes learned
    partitions beat data-oblivious ones.
    """
    check_positive_int(n_points, "n_points")
    check_positive_int(n_components, "n_components")
    check_positive_int(dim, "dim")
    rng = resolve_rng(seed)
    if weights is None:
        raw = rng.pareto(1.5, size=n_components) + 1.0
        weights_arr = raw / raw.sum()
    else:
        weights_arr = np.asarray(weights, dtype=np.float64)
        if weights_arr.shape[0] != n_components or weights_arr.min() < 0:
            raise DatasetError("weights must be non-negative with one entry per component")
        weights_arr = weights_arr / weights_arr.sum()
    centers = rng.normal(scale=center_scale, size=(n_components, dim))
    stds = rng.uniform(*cluster_std_range, size=n_components)
    labels = rng.choice(n_components, size=n_points, p=weights_arr)
    points = centers[labels] + rng.normal(size=(n_points, dim)) * stds[labels, None]
    return LabeledDataset(points, labels, name="gaussian_mixture")

"""Readers/writers for the on-disk vector formats used by ANN benchmarks.

The SIFT-1M distribution uses ``.fvecs`` (float vectors) and ``.ivecs``
(integer vectors, used for ground truth).  Each record is a little-endian
``int32`` dimensionality ``d`` followed by ``d`` values.  A compressed
``.npz`` bundle format is also provided for saving generated datasets.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

import numpy as np

from ..utils.exceptions import DatasetError


def read_fvecs(path: str | os.PathLike, *, max_rows: Optional[int] = None) -> np.ndarray:
    """Read an ``.fvecs`` file into a ``(n, d)`` float64 array."""
    return _read_vecs(path, np.float32, max_rows=max_rows).astype(np.float64)


def read_ivecs(path: str | os.PathLike, *, max_rows: Optional[int] = None) -> np.ndarray:
    """Read an ``.ivecs`` file into a ``(n, d)`` int64 array."""
    return _read_vecs(path, np.int32, max_rows=max_rows).astype(np.int64)


def _read_vecs(path: str | os.PathLike, dtype, *, max_rows: Optional[int]) -> np.ndarray:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"vector file not found: {path}")
    raw = np.fromfile(path, dtype=np.int32)
    if raw.size == 0:
        raise DatasetError(f"vector file is empty: {path}")
    dim = int(raw[0])
    if dim <= 0:
        raise DatasetError(f"invalid dimensionality {dim} in {path}")
    record = dim + 1
    if raw.size % record != 0:
        raise DatasetError(f"file size of {path} is not a multiple of the record size")
    n_rows = raw.size // record
    if max_rows is not None:
        n_rows = min(n_rows, int(max_rows))
    data = raw[: n_rows * record].reshape(n_rows, record)[:, 1:]
    return data.view(np.int32).astype(dtype) if dtype == np.int32 else data.view(np.float32)


def write_fvecs(path: str | os.PathLike, vectors: np.ndarray) -> None:
    """Write a ``(n, d)`` array as ``.fvecs``."""
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2:
        raise DatasetError("vectors must be 2-dimensional")
    n, dim = vectors.shape
    out = np.empty((n, dim + 1), dtype=np.float32)
    out[:, 0] = np.frombuffer(np.full(n, dim, dtype=np.int32).tobytes(), dtype=np.float32)
    out[:, 1:] = vectors
    out.tofile(path)


def write_ivecs(path: str | os.PathLike, vectors: np.ndarray) -> None:
    """Write a ``(n, d)`` int array as ``.ivecs``."""
    vectors = np.asarray(vectors, dtype=np.int32)
    if vectors.ndim != 2:
        raise DatasetError("vectors must be 2-dimensional")
    n, dim = vectors.shape
    out = np.empty((n, dim + 1), dtype=np.int32)
    out[:, 0] = dim
    out[:, 1:] = vectors
    out.tofile(path)


def save_bundle(path: str | os.PathLike, **arrays: np.ndarray) -> None:
    """Save named arrays (base, queries, ground_truth, ...) as one ``.npz``."""
    if not arrays:
        raise DatasetError("save_bundle requires at least one array")
    np.savez_compressed(path, **arrays)


def load_bundle(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load an ``.npz`` bundle written by :func:`save_bundle`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"bundle not found: {path}")
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}

"""Exact ground-truth nearest neighbours for ANN benchmark datasets."""

from __future__ import annotations

import numpy as np

from ..utils.distances import pairwise_topk
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int


def compute_ground_truth(
    base: np.ndarray,
    queries: np.ndarray,
    k: int = 100,
    *,
    metric: str = "euclidean",
    block_size: int = 1024,
) -> np.ndarray:
    """Exact top-``k`` base indices for each query (brute force, blocked).

    Mirrors how the ann-benchmarks ground-truth files are produced for
    SIFT/MNIST; the result is an ``(n_queries, k)`` int64 index matrix
    ordered by increasing distance.
    """
    base = as_float_matrix(base, name="base")
    queries = as_query_matrix(queries, base.shape[1], name="queries")
    check_positive_int(k, "k")
    indices, _ = pairwise_topk(
        queries, base, k, metric=metric, block_size=block_size
    )
    return indices

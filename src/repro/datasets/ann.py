"""ANN benchmark datasets (real loaders + structural synthetic stand-ins).

The paper evaluates on SIFT-1M (128-d, 1M points) and MNIST (784-d, 60k
points) from the ann-benchmarks suite.  Those files are not available in
this offline environment, so this module provides deterministic generators
that reproduce the *structural* properties the paper's claims depend on:

* ``sift_like``  — 128-d non-negative descriptor-style vectors drawn from a
  heavy-tailed Gaussian mixture (real SIFT descriptors are strongly
  clustered with uneven cluster populations).
* ``mnist_like`` — 784-d vectors generated from a low intrinsic-dimension
  nonlinear manifold (like raster images of digits, where ~10 modes live on
  a manifold of much lower dimension than 784) with values in [0, 255].
* ``glove_like`` — unit-norm word-embedding-style vectors (used by the
  extension experiments / angular metric paths).

Each generator returns an :class:`AnnDataset` with a held-out query set and
exact ground truth, exactly as the ann-benchmarks HDF5 bundles do.  If real
``.fvecs``/``.ivecs`` or ``.npz`` files are present on disk they can be
loaded through :func:`load_dataset` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from ..utils.exceptions import DatasetError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import check_positive_int
from .ground_truth import compute_ground_truth
from .io import load_bundle, read_fvecs, read_ivecs
from .synthetic import make_gaussian_mixture


@dataclass
class AnnDataset:
    """A nearest-neighbour benchmark: base points, queries, and ground truth."""

    name: str
    base: np.ndarray
    queries: np.ndarray
    ground_truth: np.ndarray
    metric: str = "euclidean"
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.base = np.asarray(self.base, dtype=np.float64)
        self.queries = np.asarray(self.queries, dtype=np.float64)
        self.ground_truth = np.asarray(self.ground_truth, dtype=np.int64)
        #: memoized exact k-NN per (k, metric); see :meth:`ground_truth_for`
        self._gt_cache: Dict[tuple, np.ndarray] = {}
        if self.base.ndim != 2 or self.queries.ndim != 2:
            raise DatasetError("base and queries must be 2-dimensional")
        if self.base.shape[1] != self.queries.shape[1]:
            raise DatasetError("base and queries must share dimensionality")
        if self.ground_truth.shape[0] != self.queries.shape[0]:
            raise DatasetError("ground truth must have one row per query")

    @property
    def n_points(self) -> int:
        return int(self.base.shape[0])

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])

    @property
    def dim(self) -> int:
        return int(self.base.shape[1])

    @property
    def gt_k(self) -> int:
        """Number of ground-truth neighbours stored per query."""
        return int(self.ground_truth.shape[1])

    def ground_truth_for(self, k: int, *, metric: Optional[str] = None) -> np.ndarray:
        """Exact top-``k`` neighbours per query, memoized per ``(k, metric)``.

        The stored :attr:`ground_truth` answers any request with
        ``k <= gt_k`` under the dataset's own metric for free; anything
        else (a deeper ``k``, a different metric) is brute-forced once and
        cached, so repeated sweeps and benchmark runs over the same
        dataset stop recomputing exact k-NN from scratch.
        """
        metric = metric or self.metric
        k = min(check_positive_int(k, "k"), self.n_points)
        if metric == self.metric and k <= self.gt_k:
            return self.ground_truth[:, :k]
        for (cached_k, cached_metric), cached in self._gt_cache.items():
            if cached_metric == metric and cached_k >= k:
                return cached[:, :k]
        gt = compute_ground_truth(self.base, self.queries, k, metric=metric)
        self._gt_cache[(k, metric)] = gt
        return gt

    def subset(self, n_points: int, n_queries: Optional[int] = None, *, gt_k: Optional[int] = None) -> "AnnDataset":
        """Return a smaller dataset using the first ``n_points`` base rows.

        Ground truth is recomputed because dropping base points invalidates
        the stored neighbour indices.
        """
        n_points = min(check_positive_int(n_points, "n_points"), self.n_points)
        n_queries = self.n_queries if n_queries is None else min(n_queries, self.n_queries)
        gt_k = self.gt_k if gt_k is None else gt_k
        base = self.base[:n_points]
        queries = self.queries[:n_queries]
        gt = compute_ground_truth(base, queries, min(gt_k, n_points), metric=self.metric)
        return AnnDataset(
            name=f"{self.name}-subset{n_points}",
            base=base,
            queries=queries,
            ground_truth=gt,
            metric=self.metric,
            extra=dict(self.extra),
        )


def _manifold_embedding(
    latent: np.ndarray,
    out_dim: int,
    rng: np.random.Generator,
    *,
    n_harmonics: int = 3,
) -> np.ndarray:
    """Lift low-dimensional latent codes into ``out_dim`` via random harmonics.

    Produces smooth, highly correlated coordinates (like neighbouring pixels
    in an image), i.e. high ambient dimension but low intrinsic dimension.
    """
    n, latent_dim = latent.shape
    out = np.zeros((n, out_dim), dtype=np.float64)
    for _ in range(n_harmonics):
        mixing = rng.normal(size=(latent_dim, out_dim)) / np.sqrt(latent_dim)
        phase = rng.uniform(0.0, 2.0 * np.pi, size=out_dim)
        out += np.sin(latent @ mixing + phase)
    return out / n_harmonics


def sift_like(
    n_points: int = 10_000,
    n_queries: int = 500,
    dim: int = 128,
    *,
    n_clusters: int = 64,
    gt_k: int = 100,
    seed: SeedLike = 7,
) -> AnnDataset:
    """SIFT-1M structural stand-in: clustered, non-negative descriptor vectors."""
    check_positive_int(n_points, "n_points")
    check_positive_int(n_queries, "n_queries")
    rng = resolve_rng(seed)
    total = n_points + n_queries
    mixture = make_gaussian_mixture(
        total,
        n_components=n_clusters,
        dim=dim,
        cluster_std_range=(0.6, 2.0),
        center_scale=6.0,
        seed=rng,
    )
    # SIFT descriptors are non-negative and roughly gamma-distributed per
    # coordinate; shift/clip the mixture to reproduce that marginal shape.
    points = mixture.points
    points = points - points.min(axis=0, keepdims=True)
    points *= 255.0 / max(points.max(), 1e-9)
    order = rng.permutation(total)
    base = points[order[:n_points]]
    queries = points[order[n_points:]]
    gt = compute_ground_truth(base, queries, min(gt_k, n_points))
    return AnnDataset(
        name="sift-like",
        base=base,
        queries=queries,
        ground_truth=gt,
        extra={"source": "synthetic", "n_clusters": n_clusters},
    )


def mnist_like(
    n_points: int = 6_000,
    n_queries: int = 300,
    dim: int = 784,
    *,
    n_classes: int = 10,
    latent_dim: int = 12,
    gt_k: int = 100,
    seed: SeedLike = 11,
) -> AnnDataset:
    """MNIST structural stand-in: high-dimensional points on a low-d manifold."""
    check_positive_int(n_points, "n_points")
    check_positive_int(n_queries, "n_queries")
    rng = resolve_rng(seed)
    total = n_points + n_queries
    # Latent class structure: each "digit" is a cluster in latent space.
    class_centers = rng.normal(scale=3.0, size=(n_classes, latent_dim))
    labels = rng.integers(0, n_classes, size=total)
    latent = class_centers[labels] + rng.normal(scale=0.8, size=(total, latent_dim))
    embedded = _manifold_embedding(latent, dim, rng)
    # Scale into pixel-intensity range with a sparse-ish activation profile.
    points = np.clip((embedded + 1.0) * 0.5, 0.0, 1.0) * 255.0
    mask = rng.random(dim) < 0.25
    points[:, mask] *= 0.1  # many near-zero "border pixel" coordinates
    order = rng.permutation(total)
    base = points[order[:n_points]]
    queries = points[order[n_points:]]
    gt = compute_ground_truth(base, queries, min(gt_k, n_points))
    return AnnDataset(
        name="mnist-like",
        base=base,
        queries=queries,
        ground_truth=gt,
        extra={"source": "synthetic", "n_classes": n_classes, "latent_dim": latent_dim},
    )


def glove_like(
    n_points: int = 8_000,
    n_queries: int = 400,
    dim: int = 100,
    *,
    n_clusters: int = 80,
    gt_k: int = 100,
    seed: SeedLike = 13,
) -> AnnDataset:
    """GloVe structural stand-in: unit-norm embedding vectors (angular metric)."""
    check_positive_int(n_points, "n_points")
    check_positive_int(n_queries, "n_queries")
    rng = resolve_rng(seed)
    total = n_points + n_queries
    mixture = make_gaussian_mixture(
        total,
        n_components=n_clusters,
        dim=dim,
        cluster_std_range=(0.3, 1.0),
        center_scale=3.0,
        seed=rng,
    )
    points = mixture.points
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    points = points / np.maximum(norms, 1e-12)
    order = rng.permutation(total)
    base = points[order[:n_points]]
    queries = points[order[n_points:]]
    gt = compute_ground_truth(base, queries, min(gt_k, n_points))
    return AnnDataset(
        name="glove-like",
        base=base,
        queries=queries,
        ground_truth=gt,
        extra={"source": "synthetic", "n_clusters": n_clusters},
    )


def from_arrays(
    name: str,
    base: np.ndarray,
    queries: np.ndarray,
    *,
    gt_k: int = 100,
    metric: str = "euclidean",
) -> AnnDataset:
    """Wrap raw arrays as an :class:`AnnDataset`, computing exact ground truth."""
    base = np.asarray(base, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    gt = compute_ground_truth(base, queries, min(gt_k, base.shape[0]), metric=metric)
    return AnnDataset(name=name, base=base, queries=queries, ground_truth=gt, metric=metric)


def from_fvecs(
    name: str,
    base_path: str,
    query_path: str,
    groundtruth_path: Optional[str] = None,
    *,
    max_points: Optional[int] = None,
    max_queries: Optional[int] = None,
    gt_k: int = 100,
) -> AnnDataset:
    """Load a real dataset distributed in the SIFT ``.fvecs``/``.ivecs`` format."""
    base = read_fvecs(base_path, max_rows=max_points)
    queries = read_fvecs(query_path, max_rows=max_queries)
    if groundtruth_path is not None and max_points is None:
        gt = read_ivecs(groundtruth_path, max_rows=max_queries)
    else:
        gt = compute_ground_truth(base, queries, min(gt_k, base.shape[0]))
    return AnnDataset(name=name, base=base, queries=queries, ground_truth=gt)


def from_bundle(path: str) -> AnnDataset:
    """Load an ``.npz`` bundle with ``base``, ``queries``, ``ground_truth`` arrays."""
    arrays = load_bundle(path)
    missing = {"base", "queries", "ground_truth"} - set(arrays)
    if missing:
        raise DatasetError(f"bundle {path} is missing arrays: {sorted(missing)}")
    return AnnDataset(
        name=Path(path).stem,
        base=arrays["base"],
        queries=arrays["queries"],
        ground_truth=arrays["ground_truth"],
    )


_REGISTRY: Dict[str, Callable[..., AnnDataset]] = {
    "sift-like": sift_like,
    "mnist-like": mnist_like,
    "glove-like": glove_like,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_REGISTRY)


def load_dataset(name: str, **kwargs) -> AnnDataset:
    """Load a benchmark dataset by name (or an ``.npz``/``.fvecs`` path).

    ``name`` may be one of :func:`available_datasets`, or a filesystem path
    to a saved ``.npz`` bundle.
    """
    if name in _REGISTRY:
        return _REGISTRY[name](**kwargs)
    path = Path(name)
    if path.suffix == ".npz" and path.exists():
        return from_bundle(str(path))
    raise DatasetError(
        f"unknown dataset {name!r}; expected one of {available_datasets()} or an .npz path"
    )

"""The follower side of replication: apply the stream, serve reads, fail over.

A :class:`Follower` owns a **read-only** :class:`~repro.store.Collection`
and a replication source — anything with ``poll(since_seq, ...)`` and
``bootstrap_bundle()``: an in-process
:class:`~repro.replica.primary.Primary` or an
:class:`~repro.replica.transport.HttpReplicationSource` pulling a remote
``/replicate`` endpoint.  Each :meth:`sync` pulls the records after the
follower's own ``last_seq`` and applies them through
:meth:`Collection.apply_replicated` — journal-then-apply into the
follower's *own* WAL, keeping the primary's sequence numbers — so a
follower directory is recoverable exactly like a primary directory at
the same seq:

* crash a follower, :meth:`attach` its directory again, and sync resumes
  from its last durable record;
* lose the primary, call :meth:`promote`, and the collection flips
  writable at its last contiguous acknowledged seq — nothing the
  follower acknowledged is lost, which the replica test suite asserts
  bitwise against a never-killed reference.

If the primary checkpointed past this follower (the poll raises
:class:`~repro.utils.exceptions.BootstrapRequired`), :meth:`sync`
re-bootstraps from a fresh snapshot bundle automatically (count in
``resyncs``; disable with ``auto_resync=False``).

:class:`ReplicationLoop` drives ``sync()`` on a daemon thread, the same
idiom as :class:`~repro.store.MaintenanceLoop` — or call :meth:`sync`
directly for deterministic tests and benchmarks.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from ..obs.trace import span
from ..store.collection import Collection
from ..utils.exceptions import BootstrapRequired, ValidationError
from .wire import decode_wire_record


class Follower:
    """Apply one primary's replication stream to a read-only collection."""

    def __init__(
        self,
        collection,
        source,
        *,
        auto_resync: bool = True,
        service_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not getattr(collection, "read_only", False):
            raise ValidationError(
                f"collection {collection.name!r} is writable; followers must "
                "open their copy read-only (the stream is the one writer)"
            )
        self.collection = collection
        self.source = source
        self.auto_resync = bool(auto_resync)
        #: the primary's last_seq as of the most recent poll (lag gauge)
        self.primary_last_seq = int(collection.last_seq)
        self.records_applied = 0
        self.polls = 0
        self.resyncs = 0
        self._service_kwargs = dict(service_kwargs or {})
        self._service = None
        # Serialises pollers: a ReplicationLoop and a staleness-waiting
        # read may both call sync(); interleaved polls at the same seq
        # would race to apply the same records.
        self._sync_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def bootstrap(
        cls, path, source, *, sync: Optional[str] = None, **kwargs
    ) -> "Follower":
        """New follower at ``path`` from the source's snapshot bundle.

        The bundle covers the primary's current snapshot generation; the
        first :meth:`sync` then pulls everything journaled after it.
        """
        collection = Collection.clone_from_bundle(
            path, source.bootstrap_bundle(), sync=sync, read_only=True
        )
        return cls(collection, source, **kwargs)

    @classmethod
    def attach(cls, path, source, *, sync: Optional[str] = None, **kwargs) -> "Follower":
        """Reopen an existing follower directory (crash recovery) and resume.

        :meth:`Collection.open` replays the follower's own WAL to its
        last contiguous record — exactly the primary-side recovery path —
        so syncing continues from the last durably applied seq.
        """
        collection = Collection.open(path, sync=sync, read_only=True)
        return cls(collection, source, **kwargs)

    # ------------------------------------------------------------------ #
    # gauges
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.collection.name

    @property
    def last_applied_seq(self) -> int:
        """Newest primary sequence number durably applied here."""
        return int(self.collection.last_seq)

    @property
    def lag(self) -> int:
        """Sequence distance behind the primary as of the last poll."""
        return max(0, self.primary_last_seq - self.last_applied_seq)

    # ------------------------------------------------------------------ #
    # the pull loop body
    # ------------------------------------------------------------------ #
    def sync(self, *, max_records: Optional[int] = None) -> int:
        """Pull and apply one batch; returns how many records were applied.

        Each record is CRC-verified, journaled to the follower's own WAL
        (fsynced under the collection's sync policy), and only then
        applied in memory — the follower acknowledges nothing it could
        not replay after a crash.
        """
        with self._sync_lock, span("replica.sync", follower=self.name) as sync_span:
            try:
                batch = self.source.poll(self.last_applied_seq, max_records=max_records)
            except BootstrapRequired:
                if not self.auto_resync:
                    raise
                self._resync_locked()
                batch = self.source.poll(self.last_applied_seq, max_records=max_records)
            self.polls += 1
            applied = 0
            for wire in batch.records:
                record, arrays = decode_wire_record(wire)
                self.collection.apply_replicated(record, arrays)
                applied += 1
            self.records_applied += applied
            self.primary_last_seq = max(int(batch.last_seq), self.last_applied_seq)
            sync_span.set(applied=applied, lag_seq=self.lag)
            return applied

    def resync(self) -> "Follower":
        """Discard the local copy and re-bootstrap from a fresh bundle."""
        with self._sync_lock:
            self._resync_locked()
        return self

    def _resync_locked(self) -> None:
        path = Path(self.collection.path)
        sync = self.collection.sync
        self.collection.close()
        shutil.rmtree(path)
        self.collection = Collection.clone_from_bundle(
            path, self.source.bootstrap_bundle(), sync=sync, read_only=True
        )
        self._service = None
        self.resyncs += 1

    # ------------------------------------------------------------------ #
    # serving + failover
    # ------------------------------------------------------------------ #
    def service(self, **kwargs):
        """A :class:`~repro.service.SearchService` over this follower's copy.

        Cached, and rebuilt automatically when a resync replaced the
        underlying collection object.  Mutation endpoints on it surface
        the collection's typed
        :class:`~repro.utils.exceptions.ReadOnlyError`.
        """
        from ..service.service import SearchService

        if self._service is None or self._service.collection is not self.collection:
            merged = {**self._service_kwargs, **kwargs}
            self._service = SearchService(self.collection, **merged)
        return self._service

    def promote(self) -> Collection:
        """Fail over: flip this follower's collection writable and return it.

        The collection already holds every record the follower durably
        acknowledged (journal-then-apply), replayed to the last
        contiguous seq if this copy was just :meth:`attach`-ed after a
        crash.  The caller must ensure the old primary is dead — two
        writable copies diverge.
        """
        with self._sync_lock:
            return self.collection.promote()

    def stats(self) -> Dict[str, Any]:
        return {
            "role": "follower",
            "name": self.name,
            "last_applied_seq": self.last_applied_seq,
            "primary_last_seq": int(self.primary_last_seq),
            "lag_seq": self.lag,
            "generation": int(self.collection.generation),
            "records_applied": int(self.records_applied),
            "polls": int(self.polls),
            "resyncs": int(self.resyncs),
            "read_only": bool(self.collection.read_only),
        }

    def __repr__(self) -> str:
        return (
            f"Follower(name={self.name!r}, last_applied_seq={self.last_applied_seq}, "
            f"lag={self.lag}, resyncs={self.resyncs})"
        )


class ReplicationLoop:
    """Drive :meth:`Follower.sync` on a daemon thread (or via ``run_once``).

    The follower-side analogue of
    :class:`~repro.store.MaintenanceLoop`: ``start()`` / ``stop()`` for
    background tailing at ``interval_seconds``, :meth:`run_once` for
    deterministic schedules in tests and benchmarks.  A sync that raises
    (dead source, poisoned collection) records ``last_error`` and stands
    down instead of spinning.
    """

    def __init__(
        self,
        follower: Follower,
        *,
        interval_seconds: float = 0.05,
        max_records: Optional[int] = None,
    ) -> None:
        if float(interval_seconds) <= 0:
            raise ValidationError("interval_seconds must be positive")
        if max_records is not None and int(max_records) < 1:
            raise ValidationError("max_records must be positive (or None)")
        self.follower = follower
        self.interval_seconds = float(interval_seconds)
        self.max_records = None if max_records is None else int(max_records)
        self.syncs = 0
        self.records = 0
        self.last_error: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def run_once(self) -> int:
        applied = self.follower.sync(max_records=self.max_records)
        self.syncs += 1
        self.records += applied
        return applied

    def start(self) -> "ReplicationLoop":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"replication-{self.follower.name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.run_once()
            except Exception as exc:  # pragma: no cover - timing dependent
                self.last_error = f"{type(exc).__name__}: {exc}"
                return

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    def __enter__(self) -> "ReplicationLoop":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"ReplicationLoop(follower={self.follower.name!r}, "
            f"interval={self.interval_seconds}, syncs={self.syncs})"
        )

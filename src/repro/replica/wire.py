"""The replication wire format: WAL records as checksummed JSON frames.

A shipped record is exactly the payload bytes the primary's
:class:`~repro.store.wal.WriteAheadLog` journaled — re-encoded through
the same codec (:func:`~repro.store.wal.encode_record_payload`), wrapped
in base64 so it travels inside the serving layer's JSON envelopes, and
covered by its own CRC32.  One codec and one checksum therefore span the
whole pipeline: primary log → wire → follower log, and a record that
survives :func:`decode_wire_record` is bit-for-bit the record the
primary acknowledged.

:class:`ShippedBatch` is the unit :meth:`Primary.poll` returns and the
``/replicate`` endpoint serialises: an ordered run of wire records plus
the primary's ``last_seq`` (so followers can measure lag even when the
batch is truncated by ``max_records``) and ``base_seq`` / ``generation``
(so they can detect an upcoming bootstrap before hitting it).
"""

from __future__ import annotations

import base64
import binascii
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..store.wal import decode_record_payload, encode_record_payload
from ..utils.exceptions import StorageError


def encode_wire_record(
    record: Dict[str, Any], arrays: Mapping[str, np.ndarray]
) -> Dict[str, Any]:
    """One WAL record as a JSON-able ``{"crc32", "payload"}`` frame."""
    payload = encode_record_payload(record, dict(arrays or {}))
    return {
        "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
        "payload": base64.b64encode(payload).decode("ascii"),
    }


def decode_wire_record(
    wire: Mapping[str, Any],
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Verify a wire frame's checksum and decode it back to ``(record, arrays)``.

    Raises :class:`~repro.utils.exceptions.StorageError` on a malformed
    frame or a checksum mismatch — a follower must never apply (let alone
    journal) bytes that do not verify.
    """
    try:
        payload = base64.b64decode(wire["payload"], validate=True)
        crc = int(wire["crc32"])
    except (KeyError, TypeError, ValueError, binascii.Error) as exc:
        raise StorageError(f"malformed replication frame: {exc}") from exc
    if zlib.crc32(payload) & 0xFFFFFFFF != crc & 0xFFFFFFFF:
        raise StorageError(
            "replication frame failed its CRC32 check; refusing to apply "
            "corrupted bytes"
        )
    return decode_record_payload(payload)


@dataclass
class ShippedBatch:
    """One :meth:`Primary.poll` response: an ordered run of wire records.

    ``last_seq`` is the primary's newest acknowledged sequence number at
    poll time — with ``max_records`` truncation the batch may end before
    it, and the gap is the follower's remaining lag.  ``base_seq`` and
    ``generation`` describe the primary's current snapshot so a follower
    can see a checkpoint moved past it.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    last_seq: int = 0
    base_seq: int = 0
    generation: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "records": list(self.records),
            "last_seq": int(self.last_seq),
            "base_seq": int(self.base_seq),
            "generation": int(self.generation),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShippedBatch":
        try:
            return cls(
                records=list(data["records"]),
                last_seq=int(data["last_seq"]),
                base_seq=int(data.get("base_seq", 0)),
                generation=int(data.get("generation", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StorageError(f"malformed replication batch: {exc}") from exc

"""Replica-aware serving: round-robin reads, session guarantees, one writer.

:class:`ReplicaGroup` presents a primary plus N followers as **one**
service: it duck-types the :class:`~repro.service.SearchService` surface
(``search`` / ``search_batch`` / ``add`` / ``remove`` /
``extend_attributes`` / ``stats`` / ``capabilities`` / ``dim``), so
:meth:`Router.add_replica_group` can host it in the same table as plain
services and :class:`repro.net.SearchServer` can serve it unchanged.

Dispatch rules:

* **reads** round-robin across the followers, falling back to the
  primary when there are none;
* **writes** always go to the primary's collection (journaled through
  its WAL; followers pick the records up on their next sync);
* **bounded staleness** — a read carrying a :class:`SessionToken` must
  be answered by a copy at or past the token's ``last_seen_seq``.  A
  behind follower gets up to ``staleness_budget_seconds`` of syncing to
  catch up; if it cannot, the read redirects to the primary, which is
  never stale.  Every read and acknowledged write advances the token, so
  one token gives a client monotonic reads and read-your-writes across
  the whole group.
"""

from __future__ import annotations

import time
from threading import Lock
from typing import Any, Dict, List, Mapping, Optional

from ..service.service import SearchService
from ..utils.exceptions import ValidationError
from .follower import Follower
from .primary import Primary


class SessionToken:
    """A client-held high-water mark for bounded-staleness reads.

    Carries the highest sequence number this client has observed — from
    its own acknowledged writes or from previous reads.  JSON-able via
    :meth:`as_dict` / :meth:`from_dict` so clients can hold it across
    HTTP requests.
    """

    __slots__ = ("last_seen_seq",)

    def __init__(self, last_seen_seq: int = 0) -> None:
        self.last_seen_seq = int(last_seen_seq)

    def observe(self, seq: int) -> "SessionToken":
        self.last_seen_seq = max(self.last_seen_seq, int(seq))
        return self

    def as_dict(self) -> Dict[str, int]:
        return {"last_seen_seq": self.last_seen_seq}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SessionToken":
        return cls(int(data.get("last_seen_seq", 0)))

    def __repr__(self) -> str:
        return f"SessionToken(last_seen_seq={self.last_seen_seq})"


class ReplicaGroup:
    """One primary + N followers behind a single service-shaped front."""

    def __init__(
        self,
        primary,
        followers=(),
        *,
        name: Optional[str] = None,
        staleness_budget_seconds: float = 0.25,
        poll_interval_seconds: float = 0.002,
        **service_kwargs,
    ) -> None:
        if float(staleness_budget_seconds) < 0:
            raise ValidationError("staleness_budget_seconds must be >= 0")
        if not isinstance(primary, Primary):
            primary = Primary(primary)
        self.primary = primary
        self.name = str(name) if name else primary.name
        self.staleness_budget_seconds = float(staleness_budget_seconds)
        self.poll_interval_seconds = float(poll_interval_seconds)
        self._service_kwargs = dict(service_kwargs)
        self._primary_service = SearchService(
            primary.collection, name=self.name, **service_kwargs
        )
        self.followers: List[Follower] = []
        self._lock = Lock()
        self._round_robin = 0
        self.reads_primary = 0
        self.reads_follower = 0
        self.session_waits = 0
        self.session_redirects = 0
        self.writes = 0
        # Shared Tracer, injected by the hosting SearchServer (if any).
        self.tracer = None
        for follower in followers:
            self.add_follower(follower)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add_follower(self, follower: Follower) -> Follower:
        if not isinstance(follower, Follower):
            raise ValidationError(
                f"ReplicaGroup followers must be Follower instances, got "
                f"{type(follower).__name__}"
            )
        with self._lock:
            self.followers.append(follower)
        return follower

    # ------------------------------------------------------------------ #
    # SearchService-shaped delegation
    # ------------------------------------------------------------------ #
    @property
    def collection(self):
        """The *primary's* collection (what mutations and drains act on)."""
        return self.primary.collection

    @property
    def capabilities(self):
        return self._primary_service.capabilities

    @property
    def dim(self) -> Optional[int]:
        return self._primary_service.dim

    @property
    def batch_size(self) -> int:
        return self._primary_service.batch_size

    # ------------------------------------------------------------------ #
    # read dispatch
    # ------------------------------------------------------------------ #
    def _route_read(self, session: Optional[SessionToken]) -> SearchService:
        """The service answering this read: a fresh-enough follower or primary."""
        need = int(session.last_seen_seq) if session is not None else 0
        with self._lock:
            followers = list(self.followers)
            start = self._round_robin
            self._round_robin += 1
        if not followers:
            with self._lock:
                self.reads_primary += 1
            return self._primary_service
        order = [followers[(start + i) % len(followers)] for i in range(len(followers))]
        for follower in order:
            if follower.last_applied_seq >= need:
                with self._lock:
                    self.reads_follower += 1
                return follower.service()
        # Every follower is behind the session token: give the round-robin
        # choice up to the staleness budget to catch up, then redirect.
        chosen = order[0]
        deadline = time.monotonic() + self.staleness_budget_seconds
        with self._lock:
            self.session_waits += 1
        while True:
            try:
                chosen.sync()
            except Exception:
                # An unreachable/broken source must not hang reads; the
                # primary answers instead.
                break
            if chosen.last_applied_seq >= need:
                with self._lock:
                    self.reads_follower += 1
                return chosen.service()
            if time.monotonic() >= deadline:
                break
            time.sleep(self.poll_interval_seconds)
        with self._lock:
            self.session_redirects += 1
            self.reads_primary += 1
        return self._primary_service

    def search(
        self, query, request=None, *, session: Optional[SessionToken] = None, **overrides
    ):
        service = self._route_read(session)
        result = service.search(query, request, **overrides)
        if session is not None and service.collection is not None:
            session.observe(service.collection.last_seq)
        return result

    def search_batch(
        self,
        queries,
        request=None,
        *,
        session: Optional[SessionToken] = None,
        mode: str = "auto",
        ground_truth=None,
        **overrides,
    ):
        service = self._route_read(session)
        result = service.search_batch(
            queries, request, mode=mode, ground_truth=ground_truth, **overrides
        )
        if session is not None and service.collection is not None:
            session.observe(service.collection.last_seq)
        return result

    # ------------------------------------------------------------------ #
    # write dispatch (always the primary)
    # ------------------------------------------------------------------ #
    def add(self, vectors, attributes=None, *, session: Optional[SessionToken] = None):
        ids = self._primary_service.add(vectors, attributes=attributes)
        self._observe_write(session)
        return ids

    def remove(self, ids, *, session: Optional[SessionToken] = None) -> int:
        removed = self._primary_service.remove(ids)
        self._observe_write(session)
        return removed

    def extend_attributes(self, rows, *, session: Optional[SessionToken] = None) -> None:
        self._primary_service.extend_attributes(rows)
        self._observe_write(session)

    def _observe_write(self, session: Optional[SessionToken]) -> None:
        with self._lock:
            self.writes += 1
        if session is not None:
            session.observe(self.primary.last_seq)

    # ------------------------------------------------------------------ #
    # maintenance helpers
    # ------------------------------------------------------------------ #
    def sync_all(self, *, max_records: Optional[int] = None) -> int:
        """One sync on every follower; returns total records applied."""
        with self._lock:
            followers = list(self.followers)
        return sum(follower.sync(max_records=max_records) for follower in followers)

    def max_lag(self) -> int:
        with self._lock:
            followers = list(self.followers)
        return max((follower.lag for follower in followers), default=0)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            followers = list(self.followers)
            dispatch = {
                "reads_primary": self.reads_primary,
                "reads_follower": self.reads_follower,
                "session_waits": self.session_waits,
                "session_redirects": self.session_redirects,
                "writes": self.writes,
                "n_followers": len(followers),
            }
        stats = self._primary_service.stats()
        stats["role"] = "replica_group"
        stats["dispatch"] = dispatch
        stats["replication"] = {
            "primary": self.primary.stats(),
            "followers": [follower.stats() for follower in followers],
            "max_lag_seq": max((f.lag for f in followers), default=0),
        }
        if self.tracer is not None:
            stats["tracing"] = self.tracer.stats()
        return stats

    def service_config(self) -> Dict[str, Any]:
        return self._primary_service.service_config()

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup(name={self.name!r}, followers={len(self.followers)}, "
            f"last_seq={self.primary.last_seq})"
        )

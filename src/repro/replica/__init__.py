"""Replication: WAL shipping, read replicas, and promote-on-failure.

The storage layer (:mod:`repro.store`) gave every collection a
checksummed, sequence-numbered write-ahead log; the serving layer
(:mod:`repro.net`) put the stack behind a socket.  This package closes
the loop into a small replicated system:

* :class:`Primary` — tails a writable collection's WAL and streams
  acknowledged records (seq-ordered, CRC-verified) to pulling followers,
  with a snapshot :meth:`~Primary.bootstrap_bundle` for new or
  hopelessly lagging replicas;
* :class:`Follower` — applies the stream to a **read-only** collection
  through the same journal-then-apply discipline the primary used, so a
  follower directory recovers (and promotes) exactly like a primary
  directory at the same seq; :class:`ReplicationLoop` drives it on a
  daemon thread;
* :class:`HttpReplicationSource` — the same pull surface over the
  ``/replicate`` endpoint of :class:`repro.net.SearchServer`, for
  cross-process replicas;
* :class:`ReplicaGroup` + :class:`SessionToken` — replica-aware
  dispatch behind one service-shaped front: reads round-robin across
  followers (primary fallback), writes go to the primary, and a session
  token's ``last_seen_seq`` bounds staleness — a behind follower either
  catches up within the budget or the read redirects to the primary;
* failover — kill the primary, :meth:`Follower.promote` the freshest
  follower: its collection replays its own WAL to the last contiguous
  acknowledged seq and flips writable, losing nothing it acknowledged.

Example
-------
>>> from repro.replica import Primary, Follower, ReplicaGroup, SessionToken
>>> primary = Primary(collection)
>>> follower = Follower.bootstrap("/data/replica-1", primary)
>>> group = ReplicaGroup(primary, [follower])
>>> session = SessionToken()
>>> group.add(vectors, session=session)        # primary, journaled
>>> group.search(vectors[0], session=session)  # replica, never stale for us
"""

from .follower import Follower, ReplicationLoop
from .group import ReplicaGroup, SessionToken
from .primary import Primary
from .transport import HttpReplicationSource
from .wire import ShippedBatch, decode_wire_record, encode_wire_record

__all__ = [
    "Follower",
    "HttpReplicationSource",
    "Primary",
    "ReplicaGroup",
    "ReplicationLoop",
    "SessionToken",
    "ShippedBatch",
    "decode_wire_record",
    "encode_wire_record",
]

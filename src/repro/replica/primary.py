"""The primary side of replication: tail the WAL, ship acknowledged records.

A :class:`Primary` wraps a *writable* :class:`~repro.store.Collection`
and answers two pulls:

* :meth:`poll` — the incremental stream: every acknowledged WAL record
  after the follower's sequence number, in order, each frame CRC-wrapped
  by :mod:`~repro.replica.wire`.  The read happens under the
  collection's writer lock (via
  :meth:`~repro.store.Collection.wal_records_since`), so a batch is a
  consistent prefix of the log and a concurrent checkpoint can never
  swap the file mid-read.
* :meth:`bootstrap_bundle` — the snapshot path for brand-new followers,
  and for laggards whose requested history a checkpoint already folded
  away (``poll`` then raises
  :class:`~repro.utils.exceptions.BootstrapRequired` and the follower
  re-bootstraps).

The primary is passive — followers pull, in process or through the
``/replicate`` endpoint of :class:`repro.net.SearchServer`.  Pull keeps
the failure model simple: a dead or slow follower costs the primary
nothing, and restart/rewind logic lives entirely on the follower side.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from ..utils.exceptions import ValidationError
from .wire import ShippedBatch, encode_wire_record


class Primary:
    """Stream one collection's acknowledged writes to pulling followers."""

    def __init__(self, collection, *, name: Optional[str] = None) -> None:
        if getattr(collection, "read_only", False):
            raise ValidationError(
                f"collection {collection.name!r} is read-only; a replication "
                "primary needs the writable copy"
            )
        self.collection = collection
        self.name = str(name) if name else collection.name
        self.records_shipped = 0
        self.polls = 0
        self.bootstraps = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # the stream
    # ------------------------------------------------------------------ #
    @property
    def last_seq(self) -> int:
        return int(self.collection.last_seq)

    @property
    def wal_base_seq(self) -> int:
        return int(self.collection.wal_base_seq)

    @property
    def generation(self) -> int:
        return int(self.collection.generation)

    def poll(
        self, since_seq: int, *, max_records: Optional[int] = None
    ) -> ShippedBatch:
        """Acknowledged records after ``since_seq`` as a :class:`ShippedBatch`.

        Raises :class:`~repro.utils.exceptions.BootstrapRequired` when the
        live WAL no longer reaches back to ``since_seq`` and
        :class:`~repro.utils.exceptions.StorageError` when the caller is
        *ahead* of this primary (a diverged replica).
        """
        pairs, last_seq = self.collection.wal_records_since(
            since_seq, max_records=max_records
        )
        records = [encode_wire_record(record, arrays) for record, arrays in pairs]
        with self._lock:
            self.polls += 1
            self.records_shipped += len(records)
        return ShippedBatch(
            records=records,
            last_seq=last_seq,
            base_seq=self.wal_base_seq,
            generation=self.generation,
        )

    def bootstrap_bundle(self) -> Dict[str, Any]:
        """The current snapshot generation as a JSON-able bootstrap bundle."""
        bundle = self.collection.snapshot_bundle()
        with self._lock:
            self.bootstraps += 1
        return bundle

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counters = {
                "records_shipped": self.records_shipped,
                "polls": self.polls,
                "bootstraps": self.bootstraps,
            }
        return {
            "role": "primary",
            "name": self.name,
            "last_seq": self.last_seq,
            "wal_base_seq": self.wal_base_seq,
            "generation": self.generation,
            **counters,
        }

    def __repr__(self) -> str:
        return (
            f"Primary(name={self.name!r}, last_seq={self.last_seq}, "
            f"shipped={self.records_shipped})"
        )

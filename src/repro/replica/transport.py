"""Cross-process replication: pull a remote ``/replicate`` endpoint.

:class:`HttpReplicationSource` gives a :class:`~repro.replica.Follower`
the same two-method source surface an in-process
:class:`~repro.replica.Primary` provides — ``poll`` and
``bootstrap_bundle`` — backed by GETs against the ``/replicate``
endpoint a :class:`repro.net.SearchServer` exposes when constructed
with ``replication=Primary(...)``:

::

    GET /replicate?since_seq=N&max_records=M   → ShippedBatch.as_dict()
    GET /replicate?bootstrap=1                 → {"bundle": {...}}

The server signals snapshot-required with a typed 409
``bootstrap_required`` error, which this source re-raises as
:class:`~repro.utils.exceptions.BootstrapRequired` so the follower's
auto-resync path works identically in process and over the wire.
Transient 429/503 responses are retried by the underlying client when a
:class:`~repro.net.RetryPolicy` is configured; anything else
non-200 becomes a loud :class:`~repro.utils.exceptions.StorageError` —
replication must never silently skip a batch.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..net.client import request_json
from ..utils.exceptions import BootstrapRequired, StorageError
from .wire import ShippedBatch


class HttpReplicationSource:
    """Replication source reading a remote primary over HTTP."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        default_max_records: int = 512,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.default_max_records = int(default_max_records)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "HttpReplicationSource":
        from urllib.parse import urlsplit

        parts = urlsplit(url if "//" in url else f"//{url}")
        if not parts.hostname or not parts.port:
            raise StorageError(f"replication URL {url!r} needs host and port")
        return cls(parts.hostname, parts.port, **kwargs)

    # ------------------------------------------------------------------ #
    # the source surface
    # ------------------------------------------------------------------ #
    def poll(
        self, since_seq: int, *, max_records: Optional[int] = None
    ) -> ShippedBatch:
        limit = int(max_records) if max_records is not None else self.default_max_records
        status, parsed = request_json(
            f"{self.url}/replicate?since_seq={int(since_seq)}&max_records={limit}",
            timeout=self.timeout,
        )
        if status == 200:
            return ShippedBatch.from_dict(parsed)
        self._raise_for(status, parsed, "poll")
        raise AssertionError("unreachable")  # pragma: no cover

    def bootstrap_bundle(self) -> Dict[str, Any]:
        status, parsed = request_json(
            f"{self.url}/replicate?bootstrap=1", timeout=self.timeout
        )
        if status == 200:
            bundle = parsed.get("bundle") if isinstance(parsed, dict) else None
            if not isinstance(bundle, dict):
                raise StorageError(
                    f"{self.url}/replicate returned no bootstrap bundle"
                )
            return bundle
        self._raise_for(status, parsed, "bootstrap")
        raise AssertionError("unreachable")  # pragma: no cover

    def _raise_for(self, status: int, parsed: Any, what: str) -> None:
        error = parsed.get("error", {}) if isinstance(parsed, dict) else {}
        code = error.get("code", "")
        message = error.get("message", parsed)
        if code == "bootstrap_required":
            raise BootstrapRequired(str(message))
        raise StorageError(
            f"replication {what} against {self.url} failed: "
            f"HTTP {status} {code or '<no code>'}: {message}"
        )

    def __repr__(self) -> str:
        return f"HttpReplicationSource({self.url!r})"

"""Exception hierarchy for the neural-partitioner reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Specific subclasses signal configuration problems,
shape/validation failures, and attempts to use an index before it is built.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class ValidationError(ReproError):
    """An input array has the wrong shape, dtype, or contains invalid values."""


class NotFittedError(ReproError):
    """An index, model, or clusterer was queried before being built/trained."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class SerializationError(ReproError):
    """A model or index could not be saved or restored."""


class StorageError(ReproError):
    """A durable collection, its write-ahead log, or a snapshot is unusable.

    Raised by :mod:`repro.store` when the on-disk state cannot be trusted:
    checksum failures *inside* the log (a torn final record is tolerated,
    mid-log corruption is not), replay divergence, or mutations attempted
    after a failed write left memory ahead of the durable log.
    """


class ReadOnlyError(StorageError):
    """A local mutation was attempted on a read-only collection.

    Replica followers open their collections read-only: the only writer
    is the replication stream (``Collection.apply_replicated``), so local
    ``add``/``remove``/``set_attributes`` calls are refused with this
    typed error until :meth:`Collection.promote` flips the collection
    writable during failover.
    """


class BootstrapRequired(StorageError):
    """A replica asked for WAL records the primary has already folded away.

    The primary's live WAL starts after the requested sequence number
    (a checkpoint truncated the log), so incremental shipping cannot
    continue — the follower must re-bootstrap from a snapshot bundle.
    """


class QuotaExceededError(ReproError):
    """A tenant exceeded one of its declared quotas.

    ``resource`` names the exhausted quota (``"qps"``, ``"write_ops"``,
    ``"vectors"``, ``"queue"``); ``retry_after_seconds`` is the
    refill-derived wait after which the operation can succeed (``None``
    for hard quotas like vector counts, where waiting does not help).
    The serving layer maps this to a typed 429 ``quota_exceeded`` —
    deliberately distinct from admission control's ``overloaded`` shed,
    so an operator can tell "this tenant is over its budget" from "the
    server is saturated".
    """

    def __init__(
        self,
        message: str,
        *,
        resource: str = "qps",
        retry_after_seconds=None,
    ) -> None:
        super().__init__(message)
        self.resource = str(resource)
        self.retry_after_seconds = (
            None if retry_after_seconds is None else float(retry_after_seconds)
        )


class UnknownTenantError(ConfigurationError):
    """A request named a tenant the registry does not know.

    Mapped to a typed 404 ``unknown_tenant`` on the wire — distinct from
    ``unknown_service``, because the fix is different (provision the
    tenant vs. deploy the service).
    """

"""Shared utilities: exceptions, RNG handling, distance kernels, timing."""

from .exceptions import (
    ConfigurationError,
    DatasetError,
    NotFittedError,
    ReproError,
    SerializationError,
    ValidationError,
)
from .rng import SeedLike, resolve_rng, spawn_rngs
from .distances import (
    cosine_distance,
    euclidean,
    get_metric,
    inner_product,
    pairwise_topk,
    squared_euclidean,
)
from .timing import Stopwatch, TimerResult, timed
from .validation import (
    as_float_matrix,
    as_query_matrix,
    check_fraction,
    check_labels,
    check_positive_int,
)

__all__ = [
    "ConfigurationError",
    "DatasetError",
    "NotFittedError",
    "ReproError",
    "SerializationError",
    "ValidationError",
    "SeedLike",
    "resolve_rng",
    "spawn_rngs",
    "cosine_distance",
    "euclidean",
    "get_metric",
    "inner_product",
    "pairwise_topk",
    "squared_euclidean",
    "Stopwatch",
    "TimerResult",
    "timed",
    "as_float_matrix",
    "as_query_matrix",
    "check_fraction",
    "check_labels",
    "check_positive_int",
]

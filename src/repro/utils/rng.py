"""Random number handling.

Every stochastic component in the library accepts a ``seed`` argument and
resolves it through :func:`resolve_rng`, so experiments are reproducible
end to end while still allowing callers to pass an existing
:class:`numpy.random.Generator` when they want to share a stream.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

_DEFAULT_SEED = 0x5EED


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use the library default seed, deterministic), an integer
        seed, or an already constructed generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Used by ensembles and hierarchical partitioners so that each member
    trains on an independent but reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = resolve_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

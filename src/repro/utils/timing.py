"""Lightweight wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class TimerResult:
    """Result of a single timed section."""

    name: str
    seconds: float

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3


@dataclass
class Stopwatch:
    """Accumulates named timing sections.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.section("train"):
    ...     pass
    >>> "train" in sw.totals()
    True
    """

    _records: List[TimerResult] = field(default_factory=list)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self._records.append(TimerResult(name, time.perf_counter() - start))

    def totals(self) -> Dict[str, float]:
        """Total seconds per section name."""
        totals: Dict[str, float] = {}
        for record in self._records:
            totals[record.name] = totals.get(record.name, 0.0) + record.seconds
        return totals

    def records(self) -> List[TimerResult]:
        return list(self._records)


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager that appends the elapsed seconds to the yielded list."""
    result: List[float] = []
    start = time.perf_counter()
    try:
        yield result
    finally:
        result.append(time.perf_counter() - start)

"""Distance kernels used throughout the library.

All ANN components in the paper use Euclidean distance; the sketching
back-ends additionally use inner-product scores.  The kernels here are
vectorised and blocked so that pairwise computations on tens of thousands
of points stay within a modest memory budget.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

import numpy as np

#: Default number of rows per block for blocked pairwise computations.
DEFAULT_BLOCK_SIZE = 1024


def squared_euclidean(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between rows of ``x`` and ``y``.

    Uses the ``|x|^2 - 2 x.y + |y|^2`` expansion; the result is clipped at
    zero to guard against negative values from floating point cancellation.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    x_norm = np.einsum("ij,ij->i", x, x)[:, None]
    y_norm = np.einsum("ij,ij->i", y, y)[None, :]
    dist = x_norm + y_norm - 2.0 * (x @ y.T)
    np.maximum(dist, 0.0, out=dist)
    return dist


def euclidean(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between rows of ``x`` and ``y``."""
    return np.sqrt(squared_euclidean(x, y))


def inner_product(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise inner products (similarities, larger is closer)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    return x @ y.T


def cosine_distance(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Pairwise cosine distances (1 - cosine similarity)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.atleast_2d(np.asarray(y, dtype=np.float64))
    x_norm = np.linalg.norm(x, axis=1, keepdims=True)
    y_norm = np.linalg.norm(y, axis=1, keepdims=True)
    x_norm = np.where(x_norm == 0.0, 1.0, x_norm)
    y_norm = np.where(y_norm == 0.0, 1.0, y_norm)
    sim = (x / x_norm) @ (y / y_norm).T
    return 1.0 - sim


_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "euclidean": euclidean,
    "sqeuclidean": squared_euclidean,
    "cosine": cosine_distance,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a pairwise distance function by name.

    Supported names: ``euclidean``, ``sqeuclidean``, ``cosine``.
    """
    try:
        return _METRICS[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; expected one of {sorted(_METRICS)}"
        ) from None


def iter_blocks(n: int, block_size: int = DEFAULT_BLOCK_SIZE) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` row ranges covering ``range(n)`` in blocks."""
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    for start in range(0, n, block_size):
        yield start, min(start + block_size, n)


def pairwise_topk(
    queries: np.ndarray,
    points: np.ndarray,
    k: int,
    *,
    metric: str = "euclidean",
    block_size: int = DEFAULT_BLOCK_SIZE,
    exclude_self: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-``k`` nearest rows of ``points`` for each row of ``queries``.

    Parameters
    ----------
    queries, points:
        2-D arrays with matching dimensionality.
    k:
        Number of neighbours to return (clipped to the number of points).
    metric:
        One of ``euclidean``, ``sqeuclidean``, ``cosine``.
    block_size:
        Queries are processed in blocks of this many rows to bound memory.
    exclude_self:
        When ``queries is points`` (building a k'-NN matrix), set this to
        exclude each point from its own neighbour list by masking the
        diagonal of each block.

    Returns
    -------
    (indices, distances):
        Both of shape ``(len(queries), k)``, sorted by increasing distance.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n_points = points.shape[0]
    k = int(min(k, n_points - (1 if exclude_self else 0)))
    if k <= 0:
        raise ValueError("k must be positive after clipping to dataset size")
    dist_fn = get_metric(metric)

    all_idx = np.empty((queries.shape[0], k), dtype=np.int64)
    all_dist = np.empty((queries.shape[0], k), dtype=np.float64)
    for start, stop in iter_blocks(queries.shape[0], block_size):
        block = dist_fn(queries[start:stop], points)
        if exclude_self:
            rows = np.arange(start, stop)
            cols = rows[rows < n_points]
            block[np.arange(cols.shape[0]), cols] = np.inf
        # argpartition then sort only the k candidates per row.
        part = np.argpartition(block, kth=k - 1, axis=1)[:, :k]
        part_dist = np.take_along_axis(block, part, axis=1)
        order = np.argsort(part_dist, axis=1, kind="stable")
        all_idx[start:stop] = np.take_along_axis(part, order, axis=1)
        all_dist[start:stop] = np.take_along_axis(part_dist, order, axis=1)
    return all_idx, all_dist

"""Input validation helpers shared across the library."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .exceptions import ValidationError


def as_float_matrix(points, name: str = "points") -> np.ndarray:
    """Coerce ``points`` to a contiguous 2-D float64 array.

    Raises
    ------
    ValidationError
        If the input is not 2-dimensional, is empty, or contains NaN/Inf.
    """
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.isfinite(arr).all():
        raise ValidationError(f"{name} contains NaN or Inf values")
    return arr


def as_query_matrix(queries, dim: int, name: str = "queries") -> np.ndarray:
    """Coerce queries to 2-D float64 and check dimensionality against ``dim``."""
    arr = as_float_matrix(queries, name=name)
    if arr.shape[1] != dim:
        raise ValidationError(
            f"{name} has dimension {arr.shape[1]}, expected {dim}"
        )
    return arr


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    ivalue = int(value)
    if ivalue <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value}")
    return ivalue


def check_fraction(value: float, name: str, *, inclusive_low: bool = False) -> float:
    """Validate that ``value`` lies in (0, 1] (or [0, 1] if ``inclusive_low``)."""
    fvalue = float(value)
    low_ok = fvalue >= 0.0 if inclusive_low else fvalue > 0.0
    if not (low_ok and fvalue <= 1.0):
        raise ValidationError(f"{name} must lie in (0, 1], got {value}")
    return fvalue


def check_labels(labels, n_points: Optional[int] = None, name: str = "labels") -> np.ndarray:
    """Coerce cluster/bin labels to a 1-D int64 array (and check length)."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got ndim={arr.ndim}")
    if n_points is not None and arr.shape[0] != n_points:
        raise ValidationError(
            f"{name} has length {arr.shape[0]}, expected {n_points}"
        )
    return arr.astype(np.int64)

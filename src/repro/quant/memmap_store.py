"""Memory-mapped full-precision vector storage for the re-rank stage.

A :class:`VectorStore` is a directory holding one row-major ``.npy``
file plus a JSON header describing it::

    path/
      store.json    -- format name/version, dtype, shape
      vectors.npy   -- the (n, dim) matrix, row-major

Opening a store memory-maps the ``.npy`` file read-only, so fetching the
rows of a candidate list is O(1) in resident memory: only the pages
backing the requested rows are faulted in.  That is what lets a
quantized index serve a collection whose full-precision footprint
exceeds RAM — the scan touches codes, and the exact re-rank touches just
``rerank`` rows per query through the mapping.

The header is deliberately redundant with the ``.npy`` header: the two
are cross-checked at open time, so a swapped or hand-edited artifact
fails with a typed :class:`~repro.utils.exceptions.SerializationError`
instead of silently re-ranking against the wrong matrix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Tuple

import numpy as np

from ..utils.exceptions import SerializationError

STORE_FORMAT = "repro-vector-store"
STORE_FORMAT_VERSION = 1
HEADER_FILE = "store.json"
VECTORS_FILE = "vectors.npy"


class VectorStore:
    """Read-only memmapped view over a saved row-major vector matrix."""

    def __init__(self, path: Path, vectors: np.ndarray) -> None:
        self.path = Path(path)
        self._vectors = vectors

    # ------------------------------------------------------------------ #
    # creation / opening
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, path, vectors: np.ndarray) -> "VectorStore":
        """Write ``vectors`` to the directory ``path`` and open the result.

        The ``.npy`` file and the header are each written to a temporary
        name and renamed into place, so re-saving over an existing store
        (including one this process currently has mapped) never exposes
        a half-written file; the old mapping keeps reading the replaced
        inode until it is closed.
        """
        vectors = np.ascontiguousarray(vectors)
        if vectors.ndim != 2:
            raise SerializationError(
                f"vector stores hold 2-D matrices, got ndim={vectors.ndim}"
            )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        header = {
            "format": STORE_FORMAT,
            "format_version": STORE_FORMAT_VERSION,
            "dtype": str(vectors.dtype),
            "shape": [int(vectors.shape[0]), int(vectors.shape[1])],
        }
        tmp_vectors = root / (VECTORS_FILE + ".tmp")
        tmp_header = root / (HEADER_FILE + ".tmp")
        try:
            with open(tmp_vectors, "wb") as handle:
                np.save(handle, vectors)
            tmp_header.write_text(json.dumps(header, indent=2, sort_keys=True))
            os.replace(tmp_vectors, root / VECTORS_FILE)
            os.replace(tmp_header, root / HEADER_FILE)
        except OSError as exc:
            raise SerializationError(
                f"could not write vector store at {root}: {exc}"
            ) from exc
        finally:
            tmp_vectors.unlink(missing_ok=True)
            tmp_header.unlink(missing_ok=True)
        return cls.open(root)

    @classmethod
    def open(cls, path) -> "VectorStore":
        """Memory-map the store at ``path`` (read-only).

        Raises :class:`SerializationError` when the header is missing or
        unreadable, the ``.npy`` file is missing or truncated, or the two
        headers disagree about dtype/shape.
        """
        root = Path(path)
        header_file = root / HEADER_FILE
        if not header_file.is_file():
            raise SerializationError(
                f"{root} is not a vector store (missing {HEADER_FILE})"
            )
        try:
            header = json.loads(header_file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise SerializationError(f"could not read {header_file}: {exc}") from exc
        if header.get("format") != STORE_FORMAT:
            raise SerializationError(f"{header_file} is not a {STORE_FORMAT} header")
        if int(header.get("format_version", 0)) > STORE_FORMAT_VERSION:
            raise SerializationError(
                f"{header_file} uses format version "
                f"{header.get('format_version')}, supported up to "
                f"{STORE_FORMAT_VERSION}"
            )
        vectors_file = root / VECTORS_FILE
        if not vectors_file.is_file():
            raise SerializationError(
                f"{root} is missing {VECTORS_FILE}; the store is incomplete"
            )
        try:
            vectors = np.load(vectors_file, mmap_mode="r")
        except (OSError, ValueError, EOFError) as exc:
            # A truncated .npy surfaces as a failed header parse or a
            # short mmap depending on where the file was cut; either way
            # the matrix cannot be trusted.
            raise SerializationError(
                f"could not map {vectors_file} (truncated or corrupt): {exc}"
            ) from exc
        expected_shape = tuple(int(value) for value in header.get("shape", ()))
        expected_dtype = str(header.get("dtype", ""))
        if vectors.ndim != 2 or vectors.shape != expected_shape:
            raise SerializationError(
                f"vector store header at {root} declares shape "
                f"{expected_shape} but {VECTORS_FILE} holds {vectors.shape}; "
                "the header and the data do not belong together"
            )
        if str(vectors.dtype) != expected_dtype:
            raise SerializationError(
                f"vector store header at {root} declares dtype "
                f"{expected_dtype!r} but {VECTORS_FILE} holds {vectors.dtype}"
            )
        return cls(root, vectors)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def vectors(self) -> np.ndarray:
        """The full matrix as a read-only memmap (fancy-index to fetch rows)."""
        return self._vectors

    @property
    def shape(self) -> Tuple[int, int]:
        return (int(self._vectors.shape[0]), int(self._vectors.shape[1]))

    @property
    def n_rows(self) -> int:
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        return int(self._vectors.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._vectors.dtype

    @property
    def file_bytes(self) -> int:
        """On-disk (mapped, not resident) size of the vector file."""
        try:
            return int(os.path.getsize(self.path / VECTORS_FILE))
        except OSError:
            return 0

    def rows(self, ids) -> np.ndarray:
        """Materialise the requested rows (touches only their pages)."""
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        return np.asarray(self._vectors[ids])

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return (
            f"VectorStore(path={str(self.path)!r}, shape={self.shape}, "
            f"dtype={self._vectors.dtype})"
        )

"""Quantized serving path: code-scanning backends with exact re-rank.

Public surface:

* :class:`Sq8Index` (registry: ``sq8`` / ``sharded-sq8``) — per-dimension
  affine int8 scalar quantization, blocked SGEMM scan;
* :class:`PqAdcIndex` (registry: ``pq-adc``) — product-quantized codes
  scored by per-query LUT gather+sum (asymmetric distance computation);
* :class:`VectorStore` — memmapped full-precision row store backing the
  exact re-rank stage of loaded indexes;
* :class:`QuantizedIndexBase` — the shared two-stage
  (scan → over-fetch → re-rank) machinery.
"""

from .adc import PqAdcIndex
from .base import QuantizedIndexBase
from .memmap_store import VectorStore
from .sq8 import Sq8Codec, Sq8Index

__all__ = [
    "PqAdcIndex",
    "QuantizedIndexBase",
    "Sq8Codec",
    "Sq8Index",
    "VectorStore",
]

"""PQ ADC scan: per-query lookup tables over packed uint8 code columns.

The asymmetric-distance kernel behind ``pq-adc``: a
:class:`~repro.ann.ProductQuantizer` encodes each row as
``n_subspaces`` one-byte codeword ids, and a query's approximate
distance to every row is a **gather + sum** —

* :meth:`~repro.ann.ProductQuantizer.distance_tables` builds one
  ``(n_subspaces, n_codewords)`` LUT per query (squared distance of the
  query's sub-vector to every codeword);
* the scan accumulates ``lut[s][codes[:, s]]`` across subspaces into a
  ``(queries, rows)`` score matrix — pure vectorised indexing into
  ``float32`` tables, never touching a raw vector.

Code columns are stored transposed (``(n_subspaces, n)``, each row
contiguous) so every gather streams sequentially.  A row costs
``n_subspaces`` bytes — for the default 128-dim/16-subspace layout,
64x smaller than the float64 matrix the brute-force scan reads.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..ann.pq import ProductQuantizer
from ..utils.exceptions import ConfigurationError
from ..utils.rng import SeedLike
from ..utils.validation import check_positive_int
from .base import QuantizedIndexBase


@register_index(
    "pq-adc",
    capabilities=IndexCapabilities(
        metrics=("euclidean", "sqeuclidean", "cosine"),
        probe_parameter="rerank",
        trainable=True,
        exact=False,
        shardable=True,
        filterable=True,
        quantized=True,
        rerank=True,
    ),
    description="Product-quantized ADC scan (LUT gather+sum) with exact re-rank",
)
class PqAdcIndex(QuantizedIndexBase):
    """Two-stage index over product-quantized codes with ADC scoring.

    Parameters
    ----------
    n_subspaces:
        Contiguous sub-vectors per row (must divide the dimensionality);
        one byte of code per subspace.
    n_codewords:
        Codebook size per subspace, at most 256 (codes are uint8).
    kmeans_iterations, seed:
        Codebook training knobs, forwarded to the
        :class:`~repro.ann.ProductQuantizer`.
    metric, rerank_factor, query_block:
        See :class:`~repro.quant.QuantizedIndexBase`.
    """

    def __init__(
        self,
        n_subspaces: int = 8,
        n_codewords: int = 256,
        *,
        kmeans_iterations: int = 25,
        seed: SeedLike = None,
        metric: str = "euclidean",
        rerank_factor: int = 4,
        query_block: int = 16,
    ) -> None:
        super().__init__(
            metric=metric, rerank_factor=rerank_factor, query_block=query_block
        )
        self.n_subspaces = check_positive_int(n_subspaces, "n_subspaces")
        self.n_codewords = check_positive_int(n_codewords, "n_codewords")
        if self.n_codewords > 256:
            raise ConfigurationError(
                f"pq-adc packs one byte per subspace; n_codewords must be "
                f"<= 256, got {self.n_codewords}"
            )
        self.kmeans_iterations = check_positive_int(
            kmeans_iterations, "kmeans_iterations"
        )
        self.seed = seed
        self._pq: Optional[ProductQuantizer] = None
        self._codes_t: Optional[np.ndarray] = None  # (n_subspaces, n) uint8

    # ------------------------------------------------------------------ #
    # codec hooks
    # ------------------------------------------------------------------ #
    def _fit_codec(self, encoded_base: np.ndarray) -> None:
        self._pq = ProductQuantizer(
            self.n_subspaces,
            self.n_codewords,
            kmeans_iterations=self.kmeans_iterations,
            seed=self.seed,
        ).fit(encoded_base)
        codes = self._pq.encode(encoded_base)
        self._codes_t = np.ascontiguousarray(codes.T.astype(np.uint8))

    def _scores(self, queries: np.ndarray) -> np.ndarray:
        """ADC scores: gather each query's LUT along every code column."""
        tables = self._pq.distance_tables(queries).astype(np.float32)
        n = self._codes_t.shape[1]
        scores = np.zeros((queries.shape[0], n), dtype=np.float32)
        gathered = np.empty((queries.shape[0], n), dtype=np.float32)
        for subspace in range(self.n_subspaces):
            np.take(
                tables[:, subspace, :],
                self._codes_t[subspace],
                axis=1,
                out=gathered,
            )
            scores += gathered
        return scores

    # ------------------------------------------------------------------ #
    # persistence / introspection
    # ------------------------------------------------------------------ #
    def _codec_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        config = {
            "n_subspaces": int(self.n_subspaces),
            "n_codewords": int(self.n_codewords),
            "kmeans_iterations": int(self.kmeans_iterations),
        }
        arrays = {
            "codes_t": self._codes_t,
            "codebooks": self._pq.codebooks,
        }
        return config, arrays

    def _restore_codec(
        self, config: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> None:
        self.n_subspaces = int(config["n_subspaces"])
        self.n_codewords = int(config["n_codewords"])
        self.kmeans_iterations = int(config.get("kmeans_iterations", 25))
        codes_t = np.asarray(arrays["codes_t"], dtype=np.uint8)
        self._validate_codes_shape(codes_t.T)
        self._codes_t = np.ascontiguousarray(codes_t)
        codebooks = np.asarray(arrays["codebooks"], dtype=np.float64)
        pq = ProductQuantizer(
            self.n_subspaces,
            self.n_codewords,
            kmeans_iterations=self.kmeans_iterations,
            seed=None,
        )
        pq.codebooks = codebooks
        pq._sub_dim = int(codebooks.shape[2])
        self._pq = pq

    def _codec_resident_bytes(self) -> int:
        if self._pq is not None and self._pq.codebooks is not None:
            return int(self._pq.codebooks.nbytes)
        return 0

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        if self.is_built and self._codes_t is not None:
            stats["code_bytes"] = int(self._codes_t.nbytes)
            stats["n_subspaces"] = int(self.n_subspaces)
            stats["n_codewords"] = int(self.n_codewords)
        return stats

"""Int8 scalar quantization: per-dimension affine codes, blocked scan.

Each dimension ``d`` gets its own affine grid ``value = code * scale_d +
offset_d`` with 256 levels spanning the base's observed range, so a row
costs one byte per dimension — 8x smaller than the float64 matrices the
brute-force scan streams, 4x smaller than float32.

The scan scores a query ``q`` against every decoded row ``x̂`` through
the expansion::

    ||q - x̂||² = ||q||² - 2 q·x̂ + ||x̂||²
    q·x̂        = (q * scale) · codes + q · offset

``||x̂||²`` is precomputed per row at build time and ``||q||²`` is
constant per query (dropped — it never changes the ranking), so the hot
loop is one SGEMM of the scaled queries against ``float32``-promoted
code blocks.  Blocks are sized to stay cache-resident: the scan streams
``n * dim`` *bytes* of codes, not ``8 n * dim`` of float64.

NumPy ships no integer GEMM, so the serving kernel accumulates in
float32; :meth:`Sq8Index.int32_dot` is the pure-integer reference — the
same cross term accumulated in ``int32`` on the code grid — that the
test-suite pins the kernel against.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..utils.distances import iter_blocks
from ..utils.validation import as_query_matrix, check_positive_int
from .base import QuantizedIndexBase

#: base rows per scan block — 512 rows x 128 dims x 4 B = 256 KiB, sized
#: so the float32-promoted block stays in L2 while SGEMM runs over it
DEFAULT_ROW_BLOCK = 512


class Sq8Codec:
    """Per-dimension affine uint8 codec (fit / encode / decode)."""

    def __init__(self) -> None:
        self.scale: np.ndarray | None = None
        self.offset: np.ndarray | None = None

    def fit(self, points: np.ndarray) -> "Sq8Codec":
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        scale = (hi - lo) / 255.0
        # Constant dimensions quantize to code 0 exactly; any positive
        # scale works, 1.0 keeps decode finite.
        self.scale = np.where(scale == 0.0, 1.0, scale)
        self.offset = lo
        return self

    def encode(self, points: np.ndarray) -> np.ndarray:
        codes = np.rint((points - self.offset) / self.scale)
        return np.clip(codes, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float64) * self.scale + self.offset


@register_index(
    "sq8",
    capabilities=IndexCapabilities(
        metrics=("euclidean", "sqeuclidean", "cosine"),
        probe_parameter="rerank",
        exact=False,
        shardable=True,
        filterable=True,
        quantized=True,
        rerank=True,
    ),
    description="Scalar-quantized int8 scan (per-dim affine) with exact re-rank",
)
class Sq8Index(QuantizedIndexBase):
    """Two-stage index over per-dimension affine uint8 codes.

    Parameters
    ----------
    metric:
        ``euclidean`` / ``sqeuclidean`` / ``cosine``.  Cosine quantizes
        the L2-normalised base (ranking-equivalent to cosine) and
        re-ranks with the true cosine metric.
    rerank_factor:
        Default over-fetch: stage 1 keeps ``rerank_factor * k``
        candidates per query (override per call with ``rerank=``).
    row_block:
        Base rows promoted to float32 per SGEMM block.
    """

    def __init__(
        self,
        *,
        metric: str = "euclidean",
        rerank_factor: int = 4,
        row_block: int = DEFAULT_ROW_BLOCK,
        query_block: int = 32,
    ) -> None:
        super().__init__(
            metric=metric, rerank_factor=rerank_factor, query_block=query_block
        )
        self.row_block = check_positive_int(row_block, "row_block")
        self._codes: np.ndarray | None = None
        self._code_norms: np.ndarray | None = None
        self._codec = Sq8Codec()

    # ------------------------------------------------------------------ #
    # codec hooks
    # ------------------------------------------------------------------ #
    def _fit_codec(self, encoded_base: np.ndarray) -> None:
        self._codec.fit(encoded_base)
        self._codes = self._codec.encode(encoded_base)
        # ||x̂||² per row, computed blocked so fit never materialises the
        # full decoded matrix.
        norms = np.empty(self._codes.shape[0], dtype=np.float32)
        for start, stop in iter_blocks(self._codes.shape[0], self.row_block):
            decoded = self._decode_block_f32(start, stop)
            norms[start:stop] = np.einsum("ij,ij->i", decoded, decoded)
        self._code_norms = norms

    def _decode_block_f32(self, start: int, stop: int) -> np.ndarray:
        block = self._codes[start:stop].astype(np.float32)
        block *= self._codec.scale.astype(np.float32)
        block += self._codec.offset.astype(np.float32)
        return block

    def _scores(self, queries: np.ndarray) -> np.ndarray:
        """Approximate squared distances (up to a per-query constant)."""
        scaled = (queries * self._codec.scale).astype(np.float32)
        bias = (queries @ self._codec.offset).astype(np.float32)
        n = self._codes.shape[0]
        dots = np.empty((queries.shape[0], n), dtype=np.float32)
        for start, stop in iter_blocks(n, self.row_block):
            block = self._codes[start:stop].astype(np.float32)
            dots[:, start:stop] = scaled @ block.T
        # ||x̂||² - 2 q·x̂ ; the dropped ||q||² is constant per query row.
        dots += bias[:, None]
        dots *= -2.0
        dots += self._code_norms[None, :]
        return dots

    # ------------------------------------------------------------------ #
    # integer reference kernel
    # ------------------------------------------------------------------ #
    def quantize_queries(self, queries: np.ndarray) -> np.ndarray:
        """Quantize queries onto the codec's own uint8 grid."""
        self._require_built()
        queries = as_query_matrix(np.atleast_2d(queries), self.dim)
        return self._codec.encode(self._encode_queries(queries))

    def int32_dot(self, query: np.ndarray) -> np.ndarray:
        """Cross term ``q8 · codes`` accumulated in int32 on the code grid.

        The pure-integer reference for the float32 SGEMM kernel: both
        operands are uint8 (≤ 255), so every partial product fits int32
        and the per-row sum stays exact for any dim ≤ 2^31 / 255² ≈ 33k.
        Exposed for tests and kernel validation, not the serving path —
        NumPy has no integer GEMM, so this accumulates via einsum.
        """
        q8 = self.quantize_queries(query)[0].astype(np.int32)
        n = self._codes.shape[0]
        out = np.empty(n, dtype=np.int32)
        for start, stop in iter_blocks(n, self.row_block):
            block = self._codes[start:stop].astype(np.int32)
            np.einsum("nd,d->n", block, q8, out=out[start:stop])
        return out

    # ------------------------------------------------------------------ #
    # persistence / introspection
    # ------------------------------------------------------------------ #
    def _codec_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        config = {"row_block": int(self.row_block)}
        arrays = {
            "codes": self._codes,
            "scale": self._codec.scale,
            "offset": self._codec.offset,
            "code_norms": self._code_norms,
        }
        return config, arrays

    def _restore_codec(
        self, config: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> None:
        self.row_block = int(config.get("row_block", DEFAULT_ROW_BLOCK))
        codes = np.asarray(arrays["codes"], dtype=np.uint8)
        self._validate_codes_shape(codes)
        self._codes = codes
        self._codec.scale = np.asarray(arrays["scale"], dtype=np.float64)
        self._codec.offset = np.asarray(arrays["offset"], dtype=np.float64)
        self._code_norms = np.asarray(arrays["code_norms"], dtype=np.float32)

    def _codec_resident_bytes(self) -> int:
        total = 0
        for array in (self._codec.scale, self._codec.offset):
            if isinstance(array, np.ndarray):
                total += int(array.nbytes)
        return total

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        if self.is_built and self._codes is not None:
            stats["code_bytes"] = int(self._codes.nbytes)
        return stats

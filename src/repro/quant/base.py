"""Shared two-stage (quantized scan → exact re-rank) index machinery.

Every quantized backend follows the same online shape:

1. **scan** — score *all* rows against each query using only the
   compressed codes (subclass hook :meth:`_scores`); the raw vectors are
   never touched;
2. **over-fetch** — keep the best ``rerank`` candidates per query
   (default ``rerank_factor * k``, the recall/cost knob surfaced as the
   registry's ``probe_parameter``);
3. **re-rank** — compute exact distances for just those candidates
   against the stored full-precision vectors and return the top ``k``.

The re-rank source is either the resident ``float32`` copy kept from
``build`` or, after ``save``/``load``, a read-only memmap over the saved
:class:`~repro.quant.VectorStore` — fetching ``rerank`` rows per query
faults in only their pages, so a loaded index serves collections whose
full-precision footprint exceeds resident memory.

Filtering is **inline over code rows**: a resolved boolean mask sets the
scores of disallowed rows to ``+inf`` before candidate selection, so
they can never reach the re-rank; when the surviving subset fits inside
the re-rank budget entirely, the scan is skipped and the subset is
re-ranked exactly — brute-force-over-subset by construction.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from ..api.protocol import RegisteredIndex
from ..core.base import rerank_candidates
from ..obs.trace import span
from ..utils.distances import iter_blocks
from ..utils.exceptions import (
    ConfigurationError,
    NotFittedError,
    SerializationError,
    ValidationError,
)
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int
from .memmap_store import VectorStore

#: sub-directory (next to ``index.json``) holding the re-rank vectors
VECTORS_DIR = "vectors"

#: queries per scan block (bounds the (block, n) score matrix)
DEFAULT_QUERY_BLOCK = 32


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """L2-normalise rows (zero rows pass through unscaled)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / np.where(norms == 0.0, 1.0, norms)


class QuantizedIndexBase(RegisteredIndex):
    """Base class for code-scanning backends with an exact re-rank stage.

    Subclasses implement four hooks:

    * :meth:`_fit_codec` — train the codec and encode the (metric-adjusted)
      base matrix into compressed codes;
    * :meth:`_scores` — approximate scores of every row for a query
      block, monotone in distance (smaller = closer), computed from the
      codes alone;
    * :meth:`_codec_state` / :meth:`_restore_codec` — persistence of the
      codec arrays (the re-rank vectors are handled here, through the
      :class:`VectorStore`).
    """

    def __init__(
        self,
        *,
        metric: str = "euclidean",
        rerank_factor: int = 4,
        query_block: int = DEFAULT_QUERY_BLOCK,
    ) -> None:
        if metric not in type(self).capabilities.metrics:
            raise ConfigurationError(
                f"{type(self).__name__} does not support metric {metric!r} "
                f"(supported: {type(self).capabilities.metrics})"
            )
        self.metric = str(metric)
        self.rerank_factor = check_positive_int(rerank_factor, "rerank_factor")
        self.query_block = check_positive_int(query_block, "query_block")
        self._vectors: Optional[np.ndarray] = None
        self._store: Optional[VectorStore] = None
        self._dim: Optional[int] = None
        self._n_points: Optional[int] = None

    # ------------------------------------------------------------------ #
    # subclass hooks
    # ------------------------------------------------------------------ #
    def _fit_codec(self, encoded_base: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    def _scores(self, queries: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _codec_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        raise NotImplementedError  # pragma: no cover

    def _restore_codec(
        self, config: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> None:
        raise NotImplementedError  # pragma: no cover

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "QuantizedIndexBase":
        """Encode ``base`` into codes and keep a ``float32`` re-rank copy."""
        base = as_float_matrix(base, name="base")
        self._dim = int(base.shape[1])
        self._n_points = int(base.shape[0])
        # float32 is the stored precision: the memmapped VectorStore holds
        # exactly these values, so resident and loaded indexes re-rank
        # bitwise-identically.
        self._vectors = np.ascontiguousarray(base, dtype=np.float32)
        self._store = None
        self._fit_codec(self._encode_input(base))
        return self

    def _encode_input(self, base: np.ndarray) -> np.ndarray:
        """The matrix the codec trains on: normalised rows under cosine.

        Euclidean distance on L2-normalised vectors ranks exactly like
        cosine distance, so the cosine scan quantizes the normalised base
        and the exact re-rank applies the true cosine metric to the raw
        stored vectors.
        """
        if self.metric == "cosine":
            return _normalize_rows(base)
        return base

    def _encode_queries(self, queries: np.ndarray) -> np.ndarray:
        if self.metric == "cosine":
            return _normalize_rows(queries)
        return queries

    # ------------------------------------------------------------------ #
    # protocol properties
    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        return self._n_points is not None

    def _require_built(self) -> None:
        if self._n_points is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._n_points)

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._dim)

    @property
    def vector_store(self) -> Optional[VectorStore]:
        """The memmapped re-rank store (``None`` while vectors are resident)."""
        return self._store

    def resident_bytes(self) -> int:
        """Bytes of numpy state held in RAM by the serving path.

        Memory-mapped arrays (the re-rank vectors of a loaded index)
        count zero: their pages are file-backed and evictable, which is
        the whole point of the two-stage design.
        """
        total = 0
        for value in self.__dict__.values():
            if isinstance(value, np.memmap):
                continue
            if isinstance(value, np.ndarray):
                total += int(value.nbytes)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, np.ndarray) and not isinstance(item, np.memmap):
                        total += int(item.nbytes)
        total += self._codec_resident_bytes()
        return total

    def _codec_resident_bytes(self) -> int:
        """Resident bytes held behind codec objects (subclass hook)."""
        return 0

    # ------------------------------------------------------------------ #
    # two-stage online phase
    # ------------------------------------------------------------------ #
    def _rerank_budget(self, k: int, rerank: Optional[int]) -> int:
        """Resolve the over-fetch knob: at least ``k``, at most ``n``."""
        if rerank is None:
            budget = self.rerank_factor * k
        else:
            budget = check_positive_int(rerank, "rerank")
        return int(min(max(budget, k), self.n_points))

    def batch_query(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        rerank: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Quantized scan, over-fetch, exact re-rank.

        ``rerank`` is the over-fetch budget (stage-1 survivors per
        query); it defaults to ``rerank_factor * k`` and is clamped to
        ``[k, n_points]``.  Returned distances are always *exact*
        full-precision distances under ``self.metric`` — approximation
        only affects which candidates survive the scan.

        ``filter=`` (predicate / boolean mask / id allowlist) is applied
        inline over the code rows: disallowed rows are scored ``+inf``
        before candidate selection.  When the allowed subset fits inside
        the budget the scan is skipped entirely and the subset is
        re-ranked exactly.
        """
        self._require_built()
        queries = as_query_matrix(np.atleast_2d(queries), self.dim)
        k = min(check_positive_int(k, "k"), self.n_points)
        budget = self._rerank_budget(k, rerank)
        n_queries = queries.shape[0]
        mask = None
        if filter is not None:
            from ..filter.planner import filter_row_count, resolve_filter

            mask = resolve_filter(filter, self, filter_row_count(self))
        if mask is not None:
            allowed = np.flatnonzero(mask)
            if allowed.size == 0:
                return (
                    np.full((n_queries, k), -1, dtype=np.int64),
                    np.full((n_queries, k), np.inf),
                )
            if allowed.size <= budget:
                # The whole surviving subset fits in the re-rank budget:
                # skip stage 1 — exact brute force over the subset.
                with span(
                    "quant.rerank",
                    candidates=int(allowed.size),
                    subset_shortcut=True,
                    source="memmap" if self._store is not None else "resident",
                ):
                    return rerank_candidates(
                        self._vectors,
                        queries,
                        [allowed] * n_queries,
                        k,
                        metric=self.metric,
                    )
        with span(
            "quant.scan",
            rows=int(self.n_points),
            budget=int(budget),
            kernel=getattr(type(self), "_registry_name", type(self).__name__),
        ):
            candidates = self._scan(queries, budget, mask)
        with span(
            "quant.rerank",
            candidates=int(budget),
            source="memmap" if self._store is not None else "resident",
        ):
            return rerank_candidates(
                self._vectors, queries, list(candidates), k, metric=self.metric
            )

    def query(
        self,
        query: np.ndarray,
        k: int = 10,
        *,
        rerank: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, distances = self.batch_query(
            np.atleast_2d(query), k, rerank=rerank, filter=filter
        )
        return indices[0], distances[0]

    def _scan(
        self, queries: np.ndarray, budget: int, mask: Optional[np.ndarray]
    ) -> np.ndarray:
        """Stage 1: top-``budget`` candidate rows per query, by code scores."""
        n = self.n_points
        encoded = self._encode_queries(queries)
        if budget >= n:
            return np.broadcast_to(
                np.arange(n, dtype=np.int64), (queries.shape[0], n)
            )
        out = np.empty((queries.shape[0], budget), dtype=np.int64)
        for start, stop in iter_blocks(queries.shape[0], self.query_block):
            scores = self._scores(encoded[start:stop])
            if mask is not None:
                scores[:, ~mask] = np.inf
            out[start:stop] = np.argpartition(scores, budget - 1, axis=1)[:, :budget]
        return out

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        if not self.is_built:
            return stats
        stats.update(
            {
                "metric": self.metric,
                "rerank_factor": int(self.rerank_factor),
                "resident_bytes": self.resident_bytes(),
                "float32_bytes": int(self.n_points) * int(self.dim) * 4,
                "rerank_source": "memmap" if self._store is not None else "resident",
            }
        )
        if self._store is not None:
            stats["mapped_bytes"] = self._store.file_bytes
        return stats

    # ------------------------------------------------------------------ #
    # persistence: arrays.npz for the codec, VectorStore for the vectors
    # ------------------------------------------------------------------ #
    def _state(self):
        self._require_built()
        config, arrays = self._codec_state()
        config = dict(config)
        arrays = dict(arrays)
        config["__metric__"] = self.metric
        config["__rerank_factor__"] = int(self.rerank_factor)
        config["__query_block__"] = int(self.query_block)
        config["__n_points__"] = int(self.n_points)
        config["__dim__"] = int(self.dim)
        return config, arrays, {}

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(
            metric=str(config["__metric__"]),
            rerank_factor=int(config["__rerank_factor__"]),
            query_block=int(config.get("__query_block__", DEFAULT_QUERY_BLOCK)),
        )
        index._n_points = int(config["__n_points__"])
        index._dim = int(config["__dim__"])
        index._restore_codec(config, arrays)
        return index

    def save(
        self,
        path: str | os.PathLike,
        *,
        manifest_extra: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Save codec state via the shared format plus a ``vectors/`` store.

        The full-precision matrix deliberately stays out of ``arrays.npz``
        (which loads eagerly): it goes into a row-major
        :class:`VectorStore` that :meth:`load` re-opens as a memmap.
        """
        path = super().save(path, manifest_extra=manifest_extra)
        VectorStore.create(Path(path) / VECTORS_DIR, self._vectors)
        return path

    @classmethod
    def load(cls, path: str | os.PathLike):
        """Reload the codec and attach the re-rank vectors as a memmap."""
        index = super().load(path)
        store = VectorStore.open(Path(path) / VECTORS_DIR)
        if store.shape != (index.n_points, index.dim):
            raise SerializationError(
                f"vector store at {path} holds {store.shape} vectors but the "
                f"index expects ({index.n_points}, {index.dim}); the store "
                "and the codes do not belong together"
            )
        index._store = store
        index._vectors = store.vectors
        return index

    def _validate_codes_shape(self, codes: np.ndarray) -> None:
        """Guard a restored code matrix against a mismatched manifest."""
        if codes.shape[0] != self._n_points:
            raise ValidationError(
                f"code matrix has {codes.shape[0]} rows, manifest says "
                f"{self._n_points}"
            )

"""The asyncio HTTP front-end: :class:`SearchServer`.

``SearchServer`` puts a socket in front of the serving stack — a
:class:`~repro.service.SearchService`, a whole
:class:`~repro.service.Router`, or a durable
:class:`~repro.store.Collection` — with the operational behaviours an
in-process call never needed:

* **admission control** — at most ``max_concurrency`` requests execute
  (on the server's own thread pool; NumPy releases the GIL inside the
  kernels) while up to ``queue_limit`` wait; anything beyond is shed
  with a typed 429 + ``Retry-After`` *response*, never a dropped socket;
* **deadlines** — ``X-Deadline-Ms`` (or the configured default) is
  carried into the executor: expiry while queued cancels the work before
  it starts, expiry mid-request stops it at the next micro-batch
  boundary — 504 either way, with the stage in the error body;
* **durable mutations** — ``/add`` / ``/remove`` / ``/extend_attributes``
  acknowledge only after the collection's WAL fsync, exactly like the
  in-process endpoints they wrap;
* **graceful drain** — ``shutdown()`` stops accepting work, completes
  everything already admitted, then stops the maintenance loop and
  (collection-backed) checkpoints, so a restart replays nothing;
* **observability** — ``/stats`` (JSON) and ``/metrics`` (Prometheus
  text) expose the HTTP-layer counters and the stack's own
  ``stats()`` gauges from one scrape; every request can carry a
  :mod:`repro.obs` trace — extracted from an inbound ``traceparent``
  header or head-sampled locally — whose span tree (parse → admission
  queue → tenant ACL/quota → service cache → shard scan → quant
  scan/re-rank → merge → serialize) lands in a ring buffer served from
  ``/debug/traces``, with slow/error requests tail-sampled even when
  head sampling said no.

Endpoints (JSON unless noted)::

    POST /query              {"vector": [...], "request": {...}}
    POST /batch_query        {"vectors": [[...]], "request": {...}, "mode": "auto"}
    POST /add                {"vectors": [[...]], "attributes": {col: [...]}}
    POST /remove             {"ids": [...]}
    POST /extend_attributes  {"rows": {col: [...]}}
    GET  /stats              serving + admission counters
    GET  /metrics            Prometheus text format
    GET  /healthz            liveness: {"status": "ok" | "draining"}, always 200
    GET  /readyz             readiness: 503 while draining; replica role + lag
    GET  /debug/traces       recent traces (?format=jsonl for the raw ring)
    GET  /debug/traces/<id>  one trace's full span tree

Multi-service deployments address a service with ``?service=<name>``;
requests carrying a filter are implicitly routed to a filterable
service, exactly as :meth:`Router.search_batch` does in process.

Multi-tenant deployments (a :class:`repro.tenant.TenantRegistry` passed
as ``tenants=`` or as the target itself) address a tenant with the
``X-Tenant`` header (or ``?tenant=<name>``): the request is served
through that tenant's gateway — ACL injected, quotas charged — and
quota violations come back as typed 429 ``quota_exceeded`` responses
whose ``Retry-After`` derives from the tenant's token-bucket refill,
distinct from admission control's ``overloaded`` sheds.  An unknown
tenant is a typed 404 ``unknown_tenant``; a tenant-only server refuses
untenanted work with 400 ``missing_tenant``.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..obs.trace import (
    TRACEPARENT_HEADER,
    Tracer,
    TracingConfig,
    activate,
    current_trace,
    deactivate,
    span,
)
from ..service.request import BatchResult, QueryRequest
from ..service.router import Router
from ..service.service import SearchService
from ..utils.exceptions import ValidationError
from .admission import AdmissionController, Deadline
from .errors import (
    ApiError,
    BadRequest,
    Draining,
    MethodNotAllowed,
    NotFound,
    api_error_from,
)
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    HttpRequest,
    HttpResponse,
    parse_float_header,
    read_request,
)
from .metrics import ServerMetrics

#: header carrying the per-request deadline (milliseconds)
DEADLINE_HEADER = "X-Deadline-Ms"

#: header naming the tenant a request acts as (multi-tenant deployments)
TENANT_HEADER = "X-Tenant"

#: response header carrying the id of the trace a request produced
TRACE_ID_HEADER = "X-Trace-Id"

#: endpoints that execute search-stack work (admission-controlled)
WORK_ENDPOINTS = ("query", "batch_query", "add", "remove", "extend_attributes")
#: endpoints that mutate durable state (refused first while draining)
MUTATION_ENDPOINTS = ("add", "remove", "extend_attributes")


@dataclass
class ServerConfig:
    """Tunables of one :class:`SearchServer`.

    ``max_concurrency`` is both the executor width and the number of
    admission slots; ``queue_limit`` bounds the waiting room beyond it.
    ``default_deadline_seconds`` applies when a request sends no
    ``X-Deadline-Ms`` header (``None`` = no implicit deadline).
    ``chunk_rows`` is the deadline-check granularity of batch execution
    (defaults to the service's own micro-batch size).
    ``trace_sample_rate`` is the head-sampling probability for request
    traces (0 disables head sampling; slow/error requests are still
    tail-recorded past ``slow_trace_seconds``); ``trace_capacity`` and
    ``trace_slow_log`` size the trace ring buffer and worst-N log.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_concurrency: int = 4
    queue_limit: int = 64
    default_deadline_seconds: Optional[float] = 30.0
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    drain_grace_seconds: float = 30.0
    chunk_rows: Optional[int] = None
    checkpoint_on_drain: bool = True
    trace_sample_rate: float = 1.0
    slow_trace_seconds: float = 0.25
    trace_capacity: int = 256
    trace_slow_log: int = 32

    def __post_init__(self) -> None:
        if int(self.max_concurrency) < 1:
            raise ValidationError("max_concurrency must be positive")
        if int(self.queue_limit) < 0:
            raise ValidationError("queue_limit must be >= 0")
        if (
            self.default_deadline_seconds is not None
            and float(self.default_deadline_seconds) <= 0
        ):
            raise ValidationError("default_deadline_seconds must be positive or None")
        if float(self.drain_grace_seconds) <= 0:
            raise ValidationError("drain_grace_seconds must be positive")
        if not 0.0 <= float(self.trace_sample_rate) <= 1.0:
            raise ValidationError("trace_sample_rate must be in [0, 1]")
        if float(self.slow_trace_seconds) <= 0:
            raise ValidationError("slow_trace_seconds must be positive")


class SearchServer:
    """Serve a search stack over HTTP/1.1 on asyncio.

    Parameters
    ----------
    target:
        What to serve: a :class:`SearchService`, a :class:`Router` of
        named services, a durable :class:`~repro.store.Collection`, or a
        built index (the latter two are wrapped in a service).
    config:
        A :class:`ServerConfig`; defaults are test/bench friendly.
    maintenance:
        An optional :class:`~repro.store.MaintenanceLoop`; started with
        the server and stop-coordinated with drain so a checkpoint never
        races the final shutdown checkpoint.
    replication:
        An optional replication role for this server.  A
        :class:`~repro.replica.Primary` turns on the ``GET /replicate``
        endpoint (WAL shipping + snapshot bootstrap for remote
        followers); a :class:`~repro.replica.Follower` is surfaced in
        ``/stats`` and ``/metrics`` (lag, applied seq) without exposing
        shipping.  Detected by duck typing — this module never imports
        :mod:`repro.replica` (which imports the HTTP client from here).
    tenants:
        An optional :class:`repro.tenant.TenantRegistry` (duck-typed,
        like replication — this module never imports :mod:`repro.tenant`).
        Requests carrying ``X-Tenant`` (or ``?tenant=``) are served
        through that tenant's gateway; the registry's per-tenant
        counters join ``/stats`` and ``/metrics``.  A registry may also
        be passed *as the target* for a tenant-only server.
    """

    def __init__(
        self,
        target=None,
        *,
        config: Optional[ServerConfig] = None,
        maintenance=None,
        replication=None,
        tenants=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config or ServerConfig()
        if target is not None and _is_tenant_registry(target):
            if tenants is not None:
                raise ValidationError(
                    "pass the tenant registry either as the target or as "
                    "tenants=, not both"
                )
            tenants, target = target, None
        if target is None:
            if tenants is None:
                raise ValidationError(
                    "SearchServer needs a target (service/router/collection/"
                    "index) or a tenant registry"
                )
            self.router: Optional[Router] = None
            self.service: Optional[SearchService] = None
        elif isinstance(target, Router):
            self.router = target
            self.service = None
        elif isinstance(target, SearchService) or hasattr(target, "service_config"):
            # A SearchService, or anything service-shaped (ReplicaGroup
            # and TenantGateway duck-type the whole service surface).
            self.router = None
            self.service = target
        else:
            # Collection or bare built index: wrap in a service.
            self.router = None
            self.service = SearchService(target)
        self.tenants = tenants
        self.maintenance = maintenance
        self.replication = replication
        # A Primary ships WAL records; a Follower only reports status.
        self._ships_wal = replication is not None and hasattr(replication, "poll")
        self.admission = AdmissionController(
            self.config.max_concurrency, self.config.queue_limit
        )
        self.metrics = ServerMetrics()
        self.tracer = tracer or Tracer(
            TracingConfig(
                sample_rate=self.config.trace_sample_rate,
                slow_threshold_seconds=self.config.slow_trace_seconds,
                capacity=self.config.trace_capacity,
                slow_log_size=self.config.trace_slow_log,
            )
        )
        self.host = self.config.host
        self.port: Optional[int] = None
        self.drain_clean: Optional[bool] = None
        self._draining = False
        self._asyncio_server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency, thread_name_prefix="net-exec"
        )
        self._connections: set = set()
        self._busy: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_error: Optional[BaseException] = None
        self._share_tracer()

    def _share_tracer(self) -> None:
        """Hand this server's tracer to every hosted stats surface.

        Services, tenant registries, and replica groups report the trace
        sampling rate and dropped-span counts from their ``stats()``
        when a tracer is attached; sharing one tracer keeps those
        numbers consistent with ``/debug/traces``.
        """
        targets = list(self._all_services().values())
        if self.tenants is not None:
            targets.append(self.tenants)
        for target in targets:
            if getattr(target, "tracer", None) is None:
                try:
                    target.tracer = self.tracer
                except AttributeError:
                    pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        if self.port is None:
            raise ValidationError("server is not started; call start()/start_in_thread()")
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> "SearchServer":
        """Bind the listener (port 0 picks a free port)."""
        self._loop = asyncio.get_running_loop()
        self._asyncio_server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._asyncio_server.sockets[0].getsockname()[1]
        if self.maintenance is not None:
            self.maintenance.start()
        return self

    async def serve_forever(self) -> None:
        """``start()`` (if needed) and serve until ``shutdown()``."""
        if self._asyncio_server is None:
            await self.start()
        try:
            await self._asyncio_server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> bool:
        """Drain-then-stop; returns True when everything completed cleanly.

        Sequence: refuse new work (503) → close the listener → wait for
        every admitted request to finish (bounded by
        ``drain_grace_seconds``) → stop the maintenance loop → final
        checkpoint of collection-backed services → release the executor.
        In-flight and already-queued requests complete normally; only
        *new* arrivals are refused.
        """
        self._draining = True
        clean = await self.admission.drain(timeout=self.config.drain_grace_seconds)
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        # Idle keep-alive connections (no request in flight) are parked in
        # read_request(); close them now instead of waiting out the grace
        # period.  Busy ones finish writing their response first.
        for task in set(self._connections) - self._busy:
            task.cancel()
        if self._connections:
            done, pending = await asyncio.wait(
                set(self._connections), timeout=self.config.drain_grace_seconds
            )
            for task in pending:
                clean = False
                task.cancel()
        loop = asyncio.get_running_loop()
        if self.maintenance is not None:
            await loop.run_in_executor(None, self.maintenance.stop)
        if self.config.checkpoint_on_drain:
            targets = list(self._all_services().values())
            if self.tenants is not None:
                targets.extend(
                    self.tenants.namespace(name) for name in self.tenants.namespaces()
                )
            for service in targets:
                if getattr(service, "collection", None) is not None:
                    try:
                        await loop.run_in_executor(None, service.collection.checkpoint)
                    except Exception:
                        # A closed/failed collection must not block drain;
                        # its durable state is already consistent.
                        clean = False
        await loop.run_in_executor(None, lambda: self._executor.shutdown(wait=True))
        self.drain_clean = clean
        return clean

    # ------------------------------------------------------------------ #
    # background-thread hosting (sync callers: tests, benches, examples)
    # ------------------------------------------------------------------ #
    def start_in_thread(self, *, timeout: float = 30.0) -> "SearchServer":
        """Run the event loop on a daemon thread; returns once bound."""
        if self._thread is not None:
            raise ValidationError("server is already running in a thread")
        started = threading.Event()
        loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # noqa: BLE001 - reported to starter
                self._thread_error = exc
                started.set()
                return
            started.set()
            loop.run_forever()
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

        self._thread = threading.Thread(target=run, name="repro-net", daemon=True)
        self._thread.start()
        if not started.wait(timeout):
            raise ValidationError("server did not start within the timeout")
        if self._thread_error is not None:
            error, self._thread_error = self._thread_error, None
            self._thread = None
            raise error
        return self

    def stop(self, *, timeout: float = 60.0) -> bool:
        """Thread-safe drain-then-stop for ``start_in_thread`` servers."""
        if self._thread is None or self._loop is None:
            return True
        future = asyncio.run_coroutine_threadsafe(self.shutdown(), self._loop)
        clean = bool(future.result(timeout=timeout))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._thread = None
        return clean

    def __enter__(self) -> "SearchServer":
        return self.start_in_thread()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            while True:
                read_started = time.perf_counter()
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.config.max_body_bytes
                    )
                except ApiError as exc:
                    response = HttpResponse.from_error(exc)
                    response.keep_alive = False
                    self.metrics.observe_request("_framing", response.status)
                    writer.write(response.encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                read_done = time.perf_counter()
                started = time.monotonic()
                # busy until the response is flushed: shutdown() cancels
                # only idle connections, never one mid-request
                self._busy.add(task)
                endpoint_name = request.path.strip("/") or "_root"
                if endpoint_name.startswith("debug/traces/"):
                    # collapse trace ids so the endpoint label (and the
                    # stage histogram it feeds) stays bounded-cardinality
                    endpoint_name = "debug/traces/:id"
                trace = self.tracer.begin(
                    f"http.{endpoint_name}",
                    traceparent=request.headers.get(TRACEPARENT_HEADER),
                    start=read_started,
                    attributes={"method": request.method},
                )
                token = None
                if trace is not None:
                    trace.record("http.parse", read_started, read_done)
                    token = activate(trace)
                try:
                    response = await self._dispatch(request)
                    elapsed = time.monotonic() - started
                    response.keep_alive = (
                        response.keep_alive and request.keep_alive and not self._draining
                    )
                    if trace is not None:
                        response.headers.setdefault(TRACE_ID_HEADER, trace.trace_id)
                        self.tracer.finish(trace, status=response.status)
                        trace = None
                    elif self.tracer.should_tail_sample(elapsed, response.status):
                        self.tracer.tail_record(
                            f"http.{endpoint_name}",
                            elapsed,
                            status=response.status,
                            attributes={"method": request.method},
                        )
                    self.metrics.observe_request(
                        endpoint_name,
                        response.status,
                        seconds=elapsed,
                    )
                    writer.write(response.encode())
                    await writer.drain()
                finally:
                    if token is not None:
                        deactivate(token)
                    if trace is not None:
                        # connection failed mid-request: the partial span
                        # tree is still evidence — export it as aborted
                        self.tracer.finish(trace, status="aborted")
                    self._busy.discard(task)
                if not response.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        endpoint = request.path.strip("/")
        try:
            if endpoint in WORK_ENDPOINTS:
                if request.method != "POST":
                    raise MethodNotAllowed(f"/{endpoint} takes POST")
                return await self._handle_work(endpoint, request)
            if endpoint == "stats":
                if request.method != "GET":
                    raise MethodNotAllowed("/stats takes GET")
                return HttpResponse.json(self._stats_payload())
            if endpoint == "metrics":
                if request.method != "GET":
                    raise MethodNotAllowed("/metrics takes GET")
                return HttpResponse.text(self._render_metrics())
            if endpoint == "healthz":
                # Liveness only: answers 200 while the process can answer
                # at all (even mid-drain).  Readiness lives at /readyz.
                if request.method != "GET":
                    raise MethodNotAllowed("/healthz takes GET")
                return HttpResponse.json(
                    {"status": "draining" if self._draining else "ok"}
                )
            if endpoint == "readyz":
                if request.method != "GET":
                    raise MethodNotAllowed("/readyz takes GET")
                return self._handle_readyz()
            if endpoint == "debug/traces" or endpoint.startswith("debug/traces/"):
                if request.method != "GET":
                    raise MethodNotAllowed("/debug/traces takes GET")
                return self._handle_debug_traces(endpoint, request)
            if endpoint == "replicate" and self._ships_wal:
                if request.method != "GET":
                    raise MethodNotAllowed("/replicate takes GET")
                return await self._handle_replicate(request)
            extra = ("replicate",) if self._ships_wal else ()
            raise NotFound(
                f"unknown endpoint /{endpoint}; serving: "
                + ", ".join(
                    f"/{name}"
                    for name in (
                        *WORK_ENDPOINTS,
                        "stats",
                        "metrics",
                        "healthz",
                        "readyz",
                        "debug/traces",
                        *extra,
                    )
                )
            )
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # noqa: BLE001 - every failure becomes typed JSON
            error = api_error_from(exc)
            if error.code == "overloaded":
                self.metrics.observe_shed()
            elif error.code == "draining":
                self.metrics.observe_draining_refusal()
            elif error.code == "deadline_exceeded":
                self.metrics.observe_deadline(getattr(error, "stage", "unknown"))
            return HttpResponse.from_error(error)

    # ------------------------------------------------------------------ #
    # the admission-controlled work path
    # ------------------------------------------------------------------ #
    def _deadline_for(self, request: HttpRequest) -> Deadline:
        present, value = parse_float_header(request.headers, DEADLINE_HEADER)
        if present:
            if value is None or value <= 0:
                raise BadRequest(f"{DEADLINE_HEADER} must be a positive number")
            return Deadline(value / 1000.0)
        return Deadline(self.config.default_deadline_seconds)

    async def _handle_work(self, endpoint: str, request: HttpRequest) -> HttpResponse:
        if self._draining:
            # Mutations (and all other new work) are refused during
            # drain; in-flight requests admitted earlier still complete.
            raise Draining(
                f"server is draining; /{endpoint} is not accepting new requests",
                retry_after=self.admission.retry_after_estimate(),
            )
        deadline = self._deadline_for(request)
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequest(f"/{endpoint} body must be a JSON object")
        service = self._service_for(request, body)
        job = self._build_job(endpoint, service, body, deadline)
        depth_at_admission = self.admission.depth
        waited_from = time.monotonic()
        with span("admission.queue", depth=depth_at_admission):
            await self.admission.admit(deadline)
        queue_seconds = time.monotonic() - waited_from
        self.metrics.observe_admission(queue_seconds, depth_at_admission)
        executing_from = time.monotonic()
        try:
            loop = asyncio.get_running_loop()
            if current_trace() is not None:
                # Carry the trace into the worker thread: the copied
                # context makes spans opened by the job (service, shard,
                # quant layers) children of this request's trace.
                with span("execute", endpoint=endpoint):
                    context = contextvars.copy_context()
                    payload = await loop.run_in_executor(
                        self._executor, context.run, job
                    )
            else:
                payload = await loop.run_in_executor(self._executor, job)
        finally:
            self.admission.release(exec_seconds=time.monotonic() - executing_from)
        with span("serialize"):
            return HttpResponse.json(payload)

    def _all_services(self) -> Dict[str, SearchService]:
        if self.router is not None:
            return {name: self.router.service(name) for name in self.router.names()}
        if self.service is not None:
            return {self.service.name: self.service}
        return {}

    def _service_for(self, request: HttpRequest, body: Dict[str, Any]) -> SearchService:
        tenant = request.headers.get(TENANT_HEADER.lower()) or request.query.get(
            "tenant"
        )
        if tenant is not None:
            if self.tenants is None:
                raise NotFound(
                    f"this server hosts no tenants; cannot act as {tenant!r}",
                    code="unknown_tenant",
                )
            return self.tenants.gateway(tenant)
        if self.router is None and self.service is None:
            # Tenant-only server: anonymous work has no namespace to land
            # in, and silently picking one would bypass every quota/ACL.
            raise BadRequest(
                f"this server serves tenants; send the {TENANT_HEADER} "
                "header (or ?tenant=) naming one of "
                f"{self.tenants.tenants()}",
                code="missing_tenant",
            )
        name = request.query.get("service")
        if self.router is None:
            if name is not None and name != self.service.name:
                raise NotFound(
                    f"no service named {name!r}; this server serves "
                    f"{self.service.name!r}",
                    code="unknown_service",
                )
            return self.service
        if name is not None:
            return self.router.service(name)
        has_filter = isinstance(body.get("request"), dict) and (
            body["request"].get("filter") is not None
        )
        return self.router.route(filterable=True if has_filter else None)

    def _request_from(self, body: Dict[str, Any]) -> QueryRequest:
        data = body.get("request")
        if data is None:
            data = {
                key: body[key]
                for key in (
                    "k",
                    "probes",
                    "candidate_budget",
                    "filter",
                    "metadata",
                    "extra",
                )
                if key in body
            }
        if not isinstance(data, dict):
            raise BadRequest("'request' must be a JSON object (QueryRequest.as_dict form)")
        return QueryRequest.from_dict(data)

    def _build_job(
        self,
        endpoint: str,
        service: SearchService,
        body: Dict[str, Any],
        deadline: Deadline,
    ):
        """A zero-argument callable executed on the thread pool.

        Everything request-shaped is validated *before* admission, so a
        malformed request never occupies a queue slot; the returned job
        only runs index/collection work, re-checking the deadline at
        every micro-batch boundary.
        """
        if endpoint == "query":
            vector = _required_array(body, "vector", ndim=1)
            query_request = self._request_from(body)

            def job() -> Dict[str, Any]:
                deadline.check("execution")
                result = service.search(vector, query_request)
                deadline.check("execution")
                return result.as_dict()

            return job
        if endpoint == "batch_query":
            vectors = _required_array(body, "vectors", ndim=2)
            query_request = self._request_from(body)
            mode = str(body.get("mode", "auto"))
            chunk_rows = int(self.config.chunk_rows or service.batch_size)

            def job() -> Dict[str, Any]:
                deadline.check("execution")
                if vectors.shape[0] == 0:
                    return service.search_batch(vectors, query_request, mode=mode).as_dict()
                parts = []
                for start in range(0, vectors.shape[0], chunk_rows):
                    deadline.check("execution")
                    parts.append(
                        service.search_batch(
                            vectors[start : start + chunk_rows], query_request, mode=mode
                        )
                    )
                deadline.check("execution")
                return _merge_batches(parts, query_request).as_dict()

            return job
        if endpoint == "add":
            vectors = _required_array(body, "vectors", ndim=2)
            attributes = body.get("attributes")

            def job() -> Dict[str, Any]:
                deadline.check("execution")
                ids = service.add(vectors, attributes=attributes)
                return {"ids": np.asarray(ids).tolist(), "count": int(np.asarray(ids).size)}

            return job
        if endpoint == "remove":
            ids = body.get("ids")
            if ids is None:
                raise BadRequest("missing field 'ids'")

            def job() -> Dict[str, Any]:
                deadline.check("execution")
                return {"removed": int(service.remove(ids))}

            return job
        if endpoint == "extend_attributes":
            rows = body.get("rows")
            if not isinstance(rows, dict):
                raise BadRequest("missing field 'rows' (column -> values mapping)")

            def job() -> Dict[str, Any]:
                deadline.check("execution")
                service.extend_attributes(rows)
                return {"ok": True}

            return job
        raise NotFound(f"unknown work endpoint {endpoint!r}")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # replication shipping (primary side)
    # ------------------------------------------------------------------ #
    async def _handle_replicate(self, request: HttpRequest) -> HttpResponse:
        """Serve one follower pull; cheap reads, outside admission control.

        Shipping never competes with query traffic for admission slots —
        a saturated queue must not stall replication (that is exactly
        when followers are most valuable) — but the WAL read still runs
        on the executor so the event loop stays responsive.
        """
        loop = asyncio.get_running_loop()
        if request.query.get("bootstrap"):
            bundle = await loop.run_in_executor(
                self._executor, self.replication.bootstrap_bundle
            )
            return HttpResponse.json({"bundle": bundle})
        try:
            since_seq = int(request.query.get("since_seq", "0"))
        except ValueError:
            raise BadRequest("since_seq must be an integer") from None
        max_records: Optional[int] = None
        if "max_records" in request.query:
            try:
                max_records = int(request.query["max_records"])
            except ValueError:
                raise BadRequest("max_records must be an integer") from None
        batch = await loop.run_in_executor(
            self._executor,
            lambda: self.replication.poll(since_seq, max_records=max_records),
        )
        return HttpResponse.json(batch.as_dict())

    # ------------------------------------------------------------------ #
    # observability endpoints
    # ------------------------------------------------------------------ #
    def _handle_readyz(self) -> HttpResponse:
        """Readiness: should a load balancer send traffic here *now*?

        Distinct from ``/healthz`` liveness (the process is up, don't
        restart it): readiness is 503 while draining so routers stop
        sending work, and reports the replica role and replication lag
        (``last_applied_seq`` vs the primary) so a consistency-sensitive
        router can prefer fresher replicas.
        """
        payload: Dict[str, Any] = {
            "status": "draining" if self._draining else "ready",
            "draining": self._draining,
        }
        if self.replication is not None:
            stats = self.replication.stats()
            last_applied = stats.get("last_applied_seq")
            if last_applied is None:
                # A primary's own log is, definitionally, fully applied.
                last_applied = stats.get("last_seq")
            payload["replication"] = {
                "role": stats.get("role"),
                "name": stats.get("name"),
                "last_applied_seq": last_applied,
                "primary_last_seq": stats.get(
                    "primary_last_seq", stats.get("last_seq")
                ),
                "lag_seq": stats.get("lag_seq", 0),
            }
        return HttpResponse.json(payload, status=503 if self._draining else 200)

    def _handle_debug_traces(
        self, endpoint: str, request: HttpRequest
    ) -> HttpResponse:
        trace_id = endpoint[len("debug/traces"):].strip("/")
        if trace_id:
            matches = self.tracer.store.get(trace_id)
            if not matches:
                raise NotFound(
                    f"no stored trace {trace_id!r} (evicted or never sampled)",
                    code="unknown_trace",
                )
            return HttpResponse.json({"trace_id": trace_id, "traces": matches})
        if request.query.get("format") == "jsonl":
            return HttpResponse.text(self.tracer.store.to_jsonl())
        try:
            limit = int(request.query.get("limit", "50"))
        except ValueError:
            raise BadRequest("limit must be an integer") from None
        return HttpResponse.json(
            {
                "tracing": self.tracer.stats(),
                "traces": self.tracer.store.list(limit=limit),
                "slow": self.tracer.slow_log.worst(),
            }
        )

    def _stats_payload(self) -> Dict[str, Any]:
        services = {
            name: service.stats() for name, service in self._all_services().items()
        }
        payload = {
            "server": {
                "draining": self._draining,
                "max_concurrency": self.admission.max_concurrency,
                "queue_limit": self.admission.queue_limit,
                "queue_depth": self.admission.depth,
                "queue_waiting": self.admission.waiting,
                "active": self.admission.active,
                "admitted_total": self.admission.admitted_total,
                "shed_total": self.admission.shed_total,
                **self.metrics.snapshot(),
            },
            "services": services,
            "tracing": self.tracer.stats(),
        }
        if self.replication is not None:
            payload["replication"] = self.replication.stats()
        if self.tenants is not None:
            payload["tenants"] = self.tenants.stats()
        return payload

    def _render_metrics(self) -> str:
        services = {
            name: service.stats() for name, service in self._all_services().items()
        }
        return self.metrics.render(
            queue_depth=self.admission.depth,
            queue_waiting=self.admission.waiting,
            draining=self._draining,
            service_stats=services,
            replication=(
                None if self.replication is None else self.replication.stats()
            ),
            tenant_stats=(
                None if self.tenants is None else self.tenants.stats()["tenants"]
            ),
            stage_seconds=self.tracer.stage_histograms(),
        )

    def __repr__(self) -> str:
        if self.router is not None:
            target = f"router[{', '.join(self.router.names())}]"
        elif self.service is not None:
            target = f"service {self.service.name!r}"
        else:
            target = f"tenants[{', '.join(self.tenants.tenants())}]"
        bound = self.url if self.port is not None else "<unbound>"
        return f"SearchServer({target}, {bound}, {self.admission!r})"


def _is_tenant_registry(target) -> bool:
    """Duck-check for a :class:`repro.tenant.TenantRegistry`-shaped target.

    A registry is *not* service-shaped (no ``search``), so it needs its
    own detection; matching on the control-plane surface keeps this
    module free of a :mod:`repro.tenant` import.
    """
    return all(
        callable(getattr(target, attr, None))
        for attr in ("gateway", "create_tenant", "tenants", "stats")
    )


def _required_array(body: Dict[str, Any], field: str, *, ndim: int) -> np.ndarray:
    value = body.get(field)
    if value is None:
        raise BadRequest(f"missing field {field!r}")
    try:
        array = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"field {field!r} is not numeric: {exc}") from None
    if array.ndim != ndim:
        raise BadRequest(
            f"field {field!r} must be {ndim}-dimensional, got shape {array.shape}"
        )
    if array.size and not np.isfinite(array).all():
        raise BadRequest(f"field {field!r} contains non-finite values")
    return array


def _merge_batches(parts, request: QueryRequest) -> BatchResult:
    """Stitch per-chunk :class:`BatchResult` parts back into one."""
    if len(parts) == 1:
        return parts[0]
    return BatchResult(
        ids=np.vstack([part.ids for part in parts]),
        distances=np.vstack([part.distances for part in parts]),
        request=request,
        elapsed_seconds=float(sum(part.elapsed_seconds for part in parts)),
        mode=parts[0].mode,
        cache_hits=int(sum(part.cache_hits for part in parts)),
    )

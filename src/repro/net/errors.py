"""Typed error taxonomy for the HTTP serving layer.

Every failure a request can hit — malformed input, an unknown service,
an unfilterable index, an overloaded admission queue, an expired
deadline, a draining server, untrustworthy storage — maps to exactly one
:class:`ApiError` with an HTTP status, a stable machine-readable
``code``, and (for retryable conditions) a ``Retry-After`` hint.  The
mapping from the library's existing exception hierarchy
(:class:`~repro.utils.exceptions.ValidationError`,
:class:`~repro.utils.exceptions.StorageError`, ...) lives in
:func:`api_error_from`, so handlers never branch on exception types and
clients never see a raw traceback.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from ..utils.exceptions import (
    BootstrapRequired,
    ConfigurationError,
    NotFittedError,
    QuotaExceededError,
    ReadOnlyError,
    ReproError,
    SerializationError,
    StorageError,
    UnknownTenantError,
    ValidationError,
)


class ApiError(ReproError):
    """A request failure with a definite HTTP status and error code.

    Parameters
    ----------
    message:
        Human-readable description, returned in the JSON error body.
    status:
        HTTP status code (4xx for caller errors, 5xx for server state).
    code:
        Stable machine-readable identifier (``"validation"``,
        ``"overloaded"``, ``"deadline_exceeded"``, ...); clients branch
        on this, never on the message text.
    retry_after:
        Seconds after which retrying is reasonable; rendered as a
        ``Retry-After`` header on 429/503 responses.
    """

    status = 500
    code = "internal"

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        if status is not None:
            self.status = int(status)
        if code is not None:
            self.code = str(code)
        self.retry_after = None if retry_after is None else float(retry_after)

    def body(self) -> Dict[str, Any]:
        """The JSON error envelope every non-2xx response carries."""
        error: Dict[str, Any] = {
            "code": self.code,
            "status": self.status,
            "message": str(self),
        }
        if self.retry_after is not None:
            error["retry_after_seconds"] = self.retry_after
        return {"error": error}

    def body_bytes(self) -> bytes:
        return json.dumps(self.body(), sort_keys=True).encode("utf-8")


class BadRequest(ApiError):
    """Malformed request: unparsable JSON, wrong fields, bad shapes."""

    status = 400
    code = "bad_request"


class NotFound(ApiError):
    """Unknown endpoint or unknown named service."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ApiError):
    """The path exists but not under this HTTP method."""

    status = 405
    code = "method_not_allowed"


class UnfilterableIndex(ApiError):
    """A ``filter`` was sent to a service whose index cannot apply it."""

    status = 422
    code = "unfilterable_index"


class ShedLoad(ApiError):
    """Admission control refused the request: the bounded queue is full.

    The 429 carries ``Retry-After`` — an estimate of when a slot is
    likely to be free, derived from the queue depth and the recent
    execution-time average.
    """

    status = 429
    code = "overloaded"


class QuotaExceeded(ApiError):
    """A tenant is over one of its declared quotas.

    Deliberately a different 429 ``code`` than :class:`ShedLoad`: an
    ``overloaded`` shed means the *server* is saturated and anyone may
    retry; ``quota_exceeded`` means *this tenant* is over budget — its
    ``Retry-After`` is derived from the token bucket's refill rate, and
    hard quotas (vector caps) carry none because waiting will not help.
    """

    status = 429
    code = "quota_exceeded"

    def __init__(self, message: str, *, resource: str = "qps", **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.resource = str(resource)

    def body(self) -> Dict[str, Any]:
        payload = super().body()
        payload["error"]["resource"] = self.resource
        return payload


class Draining(ApiError):
    """The server is drain-stopping; new work is refused with 503."""

    status = 503
    code = "draining"


class StorageUnavailable(ApiError):
    """The backing collection is closed or failed; writes cannot be trusted."""

    status = 503
    code = "storage_unavailable"


class DeadlineExpired(ApiError):
    """The request's deadline passed before an answer could be produced.

    ``stage`` records where the deadline hit: ``"queued"`` (while waiting
    for an execution slot — the work never started) or ``"execution"``
    (between micro-batches of a running request — the remaining chunks
    were cancelled, not orphaned).
    """

    status = 504
    code = "deadline_exceeded"

    def __init__(self, message: str, *, stage: str = "queued", **kwargs) -> None:
        super().__init__(message, **kwargs)
        self.stage = str(stage)

    def body(self) -> Dict[str, Any]:
        payload = super().body()
        payload["error"]["stage"] = self.stage
        return payload


def api_error_from(exc: BaseException) -> ApiError:
    """Map any exception from the serving stack to one typed ApiError.

    The one message-based branch — capability-rejected filters — exists
    because the service layer signals both "bad input" and "index cannot
    filter" as :class:`ValidationError`; the wire layer distinguishes
    them (400 vs 422) so a client knows whether to fix the request or
    re-route it to a filterable service.
    """
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, ValidationError):
        if "does not support filtered" in str(exc):
            return UnfilterableIndex(str(exc))
        return BadRequest(str(exc), code="validation")
    if isinstance(exc, QuotaExceededError):
        return QuotaExceeded(
            str(exc), resource=exc.resource, retry_after=exc.retry_after_seconds
        )
    # Before the ConfigurationError base: a missing tenant and a missing
    # service are both 404s but need different fixes (provision vs deploy).
    if isinstance(exc, UnknownTenantError):
        return NotFound(str(exc), code="unknown_tenant")
    if isinstance(exc, ConfigurationError):
        return NotFound(str(exc), code="unknown_service")
    if isinstance(exc, NotFittedError):
        return ApiError(str(exc), status=409, code="not_built")
    # Replication subtypes before their StorageError base: both are
    # caller-resolvable states (write to the primary / re-bootstrap), not
    # an untrustworthy store.
    if isinstance(exc, ReadOnlyError):
        return ApiError(str(exc), status=409, code="read_only")
    if isinstance(exc, BootstrapRequired):
        return ApiError(str(exc), status=409, code="bootstrap_required")
    if isinstance(exc, StorageError):
        return StorageUnavailable(str(exc))
    if isinstance(exc, SerializationError):
        return ApiError(str(exc), status=500, code="serialization")
    if isinstance(exc, (json.JSONDecodeError, UnicodeDecodeError)):
        return BadRequest(f"request body is not valid JSON: {exc}", code="bad_json")
    if isinstance(exc, (TypeError, KeyError, ValueError)):
        return BadRequest(f"{type(exc).__name__}: {exc}", code="validation")
    return ApiError(f"{type(exc).__name__}: {exc}")

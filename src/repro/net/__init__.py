"""Network serving: an asyncio HTTP front-end for the search stack.

The layers below answer queries in process; this package puts them on a
socket with the behaviours production traffic needs:

* :class:`SearchServer` — stdlib-asyncio HTTP/1.1 server over a
  :class:`~repro.service.SearchService`, :class:`~repro.service.Router`,
  or durable :class:`~repro.store.Collection`: JSON ``/query`` /
  ``/batch_query`` (filters included), durable ``/add`` / ``/remove`` /
  ``/extend_attributes`` (acknowledged after the WAL fsync), ``/stats``,
  Prometheus-text ``/metrics``, and ``/healthz``.
* :class:`AdmissionController` / :class:`Deadline` — bounded admission
  (typed 429 + ``Retry-After`` shed), per-request deadlines carried into
  the thread-pooled execution path (504, queued vs. execution stage),
  and drain-then-stop shutdown.
* A typed error taxonomy (:mod:`repro.net.errors`) mapping the library's
  exceptions to stable 4xx/5xx JSON bodies.
* :class:`AsyncHttpClient` / :func:`request_json` — stdlib clients used
  by the load harness (``benchmarks/bench_load.py``), tests, and
  examples; an opt-in :class:`RetryPolicy` retries the typed 429/503
  responses with capped jittered backoff, honoring ``Retry-After``.
* Replication hosting — constructed with
  ``replication=repro.replica.Primary(...)``, the server additionally
  exposes ``GET /replicate`` (WAL shipping + snapshot bootstrap) for
  cross-process read replicas.
* Tenant hosting — constructed with a
  :class:`repro.tenant.TenantRegistry` (as the target or ``tenants=``),
  requests carrying the ``X-Tenant`` header are served through that
  tenant's gateway: ACL injected, quotas charged (typed 429
  ``quota_exceeded`` with refill-derived ``Retry-After``), per-tenant
  ``repro_tenant_*`` series on ``/metrics``.

Example
-------
>>> from repro.net import SearchServer, ServerConfig, request_json
>>> with SearchServer(service, config=ServerConfig(port=0)) as server:
...     status, body = request_json(
...         server.url + "/query", method="POST",
...         body={"vector": queries[0].tolist(), "request": {"k": 5}},
...     )
"""

from .admission import AdmissionController, Deadline
from .client import AsyncHttpClient, RetryPolicy, request_json, retry_after_from
from .errors import (
    ApiError,
    BadRequest,
    DeadlineExpired,
    Draining,
    MethodNotAllowed,
    NotFound,
    QuotaExceeded,
    ShedLoad,
    StorageUnavailable,
    UnfilterableIndex,
    api_error_from,
)
from .http import HttpRequest, HttpResponse
from .metrics import Histogram, ServerMetrics
from .server import (
    DEADLINE_HEADER,
    TENANT_HEADER,
    TRACE_ID_HEADER,
    SearchServer,
    ServerConfig,
)

__all__ = [
    "AdmissionController",
    "Deadline",
    "AsyncHttpClient",
    "RetryPolicy",
    "request_json",
    "retry_after_from",
    "ApiError",
    "BadRequest",
    "DeadlineExpired",
    "Draining",
    "MethodNotAllowed",
    "NotFound",
    "QuotaExceeded",
    "ShedLoad",
    "StorageUnavailable",
    "UnfilterableIndex",
    "api_error_from",
    "HttpRequest",
    "HttpResponse",
    "Histogram",
    "ServerMetrics",
    "DEADLINE_HEADER",
    "TENANT_HEADER",
    "TRACE_ID_HEADER",
    "SearchServer",
    "ServerConfig",
]

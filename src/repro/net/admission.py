"""Admission control: bounded queueing, deadlines, and drain coordination.

The server admits a request through :class:`AdmissionController` before
any work happens.  The model is *S executing slots + a bounded waiting
room*: up to ``max_concurrency`` requests execute on the thread pool at
once, up to ``queue_limit`` more wait for a slot, and anything beyond
that is shed immediately with a typed 429 carrying a ``Retry-After``
estimate — load the server cannot serve promptly is refused at the door,
not buffered into unbounded latency.

Deadlines ride along as :class:`Deadline` objects: a request whose
deadline passes while it is *queued* never starts (504,
``stage="queued"``), and the execution path re-checks the deadline
between micro-batches so an expired request stops computing instead of
orphaning a thread (504, ``stage="execution"``).

All controller state is touched only from the server's event loop, so no
locks are needed; :meth:`drain` is the shutdown half — new admissions
are refused while already-admitted requests run to completion.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from ..utils.exceptions import ValidationError
from .errors import DeadlineExpired, Draining, ShedLoad


class Deadline:
    """A monotonic-clock budget a request must be answered within."""

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: Optional[float]) -> None:
        if seconds is not None and float(seconds) <= 0:
            raise ValidationError("deadline must be positive (or None for none)")
        self.seconds = None if seconds is None else float(seconds)
        self._expires_at = (
            None if self.seconds is None else time.monotonic() + self.seconds
        )

    @property
    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative); ``None`` for no deadline."""
        if self._expires_at is None:
            return None
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExpired` tagged with ``stage`` if overdue."""
        if self.expired:
            raise DeadlineExpired(
                f"deadline of {self.seconds:.3f}s expired during {stage}",
                stage=stage,
            )

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds}, remaining={self.remaining})"


class AdmissionController:
    """Bounded request admission in front of the executor.

    Parameters
    ----------
    max_concurrency:
        Execution slots (matches the serving thread pool's width).
    queue_limit:
        Requests allowed to *wait* for a slot beyond the executing ones;
        arrival number ``max_concurrency + queue_limit + 1`` is shed.
    """

    def __init__(self, max_concurrency: int, queue_limit: int) -> None:
        if int(max_concurrency) < 1:
            raise ValidationError("max_concurrency must be positive")
        if int(queue_limit) < 0:
            raise ValidationError("queue_limit must be >= 0")
        self.max_concurrency = int(max_concurrency)
        self.queue_limit = int(queue_limit)
        self.waiting = 0
        self.active = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.draining = False
        # Exponentially-weighted execution-time average feeding the
        # Retry-After estimate on shed responses.
        self._avg_exec_seconds = 0.05
        self._slots: Optional[asyncio.Semaphore] = None
        self._idle: Optional[asyncio.Event] = None

    def _ensure_loop_state(self) -> None:
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_concurrency)
            self._idle = asyncio.Event()
            self._idle.set()

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> int:
        """Requests currently held by the controller (waiting + active)."""
        return self.waiting + self.active

    def retry_after_estimate(self) -> float:
        """When a shed client should retry: queue drain time at recent speed."""
        backlog = self.waiting + self.active
        estimate = self._avg_exec_seconds * (backlog + 1) / self.max_concurrency
        return min(max(estimate, 0.05), 30.0)

    async def admit(self, deadline: Deadline) -> None:
        """Wait for an execution slot (or shed / expire trying).

        Raises :class:`Draining` when the server is shutting down,
        :class:`ShedLoad` when the waiting room is full, and
        :class:`DeadlineExpired` (``stage="queued"``) when the deadline
        passes before a slot frees up — in which case the request is
        removed from the queue, not left to run after its client gave up.
        """
        self._ensure_loop_state()
        if self.draining:
            raise Draining(
                "server is draining; no new requests are admitted",
                retry_after=self.retry_after_estimate(),
            )
        # Shed only when the request would actually have to wait: a free
        # execution slot admits immediately even with queue_limit=0.
        if self._slots.locked() and self.waiting >= self.queue_limit:
            self.shed_total += 1
            raise ShedLoad(
                f"admission queue full ({self.active} executing, "
                f"{self.waiting} queued, limit {self.queue_limit})",
                retry_after=self.retry_after_estimate(),
            )
        self.waiting += 1
        self._idle.clear()
        try:
            timeout = deadline.remaining
            if timeout is None:
                await self._slots.acquire()
            else:
                try:
                    await asyncio.wait_for(self._slots.acquire(), timeout=max(timeout, 0.0))
                except asyncio.TimeoutError:
                    raise DeadlineExpired(
                        f"deadline of {deadline.seconds:.3f}s expired after "
                        f"waiting {deadline.seconds - max(timeout, 0.0):.3f}s "
                        "in the admission queue",
                        stage="queued",
                    ) from None
            # mark the slot active *before* leaving the waiting room, so
            # depth never dips to 0 mid-handoff (drain would fire early)
            self.active += 1
            self.admitted_total += 1
        finally:
            self.waiting -= 1
            self._maybe_idle()

    def release(self, exec_seconds: Optional[float] = None) -> None:
        """Return an execution slot; feeds the Retry-After estimator."""
        self.active -= 1
        self._slots.release()
        if exec_seconds is not None:
            self._avg_exec_seconds += 0.2 * (float(exec_seconds) - self._avg_exec_seconds)
        self._maybe_idle()

    def _maybe_idle(self) -> None:
        if self.depth == 0 and self._idle is not None:
            self._idle.set()

    # ------------------------------------------------------------------ #
    # drain
    # ------------------------------------------------------------------ #
    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Refuse new admissions, then wait for in-flight work to finish.

        Already-queued requests still get slots and complete normally —
        drain bounds *new* work, it never abandons accepted work.
        Returns ``True`` once the controller is empty, ``False`` if
        ``timeout`` elapsed first.
        """
        self._ensure_loop_state()
        self.draining = True
        if self.depth == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def __repr__(self) -> str:
        return (
            f"AdmissionController(active={self.active}/{self.max_concurrency}, "
            f"waiting={self.waiting}/{self.queue_limit}, shed={self.shed_total}, "
            f"draining={self.draining})"
        )

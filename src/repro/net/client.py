"""HTTP clients for the serving layer — stdlib only.

Two client surfaces, matched to their callers:

* :class:`AsyncHttpClient` — an asyncio keep-alive connection used by
  the load harness (``benchmarks/bench_load.py``) and concurrency tests;
  hundreds can run in one event loop, which is what an open-loop
  generator needs.
* :func:`request_json` — a blocking one-call helper on
  :mod:`urllib.request` for examples, quickstarts, and simple scripts.

Both return the parsed JSON body *and* the status code rather than
raising on non-2xx: the serving layer's 429/503/504 responses are typed
data (admission control working as designed), not exceptions.
"""

from __future__ import annotations

import asyncio
import json
import random
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..obs.trace import TRACEPARENT_HEADER, current_traceparent
from ..utils.exceptions import ValidationError
from .http import MAX_HEADER_BYTES


@dataclass(frozen=True)
class RetryPolicy:
    """Opt-in retries for the typed 429/503 responses admission control emits.

    Those statuses are *data* — the server saying "not now" — so
    retrying them is a client policy, off by default.  The delay before
    attempt ``n`` is ``base_delay_seconds * 2**n``, capped at
    ``max_delay_seconds``, with ``±jitter`` fractional randomisation so
    a burst of shed clients does not come back as one synchronised
    thundering herd.  A server-sent ``Retry-After`` (header, or the
    ``retry_after_seconds`` field of the error body) overrides the
    computed backoff — the server's estimate of when a slot frees is
    better than any client-side guess — still capped and jittered.
    """

    max_retries: int = 3
    base_delay_seconds: float = 0.05
    max_delay_seconds: float = 5.0
    jitter: float = 0.25
    retry_statuses: Tuple[int, ...] = (429, 503)
    respect_retry_after: bool = True
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if int(self.max_retries) < 0:
            raise ValidationError("max_retries must be >= 0")
        if float(self.base_delay_seconds) <= 0:
            raise ValidationError("base_delay_seconds must be positive")
        if float(self.max_delay_seconds) < float(self.base_delay_seconds):
            raise ValidationError("max_delay_seconds must be >= base_delay_seconds")
        if not 0.0 <= float(self.jitter) < 1.0:
            raise ValidationError("jitter must be in [0, 1)")
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def should_retry(self, status: int, attempt: int) -> bool:
        return int(status) in self.retry_statuses and attempt < int(self.max_retries)

    def delay_seconds(
        self, attempt: int, *, retry_after: Optional[float] = None
    ) -> float:
        delay = float(self.base_delay_seconds) * (2.0 ** int(attempt))
        if (
            self.respect_retry_after
            and retry_after is not None
            and float(retry_after) >= 0
        ):
            delay = float(retry_after)
        delay = min(delay, float(self.max_delay_seconds))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, 0.0)


def retry_after_from(headers: Mapping[str, str], parsed: Any) -> Optional[float]:
    """The server's retry hint: ``Retry-After`` header, else the error body."""
    value = headers.get("retry-after")
    if value is not None:
        try:
            return max(0.0, float(value))
        except ValueError:
            pass
    if isinstance(parsed, dict):
        hint = parsed.get("error", {}).get("retry_after_seconds")
        if isinstance(hint, (int, float)):
            return max(0.0, float(hint))
    return None


class AsyncHttpClient:
    """One keep-alive HTTP/1.1 connection to a :class:`SearchServer`.

    Not safe for concurrent use from multiple tasks — a load generator
    opens one client per simulated connection, which also matches how
    real traffic multiplexes.  With ``retry`` set, responses matching
    the policy's statuses (429/503 by default) are retried with capped
    jittered backoff, honoring the server's ``Retry-After``; the final
    response is returned either way.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self.retry = retry
        self.retries_total = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_HEADER_BYTES * 2
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: Any = None,
        headers: Optional[Mapping[str, str]] = None,
        deadline_ms: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        """``(status, headers, parsed_body)`` for one request.

        ``deadline_ms`` sets the ``X-Deadline-Ms`` header.  The body is
        JSON-encoded when given; responses with a JSON content type are
        parsed, others come back as text.  A server-closed keep-alive
        connection is re-dialled once.  With a :class:`RetryPolicy`
        configured, matching statuses are retried with backoff.
        """
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        all_headers: Dict[str, str] = dict(headers or {})
        if deadline_ms is not None:
            all_headers["X-Deadline-Ms"] = f"{float(deadline_ms):g}"
        if TRACEPARENT_HEADER not in {key.lower() for key in all_headers}:
            # Forward the active trace so the server joins it instead of
            # starting its own; explicit headers always win.
            traceparent = current_traceparent()
            if traceparent is not None:
                all_headers[TRACEPARENT_HEADER] = traceparent
        attempt = 0
        while True:
            status, response_headers, parsed = await self._request_once(
                method, path, payload, all_headers
            )
            if self.retry is None or not self.retry.should_retry(status, attempt):
                return status, response_headers, parsed
            delay = self.retry.delay_seconds(
                attempt, retry_after=retry_after_from(response_headers, parsed)
            )
            self.retries_total += 1
            attempt += 1
            if delay:
                await asyncio.sleep(delay)

    async def _request_once(
        self, method: str, path: str, payload: bytes, all_headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], Any]:
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await asyncio.wait_for(
                    self._roundtrip(method, path, payload, all_headers),
                    timeout=self.timeout,
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                # The server may close an idle keep-alive connection
                # between requests; retry exactly once on a fresh dial.
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(
        self, method: str, path: str, payload: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], Any]:
        lines = [
            f"{method.upper()} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(payload)}",
            "Content-Type: application/json",
        ]
        for key, value in headers.items():
            lines.append(f"{key}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
        await self._writer.drain()

        head = (await self._reader.readuntil(b"\r\n\r\n")).decode("latin-1")
        head_lines = head.split("\r\n")
        status_parts = head_lines[0].split(" ", 2)
        if len(status_parts) < 2 or not status_parts[1].isdigit():
            raise ValidationError(f"malformed status line {head_lines[0]!r}")
        status = int(status_parts[1])
        response_headers: Dict[str, str] = {}
        for line in head_lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", 0))
        raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        content_type = response_headers.get("content-type", "")
        parsed: Any
        if "json" in content_type and raw:
            parsed = json.loads(raw.decode("utf-8"))
        else:
            parsed = raw.decode("utf-8", errors="replace")
        return status, response_headers, parsed

    async def get(self, path: str, **kwargs) -> Tuple[int, Dict[str, str], Any]:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, body: Any, **kwargs) -> Tuple[int, Dict[str, str], Any]:
        return await self.request("POST", path, body=body, **kwargs)


def request_json(
    url: str,
    *,
    method: str = "GET",
    body: Any = None,
    deadline_ms: Optional[float] = None,
    timeout: float = 60.0,
    headers: Optional[Mapping[str, str]] = None,
) -> Tuple[int, Any]:
    """Blocking ``(status, parsed_body)`` helper for scripts and examples.

    ``headers`` adds/overrides request headers — e.g. ``X-Tenant`` to act
    as a tenant on a multi-tenant server.
    """
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method.upper(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    if deadline_ms is not None:
        request.add_header("X-Deadline-Ms", f"{float(deadline_ms):g}")
    if not request.has_header(TRACEPARENT_HEADER.capitalize()):
        traceparent = current_traceparent()
        if traceparent is not None:
            request.add_header(TRACEPARENT_HEADER, traceparent)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if "json" in content_type and raw:
        return status, json.loads(raw.decode("utf-8"))
    return status, raw.decode("utf-8", errors="replace")

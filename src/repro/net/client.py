"""HTTP clients for the serving layer — stdlib only.

Two client surfaces, matched to their callers:

* :class:`AsyncHttpClient` — an asyncio keep-alive connection used by
  the load harness (``benchmarks/bench_load.py``) and concurrency tests;
  hundreds can run in one event loop, which is what an open-loop
  generator needs.
* :func:`request_json` — a blocking one-call helper on
  :mod:`urllib.request` for examples, quickstarts, and simple scripts.

Both return the parsed JSON body *and* the status code rather than
raising on non-2xx: the serving layer's 429/503/504 responses are typed
data (admission control working as designed), not exceptions.
"""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional, Tuple

from ..utils.exceptions import ValidationError
from .http import MAX_HEADER_BYTES


class AsyncHttpClient:
    """One keep-alive HTTP/1.1 connection to a :class:`SearchServer`.

    Not safe for concurrent use from multiple tasks — a load generator
    opens one client per simulated connection, which also matches how
    real traffic multiplexes.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 60.0) -> None:
        self.host = str(host)
        self.port = int(port)
        self.timeout = float(timeout)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_HEADER_BYTES * 2
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "AsyncHttpClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def request(
        self,
        method: str,
        path: str,
        *,
        body: Any = None,
        headers: Optional[Mapping[str, str]] = None,
        deadline_ms: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        """``(status, headers, parsed_body)`` for one request.

        ``deadline_ms`` sets the ``X-Deadline-Ms`` header.  The body is
        JSON-encoded when given; responses with a JSON content type are
        parsed, others come back as text.  A server-closed keep-alive
        connection is re-dialled once.
        """
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        all_headers: Dict[str, str] = dict(headers or {})
        if deadline_ms is not None:
            all_headers["X-Deadline-Ms"] = f"{float(deadline_ms):g}"
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await asyncio.wait_for(
                    self._roundtrip(method, path, payload, all_headers),
                    timeout=self.timeout,
                )
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                # The server may close an idle keep-alive connection
                # between requests; retry exactly once on a fresh dial.
                await self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _roundtrip(
        self, method: str, path: str, payload: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, str], Any]:
        lines = [
            f"{method.upper()} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(payload)}",
            "Content-Type: application/json",
        ]
        for key, value in headers.items():
            lines.append(f"{key}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload)
        await self._writer.drain()

        head = (await self._reader.readuntil(b"\r\n\r\n")).decode("latin-1")
        head_lines = head.split("\r\n")
        status_parts = head_lines[0].split(" ", 2)
        if len(status_parts) < 2 or not status_parts[1].isdigit():
            raise ValidationError(f"malformed status line {head_lines[0]!r}")
        status = int(status_parts[1])
        response_headers: Dict[str, str] = {}
        for line in head_lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", 0))
        raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        content_type = response_headers.get("content-type", "")
        parsed: Any
        if "json" in content_type and raw:
            parsed = json.loads(raw.decode("utf-8"))
        else:
            parsed = raw.decode("utf-8", errors="replace")
        return status, response_headers, parsed

    async def get(self, path: str, **kwargs) -> Tuple[int, Dict[str, str], Any]:
        return await self.request("GET", path, **kwargs)

    async def post(self, path: str, body: Any, **kwargs) -> Tuple[int, Dict[str, str], Any]:
        return await self.request("POST", path, body=body, **kwargs)


def request_json(
    url: str,
    *,
    method: str = "GET",
    body: Any = None,
    deadline_ms: Optional[float] = None,
    timeout: float = 60.0,
) -> Tuple[int, Any]:
    """Blocking ``(status, parsed_body)`` helper for scripts and examples."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method=method.upper(),
        headers={"Content-Type": "application/json"},
    )
    if deadline_ms is not None:
        request.add_header("X-Deadline-Ms", f"{float(deadline_ms):g}")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if "json" in content_type and raw:
        return status, json.loads(raw.decode("utf-8"))
    return status, raw.decode("utf-8", errors="replace")

"""Serving-layer observability: counters, histograms, Prometheus text.

The HTTP layer keeps its own counters — requests by endpoint × status,
sheds, deadline expiries by stage, queue-wait and request-latency
histograms, queue-depth gauges — and renders them together with the
wrapped :meth:`SearchService.stats` counters as one Prometheus
text-format (version 0.0.4) page, so the numbers operators scrape are
the same numbers the in-process benchmarks report.

The histogram and exposition-format primitives live in
:mod:`repro.obs.metrics` (the shared telemetry layer) and are
re-exported here for compatibility; this module keeps the HTTP-specific
:class:`ServerMetrics` and the renderers that fold service, replication,
tenant, and per-stage tracing series into the ``/metrics`` page.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..obs.metrics import (  # noqa: F401  (re-exported for compatibility)
    DEPTH_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    emit_counter as _counter,
    emit_gauge as _gauge,
    emit_histogram as _histogram,
    emit_labeled_histogram as _labeled_histogram,
    escape_label_value,
    format_labels,
    format_value,
    lint_prometheus_text,
)


class ServerMetrics:
    """Counters behind ``GET /metrics`` (thread-safe: the executor and the
    event loop both record into it)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total: Dict[Tuple[str, int], int] = {}
        self.shed_total = 0
        self.draining_refused_total = 0
        self.deadline_expired_total: Dict[str, int] = {}
        self.request_seconds = Histogram(LATENCY_BUCKETS)
        self.queue_seconds = Histogram(LATENCY_BUCKETS)
        self.queue_depth_observed = Histogram(DEPTH_BUCKETS)

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def observe_request(
        self,
        endpoint: str,
        status: int,
        *,
        seconds: Optional[float] = None,
        queue_seconds: Optional[float] = None,
        queue_depth: Optional[int] = None,
    ) -> None:
        with self._lock:
            key = (str(endpoint), int(status))
            self.requests_total[key] = self.requests_total.get(key, 0) + 1
            if seconds is not None:
                self.request_seconds.observe(seconds)
            if queue_seconds is not None:
                self.queue_seconds.observe(queue_seconds)
            if queue_depth is not None:
                self.queue_depth_observed.observe(queue_depth)

    def observe_admission(self, queue_seconds: float, queue_depth: int) -> None:
        """One admitted request: how long it queued, how deep the queue was."""
        with self._lock:
            self.queue_seconds.observe(queue_seconds)
            self.queue_depth_observed.observe(queue_depth)

    def observe_shed(self) -> None:
        with self._lock:
            self.shed_total += 1

    def observe_draining_refusal(self) -> None:
        with self._lock:
            self.draining_refused_total += 1

    def observe_deadline(self, stage: str) -> None:
        with self._lock:
            self.deadline_expired_total[stage] = (
                self.deadline_expired_total.get(stage, 0) + 1
            )

    def errors_by_endpoint(self) -> Dict[str, int]:
        """Error responses (status >= 400) summed per endpoint.

        Derived from ``requests_total`` under the same lock, so the two
        views can never disagree.  Callers must hold ``_lock``.
        """
        errors: Dict[str, int] = {}
        for (endpoint, status), count in self.requests_total.items():
            if int(status) >= 400:
                errors[endpoint] = errors.get(endpoint, 0) + count
        return errors

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able counters (the ``/stats`` view of the same numbers)."""
        with self._lock:
            return {
                "requests_total": {
                    f"{endpoint}:{status}": count
                    for (endpoint, status), count in sorted(self.requests_total.items())
                },
                "errors_total": dict(sorted(self.errors_by_endpoint().items())),
                "shed_total": self.shed_total,
                "draining_refused_total": self.draining_refused_total,
                "deadline_expired_total": dict(self.deadline_expired_total),
                "requests_observed": self.request_seconds.total,
                "request_seconds_sum": self.request_seconds.sum,
                "p50_request_seconds": self.request_seconds.percentile(50),
                "p95_request_seconds": self.request_seconds.percentile(95),
                "p99_request_seconds": self.request_seconds.percentile(99),
            }

    # ------------------------------------------------------------------ #
    # Prometheus rendering
    # ------------------------------------------------------------------ #
    def render(
        self,
        *,
        queue_depth: int = 0,
        queue_waiting: int = 0,
        draining: bool = False,
        service_stats: Optional[Mapping[str, Mapping[str, Any]]] = None,
        replication: Optional[Mapping[str, Any]] = None,
        tenant_stats: Optional[Mapping[str, Mapping[str, Any]]] = None,
        stage_seconds: Optional[Mapping[str, Histogram]] = None,
    ) -> str:
        """The full ``/metrics`` page.

        ``service_stats`` maps service name → ``SearchService.stats()``;
        the serving counters the stack already keeps (queries, cache
        hits, latency percentiles, mutation-pressure gauges, WAL
        counters) are re-exported under ``repro_service_*`` so one scrape
        covers the HTTP layer and the search stack beneath it.
        ``replication`` is a ``Primary.stats()`` / ``Follower.stats()``
        mapping (keyed by ``role``), rendered as ``repro_replica_*``
        gauges.  ``tenant_stats`` maps tenant name →
        ``TenantGateway.stats()``, rendered as ``repro_tenant_*`` series
        carrying a ``tenant`` label (values escaped — tenant names are
        caller-supplied).  ``stage_seconds`` maps traced stage name →
        latency histogram (from :meth:`repro.obs.Tracer.stage_histograms`),
        rendered as one ``repro_stage_seconds{stage=...}`` family so
        dashboards get per-stage attribution without reading traces.
        """
        lines: List[str] = []
        with self._lock:
            _counter(
                lines,
                "repro_http_requests_total",
                "HTTP requests answered, by endpoint and status.",
                [
                    ({"endpoint": endpoint, "status": status}, count)
                    for (endpoint, status), count in sorted(self.requests_total.items())
                ],
            )
            _counter(
                lines,
                "repro_http_errors_total",
                "HTTP error responses (status >= 400), by endpoint.",
                [
                    ({"endpoint": endpoint}, count)
                    for endpoint, count in sorted(self.errors_by_endpoint().items())
                ],
            )
            _counter(
                lines,
                "repro_http_shed_total",
                "Requests shed with 429 by admission control.",
                [({}, self.shed_total)],
            )
            _counter(
                lines,
                "repro_http_draining_refused_total",
                "Requests refused with 503 while draining.",
                [({}, self.draining_refused_total)],
            )
            _counter(
                lines,
                "repro_http_deadline_expired_total",
                "Requests that ran out of deadline, by stage.",
                [
                    ({"stage": stage}, count)
                    for stage, count in sorted(self.deadline_expired_total.items())
                ],
            )
            _gauge(
                lines,
                "repro_http_queue_depth",
                "Requests currently admitted (waiting + executing).",
                [({}, queue_depth)],
            )
            _gauge(
                lines,
                "repro_http_queue_waiting",
                "Requests currently waiting for an execution slot.",
                [({}, queue_waiting)],
            )
            _gauge(
                lines,
                "repro_http_draining",
                "1 while the server is drain-stopping.",
                [({}, int(bool(draining)))],
            )
            _histogram(lines, "repro_http_request_seconds", self.request_seconds)
            _histogram(lines, "repro_http_queue_wait_seconds", self.queue_seconds)
            _histogram(
                lines, "repro_http_queue_depth_at_admission", self.queue_depth_observed
            )
        if service_stats:
            _render_service_stats(lines, service_stats)
        if replication:
            _render_replication(lines, replication)
        if tenant_stats:
            _render_tenant_stats(lines, tenant_stats)
        if stage_seconds:
            _labeled_histogram(
                lines,
                "repro_stage_seconds",
                "Traced per-stage latency, by stage (from sampled traces).",
                stage_seconds,
                "stage",
            )
        return "\n".join(lines) + "\n"


#: ``SearchService.stats()`` scalar fields exported per service:
#: (stats field, metric suffix, type, help) — counters carry the
#: ``_total`` suffix the exposition format expects.
_SERVICE_FIELDS = (
    ("queries", "queries_total", "counter", "Queries served."),
    ("batches", "batches_total", "counter", "Batches served."),
    ("cache_hits", "cache_hits_total", "counter", "Result-cache hits."),
    (
        "query_seconds",
        "query_seconds_total",
        "counter",
        "Total time spent answering queries.",
    ),
    ("queries_per_second", "queries_per_second", "gauge", "Recent serving throughput."),
    ("cache_hit_ratio", "cache_hit_ratio", "gauge", "Cache hits over queries."),
    ("mean_latency_ms", "mean_latency_ms", "gauge", "Mean per-query latency (ms)."),
    ("p50_latency_ms", "p50_latency_ms", "gauge", "Median per-query latency (ms)."),
    (
        "p95_latency_ms",
        "p95_latency_ms",
        "gauge",
        "95th percentile per-query latency (ms).",
    ),
)

#: nested gauges: (stats section, field)
_SERVICE_NESTED = (
    ("mutation", "n_pending"),
    ("mutation", "n_tombstones"),
    ("mutation", "mutation_pressure"),
    ("collection", "generation"),
    ("collection", "last_seq"),
    ("collection", "wal_ops"),
    ("collection", "wal_bytes"),
)


def _render_service_stats(
    lines: List[str], service_stats: Mapping[str, Mapping[str, Any]]
) -> None:
    for field_name, suffix, kind, help_text in _SERVICE_FIELDS:
        samples = []
        for service, stats in sorted(service_stats.items()):
            value = stats.get(field_name)
            if isinstance(value, (int, float)):
                samples.append(({"service": service}, value))
        if samples:
            emit = _counter if kind == "counter" else _gauge
            emit(lines, f"repro_service_{suffix}", help_text, samples)
    for section, field_name in _SERVICE_NESTED:
        samples = []
        for service, stats in sorted(service_stats.items()):
            value = stats.get(section, {}).get(field_name)
            if isinstance(value, (int, float)):
                samples.append(({"service": service}, value))
        if samples:
            _gauge(
                lines,
                f"repro_{section}_{field_name}",
                f"{section} gauge {field_name} from SearchService.stats().",
                samples,
            )


#: replication gauges exported when the server hosts a Primary/Follower:
#: (stats field, metric suffix, help text)
_REPLICA_FIELDS = (
    ("lag_seq", "lag_seq", "Sequence distance behind the primary (followers)."),
    (
        "last_applied_seq",
        "last_applied_seq",
        "Newest primary seq durably applied (followers); last_seq on primaries.",
    ),
    ("last_seq", "last_seq", "Newest acknowledged sequence number (primaries)."),
    ("records_shipped", "records_shipped_total", "WAL records shipped to followers."),
    ("records_applied", "records_applied_total", "Replicated records applied."),
    ("bootstraps", "bootstraps_total", "Snapshot bootstrap bundles served."),
    ("resyncs", "resyncs_total", "Snapshot re-bootstraps after falling behind."),
)


def _render_replication(lines: List[str], replication: Mapping[str, Any]) -> None:
    role = str(replication.get("role", "unknown"))
    name = str(replication.get("name", ""))
    labels = {"name": name, "role": role} if name else {"role": role}
    _gauge(
        lines,
        "repro_replica_role",
        "Replication role of this server (1 for the labeled role).",
        [(labels, 1)],
    )
    for field_name, suffix, help_text in _REPLICA_FIELDS:
        value = replication.get(field_name)
        if field_name == "last_applied_seq" and value is None:
            # A primary's own log is, definitionally, fully applied.
            value = replication.get("last_seq")
        if isinstance(value, (int, float)):
            emit = _counter if suffix.endswith("_total") else _gauge
            emit(lines, f"repro_replica_{suffix}", help_text, [(labels, value)])


#: ``TenantGateway.stats()`` scalar fields exported per tenant:
#: (stats field, metric suffix, type, help)
_TENANT_FIELDS = (
    ("queries", "queries_total", "counter", "Search calls served for this tenant."),
    (
        "query_rows",
        "query_rows_total",
        "counter",
        "Query rows served for this tenant.",
    ),
    (
        "cache_hits",
        "cache_hits_total",
        "counter",
        "Result-cache hits for this tenant.",
    ),
    (
        "write_calls",
        "write_calls_total",
        "counter",
        "Mutation calls served for this tenant.",
    ),
    (
        "quota_denials",
        "quota_denials_total",
        "counter",
        "Requests refused over a tenant quota.",
    ),
    (
        "latency_seconds_sum",
        "latency_seconds_total",
        "counter",
        "Total serving time for this tenant.",
    ),
    (
        "vectors_used",
        "vectors_used",
        "gauge",
        "Vectors counted against the tenant's cap.",
    ),
)

#: nested tenant gauges: (stats section, field)
_TENANT_NESTED = (
    ("qps_bucket", "tokens"),
    ("qps_bucket", "denied"),
    ("write_bucket", "tokens"),
    ("write_bucket", "denied"),
    ("cache", "entries"),
    ("cache", "cache_bytes"),
    ("cache", "hits"),
    ("cache", "evictions"),
)


def _render_tenant_stats(
    lines: List[str], tenant_stats: Mapping[str, Mapping[str, Any]]
) -> None:
    for field_name, suffix, kind, help_text in _TENANT_FIELDS:
        samples = []
        for tenant, stats in sorted(tenant_stats.items()):
            value = stats.get(field_name)
            if isinstance(value, (int, float)):
                samples.append(({"tenant": tenant}, value))
        if samples:
            emit = _counter if kind == "counter" else _gauge
            emit(lines, f"repro_tenant_{suffix}", help_text, samples)
    for section, field_name in _TENANT_NESTED:
        samples = []
        for tenant, stats in sorted(tenant_stats.items()):
            value = stats.get(section, {}).get(field_name)
            if isinstance(value, (int, float)):
                samples.append(({"tenant": tenant}, value))
        if samples:
            _gauge(
                lines,
                f"repro_tenant_{section}_{field_name}",
                f"Tenant {section} gauge {field_name} from TenantGateway.stats().",
                samples,
            )

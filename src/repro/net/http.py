"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The serving layer deliberately does not pull in an HTTP framework: the
subset it needs — request line, headers, ``Content-Length`` bodies,
keep-alive, JSON in/out — is small, and owning the framing is what makes
the admission/deadline/drain semantics precise (a shed request is still
a *answered* request: the 429 is written before the connection closes,
never a dropped socket).

Limits are explicit: header block and body sizes are bounded so a
misbehaving client cannot balloon server memory, and chunked transfer
encoding is refused loudly (501) rather than half-supported.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from .errors import ApiError, BadRequest

#: hard cap on the request line + header block (bytes)
MAX_HEADER_BYTES = 32 * 1024
#: default cap on request bodies (bytes); ServerConfig can lower/raise it
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class HttpRequest:
    """One parsed request: method, split path/query, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    http_version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The body parsed as JSON (empty body parses as ``{}``)."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(
                f"request body is not valid JSON: {exc}", code="bad_json"
            ) from exc


@dataclass
class HttpResponse:
    """One response about to be framed onto the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    keep_alive: bool = True

    @classmethod
    def json(cls, payload: Any, *, status: int = 200, **kwargs) -> "HttpResponse":
        return cls(
            status=status,
            body=json.dumps(payload, sort_keys=True).encode("utf-8"),
            **kwargs,
        )

    @classmethod
    def text(cls, text: str, *, status: int = 200, **kwargs) -> "HttpResponse":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            **kwargs,
        )

    @classmethod
    def from_error(cls, error: ApiError) -> "HttpResponse":
        headers: Dict[str, str] = {}
        if error.retry_after is not None:
            # Retry-After is an integer header; always round *up* so a
            # client honouring it never retries before the hinted time.
            headers["Retry-After"] = str(max(1, int(-(-error.retry_after // 1))))
        return cls(status=error.status, body=error.body_bytes(), headers=headers)

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if self.keep_alive else 'close'}",
        ]
        for key, value in self.headers.items():
            lines.append(f"{key}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + self.body


async def read_request(
    reader, *, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`BadRequest`-family errors for malformed framing; the
    caller answers them and closes, so a confused peer always gets a
    status line back.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests (keep-alive close)
        raise BadRequest("truncated request head", code="bad_framing") from None
    except asyncio.LimitOverrunError:
        raise ApiError(
            f"request head exceeds {MAX_HEADER_BYTES} bytes",
            status=413,
            code="headers_too_large",
        ) from None
    if len(header_block) > MAX_HEADER_BYTES:
        raise ApiError(
            f"request head exceeds {MAX_HEADER_BYTES} bytes",
            status=413,
            code="headers_too_large",
        )
    head = header_block.decode("latin-1").split("\r\n")
    request_line = head[0].split(" ")
    if len(request_line) != 3:
        raise BadRequest(f"malformed request line {head[0]!r}", code="bad_framing")
    method, target, version = request_line
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise BadRequest(f"unsupported HTTP version {version!r}", code="bad_framing")
    headers: Dict[str, str] = {}
    for line in head[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        if not _:
            raise BadRequest(f"malformed header line {line!r}", code="bad_framing")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ApiError(
            "chunked transfer encoding is not supported; send Content-Length",
            status=501,
            code="chunked_unsupported",
        )
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n_bytes = int(length)
        except ValueError:
            raise BadRequest(
                f"bad Content-Length {length!r}", code="bad_framing"
            ) from None
        if n_bytes < 0:
            raise BadRequest(f"bad Content-Length {length!r}", code="bad_framing")
        if n_bytes > max_body_bytes:
            raise ApiError(
                f"request body of {n_bytes} bytes exceeds the {max_body_bytes} "
                "byte limit",
                status=413,
                code="body_too_large",
            )
        try:
            body = await reader.readexactly(n_bytes)
        except asyncio.IncompleteReadError:
            raise BadRequest("request body shorter than Content-Length", code="bad_framing") from None
    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
        http_version=version,
    )


def parse_float_header(
    headers: Dict[str, str], name: str
) -> Tuple[bool, Optional[float]]:
    """``(present, value)`` for a float-valued header; bad values raise 400."""
    raw = headers.get(name.lower())
    if raw is None:
        return False, None
    try:
        value = float(raw)
    except ValueError:
        raise BadRequest(f"header {name} must be a number, got {raw!r}") from None
    return True, value

"""K-means clustering and the K-means partition index.

K-means is the ubiquitous partitioning baseline in the paper (it is also the
coarse quantizer inside ScaNN and FAISS-IVF).  The implementation provides
k-means++ seeding, Lloyd iterations with empty-cluster repair, and an ANN
index whose bins are the Voronoi cells of the centroids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..core.base import PartitionIndexBase
from ..utils.distances import squared_euclidean
from ..utils.exceptions import NotFittedError, ValidationError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import as_float_matrix, check_positive_int


@dataclass
class KMeansResult:
    """Outcome of a K-means run."""

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iterations: int
    converged: bool


def kmeans_plus_plus_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids proportionally to distance."""
    n = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest = squared_euclidean(points, centroids[0:1]).reshape(-1)
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centroids; pick uniformly.
            idx = int(rng.integers(n))
        else:
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
        centroids[i] = points[idx]
        new_dist = squared_euclidean(points, centroids[i : i + 1]).reshape(-1)
        np.minimum(closest, new_dist, out=closest)
    return centroids


class KMeans:
    """Lloyd's algorithm with k-means++ initialisation.

    Parameters
    ----------
    n_clusters:
        Number of centroids.
    max_iterations:
        Upper bound on Lloyd iterations.
    tolerance:
        Relative centroid-shift threshold for convergence.
    n_init:
        Number of independent restarts; the run with the lowest inertia wins.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        n_init: int = 1,
        seed: SeedLike = None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, "n_clusters")
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.tolerance = float(tolerance)
        self.n_init = check_positive_int(n_init, "n_init")
        self._rng = resolve_rng(seed)
        self.result: Optional[KMeansResult] = None

    # ------------------------------------------------------------------ #
    def fit(self, points) -> "KMeans":
        """Cluster ``points``; keeps the best of ``n_init`` restarts."""
        points = as_float_matrix(points)
        if self.n_clusters > points.shape[0]:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds number of points {points.shape[0]}"
            )
        best: Optional[KMeansResult] = None
        for _ in range(self.n_init):
            result = self._single_run(points)
            if best is None or result.inertia < best.inertia:
                best = result
        self.result = best
        return self

    def _single_run(self, points: np.ndarray) -> KMeansResult:
        centroids = kmeans_plus_plus_init(points, self.n_clusters, self._rng)
        labels = np.zeros(points.shape[0], dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            distances = squared_euclidean(points, centroids)
            labels = distances.argmin(axis=1)
            new_centroids = centroids.copy()
            for cluster in range(self.n_clusters):
                mask = labels == cluster
                if mask.any():
                    new_centroids[cluster] = points[mask].mean(axis=0)
                else:
                    # Empty cluster: re-seed at the point farthest from its centroid.
                    farthest = distances.min(axis=1).argmax()
                    new_centroids[cluster] = points[farthest]
            shift = float(np.linalg.norm(new_centroids - centroids))
            scale = float(np.linalg.norm(centroids)) + 1e-12
            centroids = new_centroids
            if shift / scale < self.tolerance:
                converged = True
                break
        distances = squared_euclidean(points, centroids)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(points.shape[0]), labels].sum())
        return KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=inertia,
            n_iterations=iteration,
            converged=converged,
        )

    # ------------------------------------------------------------------ #
    @property
    def centroids(self) -> np.ndarray:
        if self.result is None:
            raise NotFittedError("KMeans has not been fitted yet")
        return self.result.centroids

    @property
    def labels(self) -> np.ndarray:
        if self.result is None:
            raise NotFittedError("KMeans has not been fitted yet")
        return self.result.labels

    def predict(self, points) -> np.ndarray:
        """Assign new points to the nearest centroid."""
        if self.result is None:
            raise NotFittedError("KMeans has not been fitted yet")
        points = as_float_matrix(points)
        return squared_euclidean(points, self.result.centroids).argmin(axis=1)


@register_index(
    "kmeans",
    capabilities=IndexCapabilities(
        metrics=("euclidean", "sqeuclidean", "cosine"),
        probe_parameter="n_probes",
        supports_candidate_sets=True,
        trainable=True,
        reports_parameter_count=True,
        shardable=True,
        filterable=True,
    ),
    description="K-means Voronoi partition (the ubiquitous baseline)",
)
class KMeansIndex(PartitionIndexBase):
    """Partition index whose bins are K-means Voronoi cells.

    This is the "K-means" baseline of Figure 5 and the partitioner inside
    the "K-means + ScaNN" pipeline of Figure 7.
    """

    def __init__(
        self,
        n_bins: int = 16,
        *,
        max_iterations: int = 50,
        n_init: int = 1,
        seed: SeedLike = None,
    ) -> None:
        super().__init__()
        self.n_bins_requested = check_positive_int(n_bins, "n_bins")
        self._kmeans = KMeans(
            n_bins, max_iterations=max_iterations, n_init=n_init, seed=seed
        )
        self.build_seconds: float = 0.0

    def build(self, base: np.ndarray) -> "KMeansIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        self._kmeans.fit(base)
        self._finalize_build(base, self._kmeans.labels, self.n_bins_requested)
        self.build_seconds = time.perf_counter() - start
        return self

    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        """Negative squared distance to each centroid (closer = higher)."""
        self._require_built()
        return -squared_euclidean(np.atleast_2d(queries), self._kmeans.centroids)

    @property
    def centroids(self) -> np.ndarray:
        return self._kmeans.centroids

    def num_parameters(self) -> int:
        """Stored parameters = centroid table (Table 2: m * d)."""
        self._require_built()
        return int(self._kmeans.centroids.size)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _extra_state(self):
        result = self._kmeans.result
        config = {
            "n_bins": int(self.n_bins_requested),
            "inertia": float(result.inertia),
            "n_iterations": int(result.n_iterations),
            "converged": bool(result.converged),
            "build_seconds": self.build_seconds,
        }
        return config, {"centroids": result.centroids}

    @classmethod
    def _restore(cls, config, arrays, load_child):
        index = cls(int(config["n_bins"]))
        index._kmeans.result = KMeansResult(
            centroids=arrays["centroids"],
            labels=arrays["__assignments__"],
            inertia=float(config["inertia"]),
            n_iterations=int(config["n_iterations"]),
            converged=bool(config["converged"]),
        )
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

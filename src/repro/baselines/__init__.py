"""Space-partitioning baselines the paper compares against."""

from .kmeans import KMeans, KMeansIndex, KMeansResult, kmeans_plus_plus_init
from .graph_partition import GraphPartitionResult, partition_knn_graph
from .neural_lsh import NeuralLshConfig, NeuralLshIndex, RegressionLshIndex
from .lsh import CrossPolytopeLshIndex, HyperplaneLshIndex
from .trees import (
    HyperplaneTreeIndex,
    KdTreeIndex,
    PcaTreeIndex,
    RandomProjectionTreeIndex,
    TwoMeansTreeIndex,
)
from .boosted_forest import BoostedSearchForestIndex

__all__ = [
    "KMeans",
    "KMeansIndex",
    "KMeansResult",
    "kmeans_plus_plus_init",
    "GraphPartitionResult",
    "partition_knn_graph",
    "NeuralLshConfig",
    "NeuralLshIndex",
    "RegressionLshIndex",
    "CrossPolytopeLshIndex",
    "HyperplaneLshIndex",
    "HyperplaneTreeIndex",
    "KdTreeIndex",
    "PcaTreeIndex",
    "RandomProjectionTreeIndex",
    "TwoMeansTreeIndex",
    "BoostedSearchForestIndex",
]

"""Balanced k-NN graph partitioning (the Neural LSH preprocessing stage).

Neural LSH (Dong et al., ICLR 2020) partitions the dataset's k-NN graph
with a balanced combinatorial partitioner (KaHIP) and uses the resulting
part labels as supervision for a classifier.  KaHIP is not available here,
so this module implements a self-contained balanced partitioner with the
same contract:

1. **Greedy streaming assignment** (Fennel-style): vertices are visited in
   a random order and assigned to the part that contains most of their
   already-assigned neighbours, minus a load penalty that grows with the
   part's current size.
2. **Local refinement** (Kernighan–Lin flavoured): several passes move
   single vertices to the part that reduces the edge cut the most, subject
   to a hard balance constraint.

The output is a labelling of the vertices into ``n_parts`` parts of nearly
equal size that keeps most k-NN edges inside a part — exactly the property
Neural LSH's supervision needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..utils.exceptions import ValidationError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import check_positive_int


@dataclass
class GraphPartitionResult:
    """Partition labels plus quality statistics."""

    labels: np.ndarray
    n_parts: int
    edge_cut: int
    imbalance: float


def _build_adjacency(
    n_vertices: int, edges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Convert an edge list to CSR-style (indptr, neighbors) arrays.

    Edges are treated as undirected: both directions are inserted.
    """
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValidationError("edges must be an (n_edges, 2) array")
    sources = np.concatenate([edges[:, 0], edges[:, 1]])
    targets = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.argsort(sources, kind="stable")
    sources = sources[order]
    targets = targets[order]
    indptr = np.searchsorted(sources, np.arange(n_vertices + 1))
    return indptr, targets


def partition_knn_graph(
    knn_indices: np.ndarray,
    n_parts: int,
    *,
    imbalance: float = 0.05,
    refinement_passes: int = 10,
    method: str = "bfs",
    seed: SeedLike = None,
) -> GraphPartitionResult:
    """Partition the k-NN graph given by ``knn_indices`` into balanced parts.

    Parameters
    ----------
    knn_indices:
        ``(n, k')`` neighbour indices (the k'-NN matrix).
    n_parts:
        Number of parts (bins).
    imbalance:
        Allowed relative overload of a part: each part may hold at most
        ``(1 + imbalance) * n / n_parts`` vertices.
    refinement_passes:
        Number of local-move refinement sweeps.
    method:
        Initial assignment strategy: ``"bfs"`` (balanced multi-source region
        growing, default — lowest cut) or ``"fennel"`` (greedy streaming).
    seed:
        Random seed controlling seeds/streaming order.
    """
    knn_indices = np.asarray(knn_indices, dtype=np.int64)
    if knn_indices.ndim != 2:
        raise ValidationError("knn_indices must be a 2-D array")
    n_vertices = knn_indices.shape[0]
    n_parts = check_positive_int(n_parts, "n_parts")
    if n_parts > n_vertices:
        raise ValidationError("n_parts cannot exceed the number of vertices")
    rng = resolve_rng(seed)

    sources = np.repeat(np.arange(n_vertices, dtype=np.int64), knn_indices.shape[1])
    edges = np.column_stack([sources, knn_indices.reshape(-1)])
    indptr, neighbors = _build_adjacency(n_vertices, edges)

    capacity = int(np.ceil((1.0 + imbalance) * n_vertices / n_parts))
    if method == "bfs":
        labels = _region_growing_assignment(indptr, neighbors, n_parts, capacity, rng)
    elif method == "fennel":
        labels = _greedy_streaming_assignment(indptr, neighbors, n_parts, capacity, rng)
    else:
        raise ValidationError(f"unknown partition method {method!r}")
    for _ in range(max(0, int(refinement_passes))):
        moved = _refinement_pass(indptr, neighbors, labels, n_parts, capacity, rng)
        if moved == 0:
            break

    cut = _edge_cut(indptr, neighbors, labels)
    sizes = np.bincount(labels, minlength=n_parts)
    achieved_imbalance = float(sizes.max() * n_parts / n_vertices - 1.0)
    return GraphPartitionResult(
        labels=labels, n_parts=n_parts, edge_cut=cut, imbalance=achieved_imbalance
    )


def _region_growing_assignment(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    n_parts: int,
    capacity: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Balanced multi-source BFS region growing.

    Each part grows outwards from a random seed vertex, one frontier vertex
    per round in round-robin order, so parts stay connected (low cut) and
    equally sized (capacity-bounded).  Vertices unreachable from any seed
    are swept up at the end by the least-loaded part.
    """
    n_vertices = indptr.shape[0] - 1
    labels = np.full(n_vertices, -1, dtype=np.int64)
    sizes = np.zeros(n_parts, dtype=np.int64)
    seeds = rng.choice(n_vertices, size=n_parts, replace=False)
    frontiers: List[List[int]] = [[] for _ in range(n_parts)]
    for part, seed_vertex in enumerate(seeds):
        if labels[seed_vertex] == -1:
            labels[seed_vertex] = part
            sizes[part] += 1
            frontiers[part] = [int(seed_vertex)]
    active = True
    cursor = np.zeros(n_parts, dtype=np.int64)  # read position per frontier
    while active:
        active = False
        for part in range(n_parts):
            if sizes[part] >= capacity:
                continue
            grabbed = False
            while cursor[part] < len(frontiers[part]) and not grabbed:
                vertex = frontiers[part][cursor[part]]
                neigh = neighbors[indptr[vertex] : indptr[vertex + 1]]
                for candidate in neigh:
                    if labels[candidate] == -1:
                        labels[candidate] = part
                        sizes[part] += 1
                        frontiers[part].append(int(candidate))
                        grabbed = True
                        active = True
                        if sizes[part] >= capacity:
                            break
                if not grabbed:
                    cursor[part] += 1
            if grabbed:
                continue
    # Assign any remaining (unreached) vertices to the least-loaded parts.
    remaining = np.where(labels == -1)[0]
    for vertex in remaining:
        part = int(sizes.argmin())
        labels[vertex] = part
        sizes[part] += 1
    return labels


def _greedy_streaming_assignment(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    n_parts: int,
    capacity: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Fennel-style greedy assignment in random vertex order."""
    n_vertices = indptr.shape[0] - 1
    labels = np.full(n_vertices, -1, dtype=np.int64)
    sizes = np.zeros(n_parts, dtype=np.int64)
    # Load penalty weight: scaled so that the penalty is comparable to the
    # typical neighbour gain (a handful of edges).
    gamma = 1.5 * (indptr[-1] / max(n_vertices, 1)) / max(capacity, 1)
    order = rng.permutation(n_vertices)
    for vertex in order:
        neigh = neighbors[indptr[vertex] : indptr[vertex + 1]]
        assigned = labels[neigh]
        assigned = assigned[assigned >= 0]
        gains = np.zeros(n_parts, dtype=np.float64)
        if assigned.size:
            counts = np.bincount(assigned, minlength=n_parts)
            gains += counts
        gains -= gamma * sizes
        gains[sizes >= capacity] = -np.inf
        best = int(gains.argmax())
        labels[vertex] = best
        sizes[best] += 1
    return labels


def _refinement_pass(
    indptr: np.ndarray,
    neighbors: np.ndarray,
    labels: np.ndarray,
    n_parts: int,
    capacity: int,
    rng: np.random.Generator,
) -> int:
    """One sweep of single-vertex moves that reduce the edge cut."""
    n_vertices = indptr.shape[0] - 1
    sizes = np.bincount(labels, minlength=n_parts)
    moved = 0
    order = rng.permutation(n_vertices)
    for vertex in order:
        current = labels[vertex]
        neigh = neighbors[indptr[vertex] : indptr[vertex + 1]]
        if neigh.size == 0:
            continue
        counts = np.bincount(labels[neigh], minlength=n_parts)
        internal = counts[current]
        candidates = np.where((counts > internal) & (sizes < capacity))[0]
        if candidates.size == 0:
            continue
        target = int(candidates[counts[candidates].argmax()])
        if target == current:
            continue
        labels[vertex] = target
        sizes[current] -= 1
        sizes[target] += 1
        moved += 1
    return moved


def _edge_cut(indptr: np.ndarray, neighbors: np.ndarray, labels: np.ndarray) -> int:
    """Number of (undirected) edges crossing parts."""
    n_vertices = indptr.shape[0] - 1
    sources = np.repeat(np.arange(n_vertices), np.diff(indptr))
    crossing = labels[sources] != labels[neighbors]
    # Every undirected edge appears twice in the adjacency structure.
    return int(crossing.sum() // 2)

"""Neural LSH and Regression LSH baselines (Dong et al., ICLR 2020).

Neural LSH is the supervised state of the art the paper improves upon.  Its
offline phase is a two-step pipeline:

1. Build the k-NN graph of the dataset and partition it into ``m`` balanced
   parts with a combinatorial graph partitioner (here
   :func:`repro.baselines.graph_partition.partition_knn_graph`).
2. Train a neural network classifier to predict the part of a point, so
   out-of-sample queries can be routed to bins.

Dataset points keep the labels assigned by the graph partitioner; queries
are routed by the classifier's probability output (supporting multi-probe).
``Regression LSH`` is the variant used in the paper's tree experiments: the
same pipeline applied recursively with two parts per level and a logistic
regression classifier.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import List, Optional

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..core.base import PartitionIndexBase
from ..core.knn_matrix import KnnMatrix, build_knn_matrix
from ..nn import Adam, EpochBatchIterator, cross_entropy
from ..core.models import PartitionModel, build_logistic_module, build_mlp_module
from ..utils.exceptions import ValidationError
from ..utils.rng import resolve_rng, spawn_rngs
from ..utils.timing import Stopwatch
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int

_NEURAL_LSH_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean", "sqeuclidean", "cosine"),
    probe_parameter="n_probes",
    supports_candidate_sets=True,
    trainable=True,
    reports_parameter_count=True,
    filterable=True,
)


def _build_classifier_module(dim: int, config: "NeuralLshConfig", rng=None):
    """The classifier architecture described by ``config`` (mlp or logistic)."""
    if config.model == "mlp":
        return build_mlp_module(
            dim,
            config.n_bins,
            hidden_dim=config.hidden_dim,
            dropout=config.dropout,
            rng=rng,
        )
    if config.model == "logistic":
        return build_logistic_module(dim, config.n_bins, rng=rng)
    raise ValidationError(f"unknown model type {config.model!r}")


@dataclass(frozen=True)
class NeuralLshConfig:
    """Hyper-parameters of the Neural LSH baseline.

    The defaults follow the paper's description of the original
    implementation: a hidden layer of width 512 (versus 128 for USP — this
    is where the Table 2 parameter-count gap comes from), k'=10 graph
    neighbours, and a standard supervised cross-entropy objective.
    """

    n_bins: int = 16
    k_prime: int = 10
    hidden_dim: int = 512
    dropout: float = 0.1
    epochs: int = 30
    batch_size: int = 512
    learning_rate: float = 1e-3
    imbalance: float = 0.05
    refinement_passes: int = 5
    model: str = "mlp"  # "mlp" (Neural LSH) or "logistic" (Regression LSH)
    seed: int = 0


@register_index(
    "neural-lsh",
    capabilities=_NEURAL_LSH_CAPABILITIES,
    description="Neural LSH: balanced graph partition + neural router (Dong et al. 2020)",
)
class NeuralLshIndex(PartitionIndexBase):
    """Supervised graph-partition + classifier baseline (Neural LSH)."""

    def __init__(self, config: Optional[NeuralLshConfig] = None, **overrides) -> None:
        super().__init__()
        if config is None:
            config = NeuralLshConfig(**overrides)
        elif overrides:
            config = NeuralLshConfig(**{**config.__dict__, **overrides})
        self.config = config
        self.model: Optional[PartitionModel] = None
        self.partition_seconds: float = 0.0
        self.training_time: float = 0.0
        self.build_seconds: float = 0.0
        self.edge_cut: Optional[int] = None

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray, *, knn: Optional[KnnMatrix] = None) -> "NeuralLshIndex":
        """Run the Neural LSH offline pipeline on ``base``."""
        from .graph_partition import partition_knn_graph

        base = as_float_matrix(base, name="base")
        config = self.config
        stopwatch = Stopwatch()
        with stopwatch.section("build"):
            if knn is None:
                knn = build_knn_matrix(base, config.k_prime)
            with stopwatch.section("partition"):
                partition = partition_knn_graph(
                    knn.indices,
                    config.n_bins,
                    imbalance=config.imbalance,
                    refinement_passes=config.refinement_passes,
                    seed=config.seed,
                )
            self.edge_cut = partition.edge_cut
            labels = partition.labels
            with stopwatch.section("train"):
                self.model = self._train_classifier(base, labels)
            # Dataset points keep the graph-partition labels; the classifier
            # is only used to route queries (as in the original system).
            self._finalize_build(base, labels, config.n_bins)
        totals = stopwatch.totals()
        self.build_seconds = totals["build"]
        self.partition_seconds = totals.get("partition", 0.0)
        self.training_time = totals.get("train", 0.0)
        return self

    def _train_classifier(self, base: np.ndarray, labels: np.ndarray) -> PartitionModel:
        """Supervised training of the bin classifier on the partition labels."""
        config = self.config
        rng = resolve_rng(config.seed)
        module = _build_classifier_module(base.shape[1], config, rng=rng)
        model = PartitionModel(module, dim=base.shape[1], n_bins=config.n_bins)
        optimizer = Adam(model.parameters(), lr=config.learning_rate)
        iterator = EpochBatchIterator(base, config.batch_size, rng=rng)
        model.train()
        for _ in range(config.epochs):
            for batch in iterator:
                optimizer.zero_grad()
                logits = model.forward_logits(batch.points)
                loss = cross_entropy(logits, labels[batch.indices])
                loss.backward()
                optimizer.step()
        model.eval()
        return model

    # ------------------------------------------------------------------ #
    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        """Classifier probabilities for each bin."""
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        return self.model.predict_proba(queries)

    def num_parameters(self) -> int:
        self._require_built()
        return self.model.num_parameters()

    def training_seconds(self) -> float:
        """Classifier training time (excludes graph partitioning)."""
        return self.training_time

    def preprocessing_seconds(self) -> float:
        """Graph-partitioning time — the expensive step USP eliminates."""
        return self.partition_seconds

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _extra_state(self):
        config = {
            "config": asdict(self.config),
            "edge_cut": None if self.edge_cut is None else int(self.edge_cut),
            "build_seconds": self.build_seconds,
            "partition_seconds": self.partition_seconds,
            "training_time": self.training_time,
        }
        arrays = {
            f"model.{key}": value for key, value in self.model.state_dict().items()
        }
        return config, arrays

    @classmethod
    def _restore(cls, config, arrays, load_child):
        lsh_config = NeuralLshConfig(**config["config"])
        index = cls(lsh_config)
        dim = int(arrays["__base__"].shape[1])
        index.model = _load_classifier(
            lsh_config,
            dim,
            {
                key[len("model.") :]: value
                for key, value in arrays.items()
                if key.startswith("model.")
            },
        )
        index.edge_cut = config.get("edge_cut")
        index.build_seconds = float(config.get("build_seconds", 0.0))
        index.partition_seconds = float(config.get("partition_seconds", 0.0))
        index.training_time = float(config.get("training_time", 0.0))
        return index


def _load_classifier(config: NeuralLshConfig, dim: int, state) -> PartitionModel:
    """Rebuild a classifier from ``config`` and load its saved parameters."""
    model = PartitionModel(
        _build_classifier_module(dim, config), dim=dim, n_bins=config.n_bins
    )
    model.load_state_dict(state)
    model.eval()
    return model


@register_index(
    "regression-lsh",
    capabilities=_NEURAL_LSH_CAPABILITIES,
    description="Regression LSH: recursive 2-way Neural LSH with logistic routers",
)
class RegressionLshIndex(PartitionIndexBase):
    """Regression LSH: recursive 2-way Neural LSH with logistic regression.

    Used in the paper's tree-based comparison (Figure 6): a binary tree of
    depth ``depth`` where every node partitions its subset's k-NN graph into
    two balanced halves and fits a logistic regression to route queries.
    """

    def __init__(
        self,
        depth: int = 4,
        *,
        k_prime: int = 10,
        epochs: int = 20,
        learning_rate: float = 5e-3,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.depth = check_positive_int(depth, "depth")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        self.epochs = check_positive_int(epochs, "epochs")
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self._nodes: List[Optional[NeuralLshIndex]] = []
        self.build_seconds: float = 0.0

    # The tree is stored as an implicit heap: node i has children 2i+1, 2i+2.
    def build(self, base: np.ndarray) -> "RegressionLshIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        n_leaves = 2**self.depth
        n_internal = n_leaves - 1
        self._nodes = [None] * n_internal
        assignments = np.zeros(base.shape[0], dtype=np.int64)
        rngs = spawn_rngs(self.seed, n_internal)
        self._split_recursive(base, np.arange(base.shape[0]), 0, 0, assignments, rngs)
        self._finalize_build(base, assignments, n_leaves)
        self.build_seconds = time.perf_counter() - start
        return self

    def _split_recursive(
        self,
        base: np.ndarray,
        point_indices: np.ndarray,
        node_id: int,
        level: int,
        assignments: np.ndarray,
        rngs: List[np.random.Generator],
    ) -> None:
        n_leaves = 2**self.depth
        leaves_below = n_leaves // (2**level)
        if level == self.depth or point_indices.size == 0:
            return
        points = base[point_indices]
        if point_indices.size < 8:
            # Too small to split meaningfully: everything goes left.
            left_mask = np.ones(point_indices.size, dtype=bool)
        else:
            node_seed = int(rngs[node_id].integers(0, 2**31 - 1))
            node = NeuralLshIndex(
                NeuralLshConfig(
                    n_bins=2,
                    k_prime=min(self.k_prime, point_indices.size - 1),
                    model="logistic",
                    epochs=self.epochs,
                    learning_rate=self.learning_rate,
                    seed=node_seed,
                )
            )
            node.build(points)
            self._nodes[node_id] = node
            left_mask = node.assignments == 0
        left = point_indices[left_mask]
        right = point_indices[~left_mask]
        # Leaf id offsets: left subtree keeps the lower half of leaf ids.
        half = leaves_below // 2
        assignments[right] += half
        if level + 1 == self.depth:
            return
        self._split_recursive(base, left, 2 * node_id + 1, level + 1, assignments, rngs)
        self._split_recursive(base, right, 2 * node_id + 2, level + 1, assignments, rngs)

    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        """Leaf probabilities from the product of per-node routing probabilities."""
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        n_leaves = 2**self.depth
        scores = np.ones((queries.shape[0], n_leaves), dtype=np.float64)
        self._score_recursive(queries, 0, 0, 0, n_leaves, scores)
        return scores

    def _score_recursive(
        self,
        queries: np.ndarray,
        node_id: int,
        level: int,
        leaf_start: int,
        leaf_stop: int,
        scores: np.ndarray,
    ) -> None:
        if level == self.depth:
            return
        node = self._nodes[node_id] if node_id < len(self._nodes) else None
        half = (leaf_stop - leaf_start) // 2
        if node is None:
            left_prob = np.full(queries.shape[0], 0.5)
        else:
            left_prob = node.bin_scores(queries)[:, 0]
        scores[:, leaf_start : leaf_start + half] *= left_prob[:, None]
        scores[:, leaf_start + half : leaf_stop] *= (1.0 - left_prob)[:, None]
        self._score_recursive(
            queries, 2 * node_id + 1, level + 1, leaf_start, leaf_start + half, scores
        )
        self._score_recursive(
            queries, 2 * node_id + 2, level + 1, leaf_start + half, leaf_stop, scores
        )

    def num_parameters(self) -> int:
        self._require_built()
        return int(
            sum(node.num_parameters() for node in self._nodes if node is not None)
        )

    # ------------------------------------------------------------------ #
    # persistence: only each node's router model is needed at query time,
    # so nodes are stored as flat model states and restored router-only
    # ------------------------------------------------------------------ #
    def _extra_state(self):
        config = {
            "depth": int(self.depth),
            "k_prime": int(self.k_prime),
            "epochs": int(self.epochs),
            "learning_rate": float(self.learning_rate),
            "seed": int(self.seed),
            "build_seconds": self.build_seconds,
            "nodes": [i for i, node in enumerate(self._nodes) if node is not None],
        }
        arrays = {}
        for i, node in enumerate(self._nodes):
            if node is None:
                continue
            for key, value in node.model.state_dict().items():
                arrays[f"node{i}.model.{key}"] = value
        return config, arrays

    @classmethod
    def _restore(cls, config, arrays, load_child):
        index = cls(
            int(config["depth"]),
            k_prime=int(config["k_prime"]),
            epochs=int(config["epochs"]),
            learning_rate=float(config["learning_rate"]),
            seed=int(config["seed"]),
        )
        dim = int(arrays["__base__"].shape[1])
        n_internal = 2 ** index.depth - 1
        index._nodes = [None] * n_internal
        node_config = NeuralLshConfig(n_bins=2, model="logistic")
        for i in config["nodes"]:
            prefix = f"node{i}.model."
            node = NeuralLshIndex(node_config)
            node.model = _load_classifier(
                node_config,
                dim,
                {
                    key[len(prefix) :]: value
                    for key, value in arrays.items()
                    if key.startswith(prefix)
                },
            )
            # Mark the node as a query-time router only: bin_scores needs a
            # built index but never touches the (subset) training data.
            node._base = np.empty((0, dim), dtype=np.float64)
            node._assignments = np.empty(0, dtype=np.int64)
            node._lookup = [np.empty(0, dtype=np.int64)] * 2
            node._n_bins = 2
            index._nodes[int(i)] = node
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

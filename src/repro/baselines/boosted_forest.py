"""Boosted Search Forest baseline (Li et al., NeurIPS 2011).

Boosted Search Forest learns an ensemble of hyperplane partition trees with
a boosting-style objective: each tree is grown on re-weighted data so that
it focuses on the query/neighbour pairs earlier trees separated.  The
original formulation optimises a pairwise similarity-preservation loss per
hyperplane; this implementation captures the same structure with a
tractable surrogate:

* a node's hyperplane is the top *weighted* principal component of its
  points (weighted by the current boosting weights), split at the weighted
  median — i.e. the hyperplane that best explains the "difficult" points;
* after each tree, a point's weight is multiplied by the number of its k'
  nearest neighbours that ended up in a different leaf (the same update the
  paper's own ensembling uses), so the next tree concentrates on them;
* at query time each tree proposes its leaf candidates and, like the
  paper's Algorithm 4, the most confident tree's candidate set is used.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..api.registry import register_index
from ..core.base import rerank_candidates
from ..core.knn_matrix import KnnMatrix, build_knn_matrix
from ..utils.exceptions import NotFittedError
from ..utils.rng import SeedLike, spawn_rngs
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int
from .trees import HyperplaneTreeIndex, pack_tree_nodes, unpack_tree_nodes


class _WeightedPcaTree(HyperplaneTreeIndex):
    """A hyperplane tree whose splits maximise weighted variance."""

    def __init__(self, depth: int, weights: np.ndarray, base: np.ndarray, *, seed=None) -> None:
        super().__init__(depth, seed=seed)
        self._all_weights = np.asarray(weights, dtype=np.float64)
        self._all_points = base
        # Map rows of a node's point subset back to global weights by value
        # lookup is fragile; instead weights are passed positionally below.
        self._weight_lookup = {}

    def build(self, base: np.ndarray) -> "_WeightedPcaTree":
        # Stash index-aligned weights for split_rule (split_rule only sees
        # the node's points, so we track indices through a parallel build).
        self._current_weights = self._all_weights
        return super().build(base)

    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        # Weighted PCA via power iteration on the weighted covariance.  The
        # exact per-point weights of this node are approximated by uniform
        # weights when the subset cannot be identified; in practice the
        # boosting signal mostly matters at the root levels where the subset
        # is (nearly) the full dataset.
        weights = self._match_weights(points)
        total = weights.sum()
        if total <= 0:
            weights = np.ones(points.shape[0])
            total = float(points.shape[0])
        mean = (weights[:, None] * points).sum(axis=0) / total
        centered = points - mean
        direction = rng.normal(size=points.shape[1])
        direction /= np.linalg.norm(direction) + 1e-12
        for _ in range(15):
            direction = centered.T @ (weights * (centered @ direction))
            norm = np.linalg.norm(direction)
            if norm < 1e-12:
                direction = rng.normal(size=points.shape[1])
                norm = np.linalg.norm(direction)
            direction /= norm
        projections = points @ direction
        order = np.argsort(projections)
        cumulative = np.cumsum(weights[order])
        split_at = np.searchsorted(cumulative, 0.5 * cumulative[-1])
        split_at = min(max(split_at, 0), points.shape[0] - 1)
        return direction, float(projections[order][split_at])

    def _match_weights(self, points: np.ndarray) -> np.ndarray:
        if points.shape[0] == self._all_points.shape[0]:
            return self._all_weights
        # Subset nodes: fall back to uniform weights (see class docstring).
        return np.ones(points.shape[0], dtype=np.float64)


@register_index(
    "boosted-forest",
    capabilities=IndexCapabilities(
        metrics=("euclidean",),
        probe_parameter="n_probes",
        supports_candidate_sets=True,
        trainable=True,
        reports_parameter_count=True,
        filterable=True,
    ),
    description="Boosted Search Forest: re-weighted hyperplane trees (Li et al. 2011)",
)
class BoostedSearchForestIndex(RegisteredIndex):
    """Ensemble of boosted hyperplane trees with confidence-based querying."""

    def __init__(
        self,
        n_trees: int = 3,
        depth: int = 4,
        *,
        k_prime: int = 10,
        seed: SeedLike = None,
    ) -> None:
        self.n_trees = check_positive_int(n_trees, "n_trees")
        self.depth = check_positive_int(depth, "depth")
        self.k_prime = check_positive_int(k_prime, "k_prime")
        self.seed = seed
        self.metric = "euclidean"
        self.trees: List[HyperplaneTreeIndex] = []
        self._base: Optional[np.ndarray] = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray, *, knn: Optional[KnnMatrix] = None) -> "BoostedSearchForestIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        if knn is None:
            knn = build_knn_matrix(base, min(self.k_prime, base.shape[0] - 1))
        rngs = spawn_rngs(self.seed, self.n_trees)
        weights = np.ones(base.shape[0], dtype=np.float64)
        self.trees = []
        for t in range(self.n_trees):
            tree = _WeightedPcaTree(self.depth, weights, base, seed=rngs[t])
            tree.build(base)
            self.trees.append(tree)
            neighbor_bins = tree.assignments[knn.indices]
            mismatches = (neighbor_bins != tree.assignments[:, None]).sum(axis=1)
            weights = weights * mismatches.astype(np.float64)
            if weights.sum() <= 0:
                weights = np.ones(base.shape[0], dtype=np.float64)
        self._base = base
        self.build_seconds = time.perf_counter() - start
        return self

    # ------------------------------------------------------------------ #
    def _require_built(self) -> None:
        if not self.trees or self._base is None:
            raise NotFittedError("BoostedSearchForestIndex has not been built yet")

    @property
    def is_built(self) -> bool:
        return bool(self.trees)

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._base.shape[1])

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._base.shape[0])

    @property
    def n_bins(self) -> int:
        self._require_built()
        return self.trees[0].n_bins

    def candidate_sets(self, queries: np.ndarray, n_probes: int = 1) -> List[np.ndarray]:
        """Candidate set of the most confident tree for each query."""
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        per_tree = [tree.candidate_sets(queries, n_probes) for tree in self.trees]
        confidences = np.column_stack(
            [tree.bin_scores(queries).max(axis=1) for tree in self.trees]
        )
        best = confidences.argmax(axis=1)
        return [per_tree[int(best[i])][i] for i in range(queries.shape[0])]

    def batch_query(
        self, queries: np.ndarray, k: int = 10, *, n_probes: int = 1, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        if filter is not None:
            return self._filtered_batch_query(queries, k, filter, n_probes=int(n_probes))
        candidates = self.candidate_sets(queries, n_probes)
        return rerank_candidates(self._base, queries, candidates, k, metric=self.metric)

    def query(
        self, query: np.ndarray, k: int = 10, *, n_probes: int = 1, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, distances = self.batch_query(
            np.atleast_2d(query), k, n_probes=n_probes, filter=filter
        )
        return indices[0], distances[0]

    def num_parameters(self) -> int:
        self._require_built()
        return int(sum(tree.num_parameters() for tree in self.trees))

    # ------------------------------------------------------------------ #
    # persistence: each tree's hyperplanes + assignments are stored flat;
    # restored trees are plain HyperplaneTreeIndex routers (split rules are
    # only needed during build)
    # ------------------------------------------------------------------ #
    def _state(self):
        config = {
            "n_trees": int(len(self.trees)),
            "depth": int(self.depth),
            "k_prime": int(self.k_prime),
            "metric": self.metric,
            "build_seconds": self.build_seconds,
        }
        arrays = {"__base__": self._base}
        for t, tree in enumerate(self.trees):
            arrays[f"tree{t}.assignments"] = tree.assignments
            for key, value in pack_tree_nodes(
                tree._nodes, tree._margin_scales, self.dim
            ).items():
                arrays[f"tree{t}.{key}"] = value
        return config, arrays, {}

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(
            int(config["n_trees"]),
            int(config["depth"]),
            k_prime=int(config["k_prime"]),
        )
        index.metric = str(config["metric"])
        base = arrays["__base__"]
        index.trees = []
        for t in range(int(config["n_trees"])):
            tree = HyperplaneTreeIndex(int(config["depth"]))
            tree._nodes, tree._margin_scales = unpack_tree_nodes(arrays, f"tree{t}.")
            tree._finalize_build(
                base, arrays[f"tree{t}.assignments"], 2 ** int(config["depth"])
            )
            index.trees.append(tree)
        index._base = base
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

"""Data-oblivious LSH baselines: cross-polytope LSH and hyperplane LSH.

These represent the classical, distribution-independent space partitions
the paper compares against (and beats): they hash points with random
projections and therefore cannot adapt their bin boundaries to the data.

* :class:`CrossPolytopeLshIndex` — Andoni et al. 2015.  A point is hashed to
  the index (and sign) of its largest coordinate after a random rotation,
  giving ``2 * n_projections`` bins.  Multi-probe ranks bins by the signed
  coordinate values, which is the natural probing sequence.
* :class:`HyperplaneLshIndex` — classic sign-random-projection hashing with
  ``n_hyperplanes`` hyperplanes and ``2 ** n_hyperplanes`` bins; multi-probe
  flips the lowest-margin bits first.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..core.base import PartitionIndexBase
from ..utils.exceptions import ValidationError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int

_LSH_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean", "sqeuclidean", "cosine"),
    probe_parameter="n_probes",
    supports_candidate_sets=True,
    trainable=False,  # data-oblivious: random projections, no learning
    reports_parameter_count=True,
    filterable=True,
)


def _random_rotation(dim: int, target_dim: int, rng: np.random.Generator) -> np.ndarray:
    """A random matrix with orthonormal columns mapping R^dim -> R^target_dim."""
    gaussian = rng.normal(size=(dim, target_dim))
    q, _ = np.linalg.qr(gaussian)
    return q[:, :target_dim]


@register_index(
    "cross-polytope-lsh",
    capabilities=_LSH_CAPABILITIES,
    description="Cross-polytope LSH partition (Andoni et al. 2015)",
)
class CrossPolytopeLshIndex(PartitionIndexBase):
    """Cross-polytope LSH partition with ``2 * n_projections`` bins.

    ``n_bins`` must be even; the data is centred (queries use the same
    shift) so the sign information is meaningful for unnormalised data.
    """

    def __init__(self, n_bins: int = 16, *, seed: SeedLike = None) -> None:
        super().__init__()
        n_bins = check_positive_int(n_bins, "n_bins")
        if n_bins % 2 != 0:
            raise ValidationError(f"cross-polytope LSH needs an even n_bins, got {n_bins}")
        self.n_bins_requested = n_bins
        self.n_projections = n_bins // 2
        self._rng = resolve_rng(seed)
        self._rotation: Optional[np.ndarray] = None
        self._center: Optional[np.ndarray] = None
        self.build_seconds: float = 0.0

    def build(self, base: np.ndarray) -> "CrossPolytopeLshIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        if self.n_projections > base.shape[1]:
            raise ValidationError(
                f"n_bins/2={self.n_projections} exceeds data dimension {base.shape[1]}"
            )
        self._center = base.mean(axis=0)
        self._rotation = _random_rotation(base.shape[1], self.n_projections, self._rng)
        assignments = self.bin_scores_raw(base).argmax(axis=1)
        self._finalize_build(base, assignments, self.n_bins_requested)
        self.build_seconds = time.perf_counter() - start
        return self

    def bin_scores_raw(self, points: np.ndarray) -> np.ndarray:
        """Signed projection magnitude for every (projection, sign) bin."""
        if self._rotation is None or self._center is None:
            raise ValidationError("index must be built before scoring")
        projected = (np.atleast_2d(points) - self._center) @ self._rotation
        # Bin 2j   <- +e_j direction, score = +projection_j
        # Bin 2j+1 <- -e_j direction, score = -projection_j
        scores = np.empty((projected.shape[0], 2 * self.n_projections), dtype=np.float64)
        scores[:, 0::2] = projected
        scores[:, 1::2] = -projected
        return scores

    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        return self.bin_scores_raw(queries)

    def num_parameters(self) -> int:
        """Stored parameters: the rotation matrix plus the centring vector."""
        self._require_built()
        return int(self._rotation.size + self._center.size)

    # ------------------------------------------------------------------ #
    def _extra_state(self):
        config = {"n_bins": int(self.n_bins_requested), "build_seconds": self.build_seconds}
        return config, {"rotation": self._rotation, "center": self._center}

    @classmethod
    def _restore(cls, config, arrays, load_child):
        index = cls(int(config["n_bins"]))
        index._rotation = arrays["rotation"]
        index._center = arrays["center"]
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index


@register_index(
    "hyperplane-lsh",
    capabilities=_LSH_CAPABILITIES,
    description="Sign-random-projection LSH with multi-probe bit flips",
)
class HyperplaneLshIndex(PartitionIndexBase):
    """Sign-random-projection LSH with ``2 ** n_hyperplanes`` bins."""

    def __init__(self, n_hyperplanes: int = 4, *, seed: SeedLike = None) -> None:
        super().__init__()
        self.n_hyperplanes = check_positive_int(n_hyperplanes, "n_hyperplanes")
        if self.n_hyperplanes > 20:
            raise ValidationError("n_hyperplanes > 20 would create too many bins")
        self._rng = resolve_rng(seed)
        self._hyperplanes: Optional[np.ndarray] = None
        self._center: Optional[np.ndarray] = None
        self.build_seconds: float = 0.0

    @property
    def n_bins_requested(self) -> int:
        return 2**self.n_hyperplanes

    def build(self, base: np.ndarray) -> "HyperplaneLshIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        self._center = base.mean(axis=0)
        self._hyperplanes = self._rng.normal(size=(base.shape[1], self.n_hyperplanes))
        self._hyperplanes /= np.linalg.norm(self._hyperplanes, axis=0, keepdims=True)
        assignments = self._hash(base)
        self._finalize_build(base, assignments, self.n_bins_requested)
        self.build_seconds = time.perf_counter() - start
        return self

    def _margins(self, points: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(points) - self._center) @ self._hyperplanes

    def _hash(self, points: np.ndarray) -> np.ndarray:
        bits = (self._margins(points) > 0).astype(np.int64)
        weights = 1 << np.arange(self.n_hyperplanes, dtype=np.int64)
        return bits @ weights

    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        """Score bins by how little margin must be flipped to reach them.

        The score of bucket ``b`` for query ``q`` is the negated sum of
        |margin| over the hyperplanes where ``b`` disagrees with ``q``'s own
        hash — i.e. the standard multi-probe perturbation ordering.
        """
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        margins = self._margins(queries)  # (n_q, h)
        n_bins = self.n_bins_requested
        bits = np.zeros((n_bins, self.n_hyperplanes), dtype=np.float64)
        for plane in range(self.n_hyperplanes):
            bits[:, plane] = (np.arange(n_bins) >> plane) & 1
        query_bits = (margins > 0).astype(np.float64)  # (n_q, h)
        abs_margin = np.abs(margins)
        # disagreement[i, b, plane] = 1 if bucket b differs from query i's bit.
        disagreement = np.abs(query_bits[:, None, :] - bits[None, :, :])
        cost = (disagreement * abs_margin[:, None, :]).sum(axis=2)
        return -cost

    def num_parameters(self) -> int:
        self._require_built()
        return int(self._hyperplanes.size + self._center.size)

    # ------------------------------------------------------------------ #
    def _extra_state(self):
        config = {
            "n_hyperplanes": int(self.n_hyperplanes),
            "build_seconds": self.build_seconds,
        }
        return config, {"hyperplanes": self._hyperplanes, "center": self._center}

    @classmethod
    def _restore(cls, config, arrays, load_child):
        index = cls(int(config["n_hyperplanes"]))
        index._hyperplanes = arrays["hyperplanes"]
        index._center = arrays["center"]
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

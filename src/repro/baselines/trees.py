"""Hyperplane partitioning trees (the Figure 6 baselines).

All of these methods recursively split the dataset with a hyperplane until
a target depth is reached, producing ``2 ** depth`` leaf bins.  They differ
only in how a node picks its hyperplane:

* **PCA tree** — top principal component of the node's points, median split.
* **Random-projection tree** — random direction, median split.
* **2-means tree** — direction between the two 2-means centroids, split at
  the midpoint of the projected centroids.
* **Learned KD-tree** — the single coordinate axis with the largest
  variance, median split (the axis-aligned "learned" variant of Cayton &
  Dasgupta's framework).

Queries are routed with a soft margin (sigmoid of the signed distance to
each node's hyperplane); the leaf score is the product of the per-node
probabilities, which yields a natural multi-probe ordering over leaves —
the same mechanism every other index in this repository uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities
from ..api.registry import register_index
from ..core.base import PartitionIndexBase
from ..utils.exceptions import ValidationError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int

#: A split rule maps (points, rng) to a hyperplane (normal, offset):
#: points with ``x @ normal <= offset`` go left.
SplitRule = Callable[[np.ndarray, np.random.Generator], Tuple[np.ndarray, float]]

_TREE_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean", "sqeuclidean", "cosine"),
    probe_parameter="n_probes",
    supports_candidate_sets=True,
    trainable=True,
    reports_parameter_count=True,
    filterable=True,
)


@dataclass
class _SplitNode:
    normal: Optional[np.ndarray]
    offset: float


def pack_tree_nodes(
    nodes: List[Optional[_SplitNode]], margin_scales: List[float], dim: int
) -> dict:
    """Flatten a hyperplane tree's node list into dense numpy arrays.

    Shared by the tree indexes and the boosted forest so both serialise
    through the same npz layout.
    """
    n_internal = len(nodes)
    mask = np.zeros(n_internal, dtype=bool)
    normals = np.zeros((n_internal, dim), dtype=np.float64)
    offsets = np.zeros(n_internal, dtype=np.float64)
    for i, node in enumerate(nodes):
        if node is not None and node.normal is not None:
            mask[i] = True
            normals[i] = node.normal
            offsets[i] = node.offset
    return {
        "node_mask": mask,
        "node_normals": normals,
        "node_offsets": offsets,
        "margin_scales": np.asarray(margin_scales, dtype=np.float64),
    }


def unpack_tree_nodes(arrays: dict, prefix: str = "") -> Tuple[List[Optional[_SplitNode]], List[float]]:
    """Inverse of :func:`pack_tree_nodes` (``prefix`` selects npz keys)."""
    mask = arrays[f"{prefix}node_mask"]
    normals = arrays[f"{prefix}node_normals"]
    offsets = arrays[f"{prefix}node_offsets"]
    nodes: List[Optional[_SplitNode]] = [
        _SplitNode(normal=normals[i].copy(), offset=float(offsets[i])) if mask[i] else None
        for i in range(mask.shape[0])
    ]
    margin_scales = [float(v) for v in arrays[f"{prefix}margin_scales"]]
    return nodes, margin_scales


class HyperplaneTreeIndex(PartitionIndexBase):
    """Generic binary hyperplane partitioning tree."""

    #: Temperature for the soft routing probability at query time; the scale
    #: is relative to the node's margin spread, so it is data-independent.
    routing_temperature: float = 0.5

    def __init__(self, depth: int = 4, *, seed: SeedLike = None) -> None:
        super().__init__()
        self.depth = check_positive_int(depth, "depth")
        if self.depth > 16:
            raise ValidationError("depth > 16 would create too many leaves")
        self._rng = resolve_rng(seed)
        self._nodes: List[Optional[_SplitNode]] = []
        self._margin_scales: List[float] = []
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    # split rules (overridden by subclasses)
    # ------------------------------------------------------------------ #
    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "HyperplaneTreeIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        n_leaves = 2**self.depth
        n_internal = n_leaves - 1
        self._nodes = [None] * n_internal
        self._margin_scales = [1.0] * n_internal
        assignments = np.zeros(base.shape[0], dtype=np.int64)
        self._split(base, np.arange(base.shape[0]), 0, 0, assignments)
        self._finalize_build(base, assignments, n_leaves)
        self.build_seconds = time.perf_counter() - start
        return self

    def _split(
        self,
        base: np.ndarray,
        point_indices: np.ndarray,
        node_id: int,
        level: int,
        assignments: np.ndarray,
    ) -> None:
        if level == self.depth or point_indices.size == 0:
            return
        n_leaves_below = 2 ** (self.depth - level)
        half = n_leaves_below // 2
        points = base[point_indices]
        if point_indices.size < 4:
            left_mask = np.ones(point_indices.size, dtype=bool)
        else:
            normal, offset = self.split_rule(points, self._rng)
            margins = points @ normal - offset
            self._nodes[node_id] = _SplitNode(normal=normal, offset=offset)
            self._margin_scales[node_id] = float(np.std(margins) + 1e-12)
            left_mask = margins <= 0
            # Guard against degenerate splits sending everything one way.
            if left_mask.all() or not left_mask.any():
                median = np.median(margins)
                left_mask = margins <= median
        left = point_indices[left_mask]
        right = point_indices[~left_mask]
        assignments[right] += half
        self._split(base, left, 2 * node_id + 1, level + 1, assignments)
        self._split(base, right, 2 * node_id + 2, level + 1, assignments)

    # ------------------------------------------------------------------ #
    def bin_scores(self, queries: np.ndarray) -> np.ndarray:
        """Soft leaf probabilities from the per-node routing sigmoids."""
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        n_leaves = 2**self.depth
        scores = np.ones((queries.shape[0], n_leaves), dtype=np.float64)
        self._score(queries, 0, 0, 0, n_leaves, scores)
        return scores

    def _score(
        self,
        queries: np.ndarray,
        node_id: int,
        level: int,
        leaf_start: int,
        leaf_stop: int,
        scores: np.ndarray,
    ) -> None:
        if level == self.depth:
            return
        half = (leaf_stop - leaf_start) // 2
        node = self._nodes[node_id] if node_id < len(self._nodes) else None
        if node is None or node.normal is None:
            left_prob = np.full(queries.shape[0], 0.5)
        else:
            margins = queries @ node.normal - node.offset
            scale = self._margin_scales[node_id] * self.routing_temperature
            left_prob = 1.0 / (1.0 + np.exp(np.clip(margins / max(scale, 1e-12), -30, 30)))
        scores[:, leaf_start : leaf_start + half] *= left_prob[:, None]
        scores[:, leaf_start + half : leaf_stop] *= (1.0 - left_prob)[:, None]
        self._score(queries, 2 * node_id + 1, level + 1, leaf_start, leaf_start + half, scores)
        self._score(queries, 2 * node_id + 2, level + 1, leaf_start + half, leaf_stop, scores)

    def num_parameters(self) -> int:
        """Stored parameters: one hyperplane (normal + offset) per internal node."""
        self._require_built()
        return int(
            sum(node.normal.size + 1 for node in self._nodes if node is not None)
        )

    # ------------------------------------------------------------------ #
    def _extra_state(self):
        config = {"depth": int(self.depth), "build_seconds": self.build_seconds}
        return config, pack_tree_nodes(self._nodes, self._margin_scales, self.dim)

    @classmethod
    def _restore(cls, config, arrays, load_child):
        index = cls(int(config["depth"]))
        index._nodes, index._margin_scales = unpack_tree_nodes(arrays)
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index


@register_index(
    "pca-tree",
    capabilities=_TREE_CAPABILITIES,
    description="PCA tree: median split along the top principal component",
)
class PcaTreeIndex(HyperplaneTreeIndex):
    """PCA tree: split along the top principal component at the median."""

    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        centered = points - points.mean(axis=0)
        # Power iteration on the covariance: cheap and sufficient for the
        # leading component.
        direction = rng.normal(size=points.shape[1])
        direction /= np.linalg.norm(direction) + 1e-12
        for _ in range(15):
            direction = centered.T @ (centered @ direction)
            norm = np.linalg.norm(direction)
            if norm < 1e-12:
                direction = rng.normal(size=points.shape[1])
                norm = np.linalg.norm(direction)
            direction /= norm
        projections = points @ direction
        return direction, float(np.median(projections))


@register_index(
    "rp-tree",
    capabilities=_TREE_CAPABILITIES,
    description="Random-projection tree: random direction, median split",
)
class RandomProjectionTreeIndex(HyperplaneTreeIndex):
    """Random projection tree: random direction, median split."""

    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        direction = rng.normal(size=points.shape[1])
        direction /= np.linalg.norm(direction) + 1e-12
        projections = points @ direction
        return direction, float(np.median(projections))


@register_index(
    "kd-tree",
    capabilities=_TREE_CAPABILITIES,
    description="Learned KD-tree: axis of maximum variance, median split",
)
class KdTreeIndex(HyperplaneTreeIndex):
    """Learned KD-tree: axis of maximum variance, median split."""

    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        variances = points.var(axis=0)
        axis = int(variances.argmax())
        direction = np.zeros(points.shape[1])
        direction[axis] = 1.0
        return direction, float(np.median(points[:, axis]))


@register_index(
    "two-means-tree",
    capabilities=_TREE_CAPABILITIES,
    description="2-means tree: hyperplane bisecting the two 2-means centroids",
)
class TwoMeansTreeIndex(HyperplaneTreeIndex):
    """2-means tree: hyperplane bisecting the two 2-means centroids."""

    kmeans_iterations: int = 20

    def split_rule(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, float]:
        from .kmeans import KMeans

        model = KMeans(2, max_iterations=self.kmeans_iterations, seed=rng)
        model.fit(points)
        c0, c1 = model.centroids
        direction = c1 - c0
        norm = np.linalg.norm(direction)
        if norm < 1e-12:
            direction = rng.normal(size=points.shape[1])
            norm = np.linalg.norm(direction)
        direction /= norm
        midpoint = 0.5 * (c0 + c1)
        return direction, float(midpoint @ direction)

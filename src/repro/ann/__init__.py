"""ANNS back-ends: brute force, quantization codecs, IVF, HNSW, ScaNN."""

from .bruteforce import BruteForceIndex
from .pq import ProductQuantizer
from .anisotropic import AnisotropicQuantizer, anisotropic_distortion
from .ivf import IVFFlatIndex, IVFPQIndex
from .hnsw import HnswIndex
from .scann import ScannSearcher, kmeans_scann, usp_scann, vanilla_scann

__all__ = [
    "BruteForceIndex",
    "ProductQuantizer",
    "AnisotropicQuantizer",
    "anisotropic_distortion",
    "IVFFlatIndex",
    "IVFPQIndex",
    "HnswIndex",
    "ScannSearcher",
    "kmeans_scann",
    "usp_scann",
    "vanilla_scann",
]

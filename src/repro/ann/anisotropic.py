"""Anisotropic (score-aware) vector quantization — the ScaNN codec.

ScaNN (Guo et al., ICML 2020) observes that for maximum-inner-product /
nearest-neighbour *ranking*, quantization error parallel to the datapoint
matters more than error orthogonal to it, because the parallel component is
what perturbs the score of the pairs that are close to the query.  Its
anisotropic loss therefore weights the parallel residual by ``eta > 1``:

    loss(x, c) = eta * ||r_parallel||^2 + ||r_orthogonal||^2

where ``r = x - c`` is decomposed relative to the direction of ``x``.

This module implements a product-quantized codec trained under that loss:
codeword *assignment* uses the anisotropic distortion, and the codebook
*update* solves the corresponding weighted least-squares problem
approximately by averaging (exact for the isotropic part; the anisotropic
correction primarily changes the assignment boundaries, which is where the
ranking benefit comes from).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.exceptions import NotFittedError, ValidationError
from ..utils.rng import SeedLike
from ..utils.validation import as_float_matrix, check_positive_int
from .pq import ProductQuantizer


def anisotropic_distortion(
    points: np.ndarray, reconstructions: np.ndarray, eta: float
) -> np.ndarray:
    """Per-point anisotropic loss between points and their reconstructions."""
    points = np.atleast_2d(points)
    reconstructions = np.atleast_2d(reconstructions)
    residual = points - reconstructions
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    directions = np.divide(points, norms, out=np.zeros_like(points), where=norms > 0)
    parallel_mag = np.einsum("ij,ij->i", residual, directions)
    parallel_sq = parallel_mag**2
    total_sq = np.einsum("ij,ij->i", residual, residual)
    orthogonal_sq = np.maximum(total_sq - parallel_sq, 0.0)
    return eta * parallel_sq + orthogonal_sq


class AnisotropicQuantizer:
    """Product quantizer trained with the anisotropic (score-aware) loss.

    Parameters
    ----------
    n_subspaces, n_codewords:
        Product-quantization geometry (as in :class:`ProductQuantizer`).
    eta:
        Weight of the parallel residual (ScaNN's anisotropic weight);
        ``eta = 1`` reduces to plain PQ.
    iterations:
        Alternating assignment/update iterations.
    """

    def __init__(
        self,
        n_subspaces: int = 8,
        n_codewords: int = 16,
        *,
        eta: float = 4.0,
        iterations: int = 10,
        seed: SeedLike = None,
    ) -> None:
        self.n_subspaces = check_positive_int(n_subspaces, "n_subspaces")
        self.n_codewords = check_positive_int(n_codewords, "n_codewords")
        if eta < 1.0:
            raise ValidationError(f"eta must be >= 1, got {eta}")
        self.eta = float(eta)
        self.iterations = check_positive_int(iterations, "iterations")
        self.seed = seed
        self.codebooks: Optional[np.ndarray] = None
        self._sub_dim: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> "AnisotropicQuantizer":
        """Alternate anisotropic assignment and codebook refitting."""
        points = as_float_matrix(points)
        dim = points.shape[1]
        if dim % self.n_subspaces != 0:
            raise ValidationError(
                f"dimensionality {dim} is not divisible by n_subspaces={self.n_subspaces}"
            )
        self._sub_dim = dim // self.n_subspaces
        n_codewords = min(self.n_codewords, points.shape[0])

        # Warm start from a plain product quantizer.
        warm = ProductQuantizer(
            self.n_subspaces, n_codewords, kmeans_iterations=10, seed=self.seed
        ).fit(points)
        codebooks = warm.codebooks.copy()

        for _ in range(self.iterations):
            codes = self._assign(points, codebooks)
            codebooks = self._update(points, codes, codebooks)
        self.codebooks = codebooks
        return self

    def build(self, points: np.ndarray) -> "AnisotropicQuantizer":
        """Deprecated alias for :meth:`fit` (codecs fit, indexes build)."""
        import warnings

        warnings.warn(
            "AnisotropicQuantizer.build() is deprecated; use fit()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fit(points)

    def _require_fitted(self) -> None:
        if self.codebooks is None:
            raise NotFittedError("AnisotropicQuantizer has not been fitted yet")

    def _subvector(self, points: np.ndarray, subspace: int) -> np.ndarray:
        start = subspace * self._sub_dim
        return points[:, start : start + self._sub_dim]

    def _assign(self, points: np.ndarray, codebooks: np.ndarray) -> np.ndarray:
        """Assign each sub-vector to the codeword minimising the anisotropic loss."""
        n = points.shape[0]
        codes = np.empty((n, self.n_subspaces), dtype=np.int32)
        for s in range(self.n_subspaces):
            chunk = self._subvector(points, s)
            cb = codebooks[s]
            residual_sq = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                - 2.0 * chunk @ cb.T
                + np.einsum("ij,ij->i", cb, cb)[None, :]
            )
            # Parallel component of the residual w.r.t. the sub-vector itself.
            norms = np.linalg.norm(chunk, axis=1, keepdims=True)
            directions = np.divide(
                chunk, norms, out=np.zeros_like(chunk), where=norms > 0
            )
            parallel = (
                np.einsum("ij,ij->i", chunk, directions)[:, None]
                - directions @ cb.T
            ) ** 2
            orthogonal = np.maximum(residual_sq - parallel, 0.0)
            loss = self.eta * parallel + orthogonal
            codes[:, s] = loss.argmin(axis=1)
        return codes

    def _update(
        self, points: np.ndarray, codes: np.ndarray, codebooks: np.ndarray
    ) -> np.ndarray:
        """Refit every codeword as the mean of its assigned sub-vectors."""
        new_codebooks = codebooks.copy()
        for s in range(self.n_subspaces):
            chunk = self._subvector(points, s)
            assignment = codes[:, s]
            for c in range(codebooks.shape[1]):
                mask = assignment == c
                if mask.any():
                    new_codebooks[s, c] = chunk[mask].mean(axis=0)
        return new_codebooks

    # ------------------------------------------------------------------ #
    def encode(self, points: np.ndarray) -> np.ndarray:
        """Quantize points under the anisotropic assignment rule."""
        self._require_fitted()
        return self._assign(as_float_matrix(points), self.codebooks)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        parts = [self.codebooks[s][codes[:, s]] for s in range(self.n_subspaces)]
        return np.concatenate(parts, axis=1)

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared Euclidean distances via ADC lookup tables."""
        self._require_fitted()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        codes = np.asarray(codes, dtype=np.int64)
        total = np.zeros(codes.shape[0], dtype=np.float64)
        for s in range(self.n_subspaces):
            start = s * self._sub_dim
            sub_query = query[start : start + self._sub_dim]
            diff = self.codebooks[s] - sub_query
            table = np.einsum("ij,ij->i", diff, diff)
            total += table[codes[:, s]]
        return total

    def anisotropic_error(self, points: np.ndarray) -> float:
        """Mean anisotropic distortion of ``points`` under this codec."""
        points = as_float_matrix(points)
        reconstructed = self.decode(self.encode(points))
        return float(anisotropic_distortion(points, reconstructed, self.eta).mean())

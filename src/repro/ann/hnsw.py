"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018).

HNSW is the graph-based ANN baseline of Figure 7.  The implementation
follows the paper's Algorithms 1–5: points are inserted into a multi-layer
proximity graph; search descends greedily from the top layer and runs a
best-first beam (``ef``) search on the bottom layer.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..api.registry import register_index
from ..utils.exceptions import NotFittedError, ValidationError
from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int


@register_index(
    "hnsw",
    capabilities=IndexCapabilities(
        metrics=("euclidean",),
        probe_parameter="ef",
        trainable=False,
        shardable=True,
        filterable=True,
    ),
    description="Hierarchical navigable small-world graph (Malkov & Yashunin 2018)",
)
class HnswIndex(RegisteredIndex):
    """Hierarchical navigable small-world graph index.

    Parameters
    ----------
    m:
        Maximum number of neighbours per node on the upper layers (the
        bottom layer allows ``2 * m``).
    ef_construction:
        Beam width used while inserting points.
    ef_search:
        Default beam width used while querying (can be overridden per call).
    seed:
        Seed for the level sampling.
    """

    def __init__(
        self,
        m: int = 16,
        *,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: SeedLike = None,
    ) -> None:
        self.m = check_positive_int(m, "m")
        self.ef_construction = check_positive_int(ef_construction, "ef_construction")
        self.ef_search = check_positive_int(ef_search, "ef_search")
        self._rng = resolve_rng(seed)
        self._base: Optional[np.ndarray] = None
        self._levels: Optional[np.ndarray] = None
        self._graphs: List[Dict[int, List[int]]] = []
        self._entry_point: Optional[int] = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        return self._base is not None

    def _require_built(self) -> None:
        if self._base is None:
            raise NotFittedError("HnswIndex has not been built yet")

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._base.shape[1])

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._base.shape[0])

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "HnswIndex":
        """Insert every point of ``base`` into the layered graph."""
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        self._base = base
        n = base.shape[0]
        level_mult = 1.0 / np.log(self.m)
        self._levels = np.floor(
            -np.log(np.clip(self._rng.random(n), 1e-12, 1.0)) * level_mult
        ).astype(np.int64)
        max_level = int(self._levels.max())
        self._graphs = [dict() for _ in range(max_level + 1)]
        self._entry_point = None
        for point_id in range(n):
            self._insert(point_id)
        self.build_seconds = time.perf_counter() - start
        return self

    def _distance(self, query: np.ndarray, ids) -> np.ndarray:
        vectors = self._base[np.asarray(ids, dtype=np.int64)]
        diff = vectors - query
        return np.einsum("ij,ij->i", diff, diff)

    def _insert(self, point_id: int) -> None:
        point = self._base[point_id]
        level = int(self._levels[point_id])
        for layer in range(level + 1):
            self._graphs[layer].setdefault(point_id, [])
        if self._entry_point is None:
            self._entry_point = point_id
            return
        entry = self._entry_point
        top_level = int(self._levels[self._entry_point])
        # Greedy descent through layers above the node's level.
        for layer in range(top_level, level, -1):
            entry = self._greedy_search(point, entry, layer)
        # Beam search + connect on the node's layers.
        for layer in range(min(level, top_level), -1, -1):
            candidates = self._search_layer(point, [entry], layer, self.ef_construction)
            max_degree = self.m if layer > 0 else 2 * self.m
            neighbors = self._select_neighbors(point, candidates, max_degree)
            graph = self._graphs[layer]
            graph[point_id] = list(neighbors)
            for neighbor in neighbors:
                links = graph.setdefault(neighbor, [])
                links.append(point_id)
                if len(links) > max_degree:
                    pruned = self._select_neighbors(
                        self._base[neighbor], links, max_degree
                    )
                    graph[neighbor] = list(pruned)
            if candidates:
                entry = candidates[0][1]
        if level > top_level:
            self._entry_point = point_id

    def _greedy_search(self, query: np.ndarray, entry: int, layer: int) -> int:
        current = entry
        current_dist = float(self._distance(query, [current])[0])
        improved = True
        graph = self._graphs[layer]
        while improved:
            improved = False
            neighbors = graph.get(current, [])
            if not neighbors:
                break
            dists = self._distance(query, neighbors)
            best = int(dists.argmin())
            if dists[best] < current_dist:
                current = neighbors[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: List[int], layer: int, ef: int
    ) -> List[Tuple[float, int]]:
        """Best-first search on one layer; returns (distance, id) sorted ascending."""
        graph = self._graphs[layer]
        visited = set(entries)
        entry_dists = self._distance(query, entries)
        candidates = [(float(d), int(e)) for d, e in zip(entry_dists, entries)]
        heapq.heapify(candidates)  # min-heap by distance
        results = [(-float(d), int(e)) for d, e in zip(entry_dists, entries)]
        heapq.heapify(results)  # max-heap (negated) of the best ef
        while candidates:
            dist, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if dist > worst and len(results) >= ef:
                break
            neighbors = [n for n in graph.get(node, []) if n not in visited]
            if not neighbors:
                continue
            visited.update(neighbors)
            dists = self._distance(query, neighbors)
            for d, n in zip(dists, neighbors):
                d = float(d)
                if len(results) < ef or d < -results[0][0]:
                    heapq.heappush(candidates, (d, int(n)))
                    heapq.heappush(results, (-d, int(n)))
                    if len(results) > ef:
                        heapq.heappop(results)
        ordered = sorted((-d, n) for d, n in results)
        return [(d, n) for d, n in ordered]

    def _select_neighbors(
        self, point: np.ndarray, candidates, max_degree: int
    ) -> List[int]:
        """Heuristic neighbour selection (HNSW Algorithm 4).

        Candidates are considered closest-first; a candidate is kept only if
        it is closer to ``point`` than to every already-selected neighbour.
        This keeps links pointing in diverse directions, which is what makes
        greedy search able to hop between clusters.  If the diversity filter
        leaves spare degree, the nearest rejected candidates fill it up.
        """
        if candidates and isinstance(candidates[0], tuple):
            ids = [c[1] for c in candidates]
        else:
            ids = list(candidates)
        if not ids:
            return []
        ids = list(dict.fromkeys(int(i) for i in ids))
        id_array = np.asarray(ids, dtype=np.int64)
        dists = self._distance(point, id_array)
        order = np.argsort(dists)
        # Pairwise distances among candidates, computed once so the
        # diversity filter below is O(c^2) array lookups, not repeated
        # distance evaluations.
        vectors = self._base[id_array]
        sq_norms = np.einsum("ij,ij->i", vectors, vectors)
        pairwise = sq_norms[:, None] - 2.0 * (vectors @ vectors.T) + sq_norms[None, :]
        selected_ranks: List[int] = []
        rejected_ranks: List[int] = []
        for rank in order:
            rank = int(rank)
            if len(selected_ranks) >= max_degree:
                break
            if not selected_ranks:
                selected_ranks.append(rank)
                continue
            dist_to_point = float(dists[rank])
            dist_to_selected = pairwise[rank, selected_ranks].min()
            if dist_to_selected < dist_to_point:
                rejected_ranks.append(rank)
            else:
                selected_ranks.append(rank)
        for rank in rejected_ranks:
            if len(selected_ranks) >= max_degree:
                break
            selected_ranks.append(rank)
        return [ids[rank] for rank in selected_ranks]

    # ------------------------------------------------------------------ #
    def query(
        self,
        query: np.ndarray,
        k: int = 10,
        *,
        ef: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate ``k`` nearest neighbours of one query."""
        self._require_built()
        if filter is not None:
            ids, dists = self.batch_query(
                np.atleast_2d(np.asarray(query, dtype=np.float64)),
                k,
                ef=ef,
                filter=filter,
            )
            return ids[0], dists[0]
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValidationError("query dimensionality mismatch")
        ef = max(k, ef or self.ef_search)
        entry = self._entry_point
        for layer in range(len(self._graphs) - 1, 0, -1):
            entry = self._greedy_search(query, entry, layer)
        results = self._search_layer(query, [entry], 0, ef)[:k]
        indices = np.full(k, -1, dtype=np.int64)
        distances = np.full(k, np.inf)
        for i, (dist, node) in enumerate(results):
            indices[i] = node
            distances[i] = np.sqrt(dist)
        return indices, distances

    def batch_query(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        ef: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        if filter is not None:
            # Graph traversal cannot skip nodes without breaking
            # reachability, so the planner post-filters with adaptive
            # over-fetch (ef widens with the fetch size) or, for highly
            # selective predicates, brute-forces the surviving subset.
            kwargs = {} if ef is None else {"ef": int(ef)}
            return self._filtered_batch_query(queries, k, filter, **kwargs)
        indices = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        for i, query in enumerate(queries):
            indices[i], distances[i] = self.query(query, k, ef=ef)
        return indices, distances

    # ------------------------------------------------------------------ #
    # persistence: each layer is stored as a node array plus an edge array
    # in adjacency-list order, so the rebuilt graphs iterate identically
    # ------------------------------------------------------------------ #
    def _state(self):
        config = {
            "m": int(self.m),
            "ef_construction": int(self.ef_construction),
            "ef_search": int(self.ef_search),
            "entry_point": int(self._entry_point),
            "n_layers": int(len(self._graphs)),
            "build_seconds": self.build_seconds,
        }
        arrays = {"__base__": self._base, "levels": self._levels}
        for layer, graph in enumerate(self._graphs):
            nodes = np.fromiter(graph.keys(), dtype=np.int64, count=len(graph))
            edges = [
                (node, neighbor) for node, links in graph.items() for neighbor in links
            ]
            arrays[f"layer{layer}.nodes"] = nodes
            arrays[f"layer{layer}.edges"] = np.asarray(edges, dtype=np.int64).reshape(
                -1, 2
            )
        return config, arrays, {}

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(
            int(config["m"]),
            ef_construction=int(config["ef_construction"]),
            ef_search=int(config["ef_search"]),
        )
        index._base = arrays["__base__"]
        index._levels = arrays["levels"]
        index._entry_point = int(config["entry_point"])
        index._graphs = []
        for layer in range(int(config["n_layers"])):
            graph: Dict[int, List[int]] = {
                int(node): [] for node in arrays[f"layer{layer}.nodes"]
            }
            for node, neighbor in arrays[f"layer{layer}.edges"]:
                graph[int(node)].append(int(neighbor))
            index._graphs.append(graph)
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

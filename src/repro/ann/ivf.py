"""IVF and IVF-PQ indexes (the FAISS baseline of Figure 7).

An inverted-file (IVF) index clusters the dataset with a coarse K-means
quantizer; each query probes the ``n_probes`` nearest cells and scans only
their points.  ``IVFFlat`` scans raw vectors (exact distances within the
probed cells); ``IVFPQ`` scans product-quantized residual codes with ADC
lookup tables and then re-ranks a shortlist exactly, matching the structure
of ``faiss.IndexIVFPQ``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..api.registry import register_index
from ..baselines.kmeans import KMeans
from ..utils.distances import squared_euclidean
from ..utils.exceptions import NotFittedError, ValidationError
from ..utils.rng import SeedLike
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int
from .pq import ProductQuantizer

_IVF_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean",),
    probe_parameter="n_probes",
    trainable=True,
    shardable=True,
    filterable=True,
)


@register_index(
    "ivf-flat",
    capabilities=_IVF_CAPABILITIES,
    description="Inverted-file index with exact in-cell distances",
)
class IVFFlatIndex(RegisteredIndex):
    """Inverted file index with exact in-cell distances."""

    def __init__(
        self,
        n_lists: int = 64,
        *,
        kmeans_iterations: int = 25,
        seed: SeedLike = None,
    ) -> None:
        self.n_lists = check_positive_int(n_lists, "n_lists")
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self._base: Optional[np.ndarray] = None
        self._centroids: Optional[np.ndarray] = None
        self._lists: Optional[List[np.ndarray]] = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "IVFFlatIndex":
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        n_lists = min(self.n_lists, base.shape[0])
        coarse = KMeans(n_lists, max_iterations=self.kmeans_iterations, seed=self.seed)
        coarse.fit(base)
        self._base = base
        self._centroids = coarse.centroids
        labels = coarse.labels
        self._lists = [np.where(labels == i)[0] for i in range(n_lists)]
        self.build_seconds = time.perf_counter() - start
        return self

    def _require_built(self) -> None:
        if self._base is None:
            raise NotFittedError(f"{type(self).__name__} has not been built yet")

    @property
    def is_built(self) -> bool:
        return self._base is not None

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._base.shape[1])

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._base.shape[0])

    def list_sizes(self) -> np.ndarray:
        self._require_built()
        return np.array([len(lst) for lst in self._lists], dtype=np.int64)

    # ------------------------------------------------------------------ #
    def _probed_candidates(self, query: np.ndarray, n_probes: int) -> np.ndarray:
        cell_distances = squared_euclidean(query[None, :], self._centroids)[0]
        probe_order = np.argsort(cell_distances)[:n_probes]
        buckets = [self._lists[c] for c in probe_order if len(self._lists[c])]
        if not buckets:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(buckets)

    def query(
        self, query: np.ndarray, k: int = 10, *, n_probes: int = 4, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate ``k`` nearest neighbours of one query."""
        self._require_built()
        if filter is not None:
            ids, dists = self.batch_query(
                np.atleast_2d(np.asarray(query, dtype=np.float64)),
                k,
                n_probes=n_probes,
                filter=filter,
            )
            return ids[0], dists[0]
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValidationError("query dimensionality mismatch")
        n_probes = min(check_positive_int(n_probes, "n_probes"), len(self._lists))
        candidates = self._probed_candidates(query, n_probes)
        if candidates.size == 0:
            return np.full(k, -1, dtype=np.int64), np.full(k, np.inf)
        distances = squared_euclidean(query[None, :], self._base[candidates])[0]
        top = min(k, candidates.size)
        part = np.argpartition(distances, kth=top - 1)[:top]
        order = part[np.argsort(distances[part], kind="stable")]
        indices = np.full(k, -1, dtype=np.int64)
        dists = np.full(k, np.inf)
        indices[:top] = candidates[order]
        dists[:top] = np.sqrt(distances[order])
        return indices, dists

    def batch_query(
        self, queries: np.ndarray, k: int = 10, *, n_probes: int = 4, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        if filter is not None:
            return self._filtered_batch_query(queries, k, filter, n_probes=int(n_probes))
        indices = np.full((queries.shape[0], k), -1, dtype=np.int64)
        distances = np.full((queries.shape[0], k), np.inf)
        for i, query in enumerate(queries):
            indices[i], distances[i] = self.query(query, k, n_probes=n_probes)
        return indices, distances

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _cell_labels(self) -> np.ndarray:
        labels = np.empty(self.n_points, dtype=np.int64)
        for cell, members in enumerate(self._lists):
            labels[members] = cell
        return labels

    def _state(self):
        config = {
            "n_lists": int(self.n_lists),
            "kmeans_iterations": int(self.kmeans_iterations),
            "build_seconds": self.build_seconds,
        }
        arrays = {
            "__base__": self._base,
            "centroids": self._centroids,
            "labels": self._cell_labels(),
        }
        return config, arrays, {}

    def _restore_lists(self, arrays) -> None:
        self._base = arrays["__base__"]
        self._centroids = arrays["centroids"]
        labels = arrays["labels"]
        self._lists = [
            np.where(labels == i)[0] for i in range(self._centroids.shape[0])
        ]

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(
            int(config["n_lists"]),
            kmeans_iterations=int(config["kmeans_iterations"]),
        )
        index._restore_lists(arrays)
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index


@register_index(
    "ivf-pq",
    capabilities=_IVF_CAPABILITIES,
    description="IVF with product-quantized residuals (the FAISS baseline)",
)
class IVFPQIndex(IVFFlatIndex):
    """IVF with product-quantized residuals and exact re-ranking.

    ``rerank_factor * k`` ADC candidates are re-ranked with exact distances,
    as FAISS does when refinement is enabled.
    """

    def __init__(
        self,
        n_lists: int = 64,
        *,
        n_subspaces: int = 8,
        n_codewords: int = 256,
        rerank_factor: int = 4,
        kmeans_iterations: int = 25,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(n_lists, kmeans_iterations=kmeans_iterations, seed=seed)
        self.n_subspaces = check_positive_int(n_subspaces, "n_subspaces")
        self.n_codewords = check_positive_int(n_codewords, "n_codewords")
        self.rerank_factor = check_positive_int(rerank_factor, "rerank_factor")
        self._pq: Optional[ProductQuantizer] = None
        self._codes: Optional[np.ndarray] = None

    def build(self, base: np.ndarray) -> "IVFPQIndex":
        super().build(base)
        import time

        start = time.perf_counter()
        labels = np.empty(self.n_points, dtype=np.int64)
        for cell, members in enumerate(self._lists):
            labels[members] = cell
        residuals = self._base - self._centroids[labels]
        self._pq = ProductQuantizer(
            self.n_subspaces,
            self.n_codewords,
            kmeans_iterations=self.kmeans_iterations,
            seed=self.seed,
        ).fit(residuals)
        self._codes = self._pq.encode(residuals)
        self._cell_of = labels
        self.build_seconds += time.perf_counter() - start
        return self

    def query(
        self, query: np.ndarray, k: int = 10, *, n_probes: int = 4, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        self._require_built()
        if self._pq is None:
            raise NotFittedError("IVFPQIndex has not been built yet")
        if filter is not None:
            ids, dists = self.batch_query(
                np.atleast_2d(np.asarray(query, dtype=np.float64)),
                k,
                n_probes=n_probes,
                filter=filter,
            )
            return ids[0], dists[0]
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        n_probes = min(check_positive_int(n_probes, "n_probes"), len(self._lists))
        cell_distances = squared_euclidean(query[None, :], self._centroids)[0]
        probe_order = np.argsort(cell_distances)[:n_probes]

        candidate_ids: List[np.ndarray] = []
        candidate_scores: List[np.ndarray] = []
        for cell in probe_order:
            members = self._lists[cell]
            if len(members) == 0:
                continue
            residual_query = query - self._centroids[cell]
            scores = self._pq.adc_distances(residual_query, self._codes[members])
            candidate_ids.append(members)
            candidate_scores.append(scores)
        if not candidate_ids:
            return np.full(k, -1, dtype=np.int64), np.full(k, np.inf)
        ids = np.concatenate(candidate_ids)
        scores = np.concatenate(candidate_scores)

        shortlist_size = min(len(ids), max(k, self.rerank_factor * k))
        part = np.argpartition(scores, kth=shortlist_size - 1)[:shortlist_size]
        shortlist = ids[part]
        exact = squared_euclidean(query[None, :], self._base[shortlist])[0]
        top = min(k, shortlist.size)
        best = np.argpartition(exact, kth=top - 1)[:top]
        order = best[np.argsort(exact[best], kind="stable")]
        indices = np.full(k, -1, dtype=np.int64)
        dists = np.full(k, np.inf)
        indices[:top] = shortlist[order]
        dists[:top] = np.sqrt(exact[order])
        return indices, dists

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _state(self):
        config, arrays, children = super()._state()
        config.update(
            {
                "n_subspaces": int(self.n_subspaces),
                "n_codewords": int(self.n_codewords),
                "rerank_factor": int(self.rerank_factor),
            }
        )
        arrays["pq.codebooks"] = self._pq.codebooks
        arrays["pq.codes"] = self._codes
        return config, arrays, children

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(
            int(config["n_lists"]),
            n_subspaces=int(config["n_subspaces"]),
            n_codewords=int(config["n_codewords"]),
            rerank_factor=int(config["rerank_factor"]),
            kmeans_iterations=int(config["kmeans_iterations"]),
        )
        index._restore_lists(arrays)
        codebooks = arrays["pq.codebooks"]
        pq = ProductQuantizer(codebooks.shape[0], codebooks.shape[1])
        pq.codebooks = codebooks
        pq._sub_dim = int(codebooks.shape[2])
        index._pq = pq
        index._codes = arrays["pq.codes"]
        index._cell_of = arrays["labels"]
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index

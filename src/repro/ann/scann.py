"""ScaNN-style searcher and the USP + ScaNN pipeline (Figure 7).

ScaNN's online pipeline is: (optional) partition pruning -> scan of
anisotropically quantized codes -> exact re-ranking of a shortlist.  The
paper plugs its unsupervised partitioner in front of that pipeline
("USP + ScaNN") and compares against vanilla ScaNN (no partitioner),
K-means + ScaNN, HNSW, and FAISS IVF-PQ.

:class:`ScannSearcher` accepts any partitioner that follows the
``build`` / ``candidate_sets`` protocol shared by every index in
:mod:`repro.core` and :mod:`repro.baselines`, so the exact pipelines of the
figure are one-liners (see :func:`vanilla_scann`, :func:`kmeans_scann`,
:func:`usp_scann`).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..api.registry import register_index
from ..baselines.kmeans import KMeansIndex
from ..core.config import EnsembleConfig, UspConfig
from ..core.ensemble import UspEnsembleIndex
from ..core.index import UspIndex
from ..utils.distances import squared_euclidean
from ..utils.exceptions import NotFittedError
from ..utils.rng import SeedLike
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int
from .anisotropic import AnisotropicQuantizer


class PartitionerProtocol(Protocol):
    """Anything that can produce per-query candidate sets over a base set."""

    is_built: bool

    def build(self, base: np.ndarray):  # pragma: no cover - protocol
        ...

    def candidate_sets(self, queries: np.ndarray, n_probes: int) -> List[np.ndarray]:  # pragma: no cover
        ...


class ScannSearcher(RegisteredIndex):
    """Partition -> anisotropic-quantized scan -> exact re-rank pipeline.

    Parameters
    ----------
    partitioner:
        Optional partition index (USP, K-means, ...) used to prune the
        dataset before the quantized scan.  ``None`` reproduces "vanilla
        ScaNN": every query scans all quantized codes.
    n_subspaces, n_codewords, anisotropic_eta:
        Codec geometry (see :class:`~repro.ann.anisotropic.AnisotropicQuantizer`).
    rerank_factor:
        The ``rerank_factor * k`` best quantized candidates are re-ranked
        with exact distances.
    """

    def __init__(
        self,
        partitioner: Optional[PartitionerProtocol] = None,
        *,
        n_subspaces: int = 8,
        n_codewords: int = 16,
        anisotropic_eta: float = 4.0,
        rerank_factor: int = 8,
        seed: SeedLike = None,
    ) -> None:
        self.partitioner = partitioner
        self.n_subspaces = check_positive_int(n_subspaces, "n_subspaces")
        self.n_codewords = check_positive_int(n_codewords, "n_codewords")
        self.anisotropic_eta = float(anisotropic_eta)
        self.rerank_factor = check_positive_int(rerank_factor, "rerank_factor")
        self.seed = seed
        self._base: Optional[np.ndarray] = None
        self._codec: Optional[AnisotropicQuantizer] = None
        self._codes: Optional[np.ndarray] = None
        self.build_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "ScannSearcher":
        """Build the partitioner (if any), train the codec, and encode the base."""
        import time

        start = time.perf_counter()
        base = as_float_matrix(base, name="base")
        if self.partitioner is not None and not getattr(self.partitioner, "is_built", False):
            self.partitioner.build(base)
        dim = base.shape[1]
        n_subspaces = self.n_subspaces
        if dim % n_subspaces != 0:
            # Choose the largest divisor of dim not exceeding the request, so
            # arbitrary dimensionalities work out of the box.
            n_subspaces = max(d for d in range(1, n_subspaces + 1) if dim % d == 0)
        self._codec = AnisotropicQuantizer(
            n_subspaces,
            self.n_codewords,
            eta=self.anisotropic_eta,
            seed=self.seed,
        ).fit(base)
        self._codes = self._codec.encode(base)
        self._base = base
        self.build_seconds = time.perf_counter() - start
        return self

    def _require_built(self) -> None:
        if self._base is None or self._codec is None:
            raise NotFittedError("ScannSearcher has not been built yet")

    @property
    def is_built(self) -> bool:
        return self._base is not None

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._base.shape[1])

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._base.shape[0])

    # ------------------------------------------------------------------ #
    def _candidates(self, queries: np.ndarray, n_probes: int) -> List[np.ndarray]:
        if self.partitioner is None:
            everything = np.arange(self.n_points, dtype=np.int64)
            return [everything for _ in range(queries.shape[0])]
        return self.partitioner.candidate_sets(queries, n_probes)

    def batch_query(
        self, queries: np.ndarray, k: int = 10, *, n_probes: int = 2, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate ``k``-NN for every query row."""
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        check_positive_int(k, "k")
        if filter is not None:
            return self._filtered_batch_query(queries, k, filter, n_probes=int(n_probes))
        candidates_per_query = self._candidates(queries, n_probes)
        out_indices = np.full((queries.shape[0], k), -1, dtype=np.int64)
        out_distances = np.full((queries.shape[0], k), np.inf)
        for i, candidates in enumerate(candidates_per_query):
            candidates = np.asarray(candidates, dtype=np.int64)
            if candidates.size == 0:
                continue
            scores = self._codec.adc_distances(queries[i], self._codes[candidates])
            shortlist_size = min(candidates.size, max(k, self.rerank_factor * k))
            part = np.argpartition(scores, kth=shortlist_size - 1)[:shortlist_size]
            shortlist = candidates[part]
            exact = squared_euclidean(queries[i : i + 1], self._base[shortlist])[0]
            top = min(k, shortlist.size)
            best = np.argpartition(exact, kth=top - 1)[:top]
            order = best[np.argsort(exact[best], kind="stable")]
            out_indices[i, :top] = shortlist[order]
            out_distances[i, :top] = np.sqrt(exact[order])
        return out_indices, out_distances

    def query(
        self, query: np.ndarray, k: int = 10, *, n_probes: int = 2, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, distances = self.batch_query(
            np.atleast_2d(query), k, n_probes=n_probes, filter=filter
        )
        return indices[0], distances[0]

    # ------------------------------------------------------------------ #
    # persistence: the codec arrays live here, the partitioner (if any) is
    # a nested saved index dispatched through its own registry name
    # ------------------------------------------------------------------ #
    def _state(self):
        config = {
            "n_subspaces": int(self.n_subspaces),
            "n_codewords": int(self.n_codewords),
            "anisotropic_eta": float(self.anisotropic_eta),
            "rerank_factor": int(self.rerank_factor),
            "build_seconds": self.build_seconds,
            "has_partitioner": self.partitioner is not None,
        }
        arrays = {
            "__base__": self._base,
            "codes": self._codes,
            "codec.codebooks": self._codec.codebooks,
        }
        children = {}
        if self.partitioner is not None:
            children["partitioner"] = self.partitioner
        return config, arrays, children

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        partitioner = load_child("partitioner") if config.get("has_partitioner") else None
        searcher = cls(
            partitioner,
            n_subspaces=int(config["n_subspaces"]),
            n_codewords=int(config["n_codewords"]),
            anisotropic_eta=float(config["anisotropic_eta"]),
            rerank_factor=int(config["rerank_factor"]),
        )
        codebooks = arrays["codec.codebooks"]
        codec = AnisotropicQuantizer(
            codebooks.shape[0],
            codebooks.shape[1],
            eta=float(config["anisotropic_eta"]),
        )
        codec.codebooks = codebooks
        codec._sub_dim = int(codebooks.shape[2])
        searcher._codec = codec
        searcher._codes = arrays["codes"]
        searcher._base = arrays["__base__"]
        searcher.build_seconds = float(config.get("build_seconds", 0.0))
        return searcher


# ---------------------------------------------------------------------- #
# The three pipelines compared in Figure 7
# ---------------------------------------------------------------------- #
def vanilla_scann(
    *,
    n_subspaces: int = 8,
    n_codewords: int = 16,
    anisotropic_eta: float = 4.0,
    rerank_factor: int = 8,
    seed: SeedLike = None,
) -> ScannSearcher:
    """ScaNN without any partitioning: full quantized scan + re-rank."""
    return ScannSearcher(
        None,
        n_subspaces=n_subspaces,
        n_codewords=n_codewords,
        anisotropic_eta=anisotropic_eta,
        rerank_factor=rerank_factor,
        seed=seed,
    )


def kmeans_scann(
    n_bins: int = 16,
    *,
    n_subspaces: int = 8,
    n_codewords: int = 16,
    anisotropic_eta: float = 4.0,
    rerank_factor: int = 8,
    seed: SeedLike = None,
) -> ScannSearcher:
    """K-means partitioning in front of the ScaNN codec ("K-means + ScaNN")."""
    return ScannSearcher(
        KMeansIndex(n_bins, seed=seed),
        n_subspaces=n_subspaces,
        n_codewords=n_codewords,
        anisotropic_eta=anisotropic_eta,
        rerank_factor=rerank_factor,
        seed=seed,
    )


def usp_scann(
    config: Optional[UspConfig] = None,
    *,
    ensemble: Optional[EnsembleConfig] = None,
    n_subspaces: int = 8,
    n_codewords: int = 16,
    anisotropic_eta: float = 4.0,
    rerank_factor: int = 8,
    seed: SeedLike = None,
) -> ScannSearcher:
    """The paper's USP + ScaNN pipeline.

    Pass either a :class:`UspConfig` (single model) or an
    :class:`EnsembleConfig` (boosted ensemble partitioner).
    """
    if ensemble is not None:
        partitioner: PartitionerProtocol = UspEnsembleIndex(ensemble)
    else:
        partitioner = UspIndex(config or UspConfig())
    return ScannSearcher(
        partitioner,
        n_subspaces=n_subspaces,
        n_codewords=n_codewords,
        anisotropic_eta=anisotropic_eta,
        rerank_factor=rerank_factor,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Registry entries: the Figure 7 pipelines are registered *configurations*
# of ScannSearcher rather than ad-hoc helper functions, so harnesses can
# construct them by name like any other index.
# ---------------------------------------------------------------------- #
_SCANN_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean",),
    probe_parameter="n_probes",
    trainable=True,
    filterable=True,
)

register_index(
    "scann",
    cls=ScannSearcher,
    capabilities=_SCANN_CAPABILITIES,
    description="Vanilla ScaNN: full anisotropic-quantized scan + re-rank",
    aliases=("vanilla-scann",),
)(vanilla_scann)

register_index(
    "kmeans-scann",
    cls=ScannSearcher,
    capabilities=_SCANN_CAPABILITIES,
    description="K-means partitioning in front of the ScaNN codec",
    aliases=("scann-kmeans",),
)(kmeans_scann)

register_index(
    "usp-scann",
    cls=ScannSearcher,
    capabilities=_SCANN_CAPABILITIES,
    description="The paper's USP + ScaNN pipeline (single model or ensemble)",
    aliases=("scann-usp",),
)(usp_scann)

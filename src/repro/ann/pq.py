"""Product quantization (Jégou et al., 2011).

The sketching substrate for the FAISS-style IVF-PQ baseline: vectors are
split into ``n_subspaces`` contiguous chunks and each chunk is quantized
with its own small K-means codebook.  Approximate distances between a query
and all encoded points are computed with per-subspace lookup tables
(asymmetric distance computation, ADC).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..baselines.kmeans import KMeans
from ..utils.exceptions import NotFittedError, ValidationError
from ..utils.rng import SeedLike, spawn_rngs
from ..utils.validation import as_float_matrix, check_positive_int


class ProductQuantizer:
    """Split-and-quantize codec with ADC distance estimation.

    Parameters
    ----------
    n_subspaces:
        Number of contiguous sub-vectors (must divide the dimensionality).
    n_codewords:
        Codebook size per subspace (classically 256 = one byte per code).
    kmeans_iterations:
        Lloyd iterations when training each codebook.
    seed:
        Random seed.
    """

    def __init__(
        self,
        n_subspaces: int = 8,
        n_codewords: int = 256,
        *,
        kmeans_iterations: int = 25,
        seed: SeedLike = None,
    ) -> None:
        self.n_subspaces = check_positive_int(n_subspaces, "n_subspaces")
        self.n_codewords = check_positive_int(n_codewords, "n_codewords")
        self.kmeans_iterations = check_positive_int(kmeans_iterations, "kmeans_iterations")
        self.seed = seed
        self.codebooks: Optional[np.ndarray] = None  # (n_subspaces, n_codewords, sub_dim)
        self._sub_dim: Optional[int] = None

    # ------------------------------------------------------------------ #
    def fit(self, points: np.ndarray) -> "ProductQuantizer":
        """Train one K-means codebook per subspace."""
        points = as_float_matrix(points)
        dim = points.shape[1]
        if dim % self.n_subspaces != 0:
            raise ValidationError(
                f"dimensionality {dim} is not divisible by n_subspaces={self.n_subspaces}"
            )
        self._sub_dim = dim // self.n_subspaces
        n_codewords = min(self.n_codewords, points.shape[0])
        rngs = spawn_rngs(self.seed, self.n_subspaces)
        codebooks = np.empty(
            (self.n_subspaces, n_codewords, self._sub_dim), dtype=np.float64
        )
        for s in range(self.n_subspaces):
            chunk = self._subvector(points, s)
            model = KMeans(
                n_codewords, max_iterations=self.kmeans_iterations, seed=rngs[s]
            )
            model.fit(chunk)
            codebooks[s] = model.centroids
        self.codebooks = codebooks
        return self

    def build(self, points: np.ndarray) -> "ProductQuantizer":
        """Deprecated alias for :meth:`fit` (codecs fit, indexes build)."""
        import warnings

        warnings.warn(
            "ProductQuantizer.build() is deprecated; use fit()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fit(points)

    def _require_fitted(self) -> None:
        if self.codebooks is None:
            raise NotFittedError("ProductQuantizer has not been fitted yet")

    def _subvector(self, points: np.ndarray, subspace: int) -> np.ndarray:
        start = subspace * self._sub_dim
        return points[:, start : start + self._sub_dim]

    # ------------------------------------------------------------------ #
    def encode(self, points: np.ndarray) -> np.ndarray:
        """Quantize points to ``(n, n_subspaces)`` codeword indices."""
        self._require_fitted()
        points = as_float_matrix(points)
        codes = np.empty((points.shape[0], self.n_subspaces), dtype=np.int32)
        for s in range(self.n_subspaces):
            chunk = self._subvector(points, s)
            # Squared distances chunk -> codewords of this subspace.
            cb = self.codebooks[s]
            d = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                - 2.0 * chunk @ cb.T
                + np.einsum("ij,ij->i", cb, cb)[None, :]
            )
            codes[:, s] = d.argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fitted()
        codes = np.asarray(codes, dtype=np.int64)
        parts = [self.codebooks[s][codes[:, s]] for s in range(self.n_subspaces)]
        return np.concatenate(parts, axis=1)

    # ------------------------------------------------------------------ #
    def distance_table(self, query: np.ndarray) -> np.ndarray:
        """ADC lookup table: squared distance of the query to every codeword.

        Shape ``(n_subspaces, n_codewords)``; the approximate squared
        distance to an encoded point is the sum over subspaces of the table
        entries selected by its codes.  Delegates to the batched
        :meth:`distance_tables`, so the two are identical by construction.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        return self.distance_tables(query[None, :])[0]

    def distance_tables(self, queries: np.ndarray) -> np.ndarray:
        """Batched ADC lookup tables, one per query row.

        Shape ``(n_queries, n_subspaces, n_codewords)``.  One reshape
        replaces the per-query python loop that re-sliced every subspace:
        queries become a ``(q, n_subspaces, 1, sub_dim)`` view and a
        single einsum contracts the query-to-codeword differences over
        the sub-dimension — the whole batch in one vectorised pass.
        """
        self._require_fitted()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.n_subspaces * self._sub_dim:
            raise ValidationError("query dimensionality does not match the codec")
        sub_queries = queries.reshape(
            queries.shape[0], self.n_subspaces, 1, self._sub_dim
        )
        diff = self.codebooks[None, :, :, :] - sub_queries
        return np.einsum("qmks,qmks->qmk", diff, diff)

    def adc_distances(self, query: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances from ``query`` to encoded points."""
        table = self.distance_table(query)
        codes = np.asarray(codes, dtype=np.int64)
        return table[np.arange(self.n_subspaces)[None, :], codes].sum(axis=1)

    def reconstruction_error(self, points: np.ndarray) -> float:
        """Mean squared reconstruction error over ``points`` (codec quality)."""
        points = as_float_matrix(points)
        reconstructed = self.decode(self.encode(points))
        return float(np.mean(np.sum((points - reconstructed) ** 2, axis=1)))

"""Exact brute-force nearest neighbour search.

Used (i) as the gold standard when computing ground truth and recall, and
(ii) as the final re-ranking step inside every candidate-set based index.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..api.registry import register_index
from ..utils.distances import pairwise_topk
from ..utils.exceptions import NotFittedError
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int


@register_index(
    "bruteforce",
    capabilities=IndexCapabilities(
        metrics=("euclidean", "sqeuclidean", "cosine"),
        probe_parameter=None,
        exact=True,
        shardable=True,
        filterable=True,
    ),
    description="Exact k-NN by scanning the entire dataset",
)
class BruteForceIndex(RegisteredIndex):
    """Exact k-NN by scanning the entire dataset."""

    def __init__(self, *, metric: str = "euclidean", block_size: int = 1024) -> None:
        self.metric = metric
        self.block_size = int(block_size)
        self._base: Optional[np.ndarray] = None

    def build(self, base: np.ndarray) -> "BruteForceIndex":
        """Store the dataset (no preprocessing needed)."""
        self._base = as_float_matrix(base, name="base")
        return self

    @property
    def is_built(self) -> bool:
        return self._base is not None

    @property
    def n_points(self) -> int:
        self._require_built()
        return int(self._base.shape[0])

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._base.shape[1])

    def _require_built(self) -> None:
        if self._base is None:
            raise NotFittedError("BruteForceIndex has not been built yet")

    def batch_query(
        self, queries: np.ndarray, k: int = 10, *, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` indices and distances for each query row.

        With ``filter=`` (a :class:`repro.filter.Predicate`, boolean mask,
        or id allowlist) only the allowed rows are scanned — exact over
        the filtered subset at every selectivity; rows with fewer than
        ``k`` allowed points are padded with ``-1`` / ``inf``.
        """
        self._require_built()
        queries = as_query_matrix(queries, self.dim)
        k = min(check_positive_int(k, "k"), self.n_points)
        if filter is not None:
            # The planner picks prefilter at every selectivity for exact
            # indexes — the subset scan is this index's scan.
            return self._filtered_batch_query(queries, k, filter)
        return pairwise_topk(
            queries, self._base, k, metric=self.metric, block_size=self.block_size
        )

    def query(
        self, query: np.ndarray, k: int = 10, *, filter=None
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, distances = self.batch_query(np.atleast_2d(query), k, filter=filter)
        return indices[0], distances[0]

    # ------------------------------------------------------------------ #
    def _state(self):
        config = {"metric": self.metric, "block_size": int(self.block_size)}
        return config, {"__base__": self._base}, {}

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        index = cls(metric=str(config["metric"]), block_size=int(config["block_size"]))
        index._base = arrays["__base__"]
        return index

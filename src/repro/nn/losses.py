"""Generic training losses built on the autodiff tensor.

The USP-specific partition loss lives in :mod:`repro.core.loss`; this module
provides the standard building blocks it relies on (soft-label
cross-entropy) plus losses used by the supervised baselines (Neural LSH's
classification loss, MSE for tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor


def soft_cross_entropy(
    logits: Tensor,
    soft_targets: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Cross entropy between row-wise soft target distributions and logits.

    Parameters
    ----------
    logits:
        ``(batch, classes)`` unnormalised model outputs.
    soft_targets:
        ``(batch, classes)`` non-negative rows summing to one, treated as
        constants (no gradient flows through them).
    weights:
        Optional per-row weights (the ensemble boosting weights of the
        paper's Eq. 14); defaults to uniform.

    Returns
    -------
    A scalar tensor: the (weighted) mean over rows of
    ``-sum_j targets[i, j] * log_softmax(logits)[i, j]``.
    """
    soft_targets = np.asarray(soft_targets, dtype=np.float64)
    if soft_targets.shape != logits.shape:
        raise ValueError(
            f"soft_targets shape {soft_targets.shape} does not match logits {logits.shape}"
        )
    log_probs = logits.log_softmax(axis=-1)
    per_row = -(log_probs * Tensor(soft_targets)).sum(axis=1)
    if weights is None:
        return per_row.mean()
    weights = np.asarray(weights, dtype=np.float64).reshape(-1)
    if weights.shape[0] != logits.shape[0]:
        raise ValueError(
            f"weights length {weights.shape[0]} does not match batch {logits.shape[0]}"
        )
    total = float(weights.sum())
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    normalized = weights / total
    return (per_row * Tensor(normalized)).sum()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Hard-label cross entropy (used by the Neural LSH baseline classifier)."""
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    n_classes = logits.shape[-1]
    if labels.min() < 0 or labels.max() >= n_classes:
        raise ValueError("labels out of range for the given logits")
    one_hot = np.zeros((labels.shape[0], n_classes), dtype=np.float64)
    one_hot[np.arange(labels.shape[0]), labels] = 1.0
    return soft_cross_entropy(logits, one_hot)


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    target = np.asarray(target, dtype=np.float64)
    diff = prediction - Tensor(target)
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Numerically stable binary cross entropy on logits (hyperplane learners)."""
    targets = np.asarray(targets, dtype=np.float64)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t  is the stable form.
    probs_pos = logits.sigmoid()
    eps = 1e-12
    term_pos = (probs_pos + eps).log() * Tensor(targets)
    term_neg = (1.0 - probs_pos + eps).log() * Tensor(1.0 - targets)
    return -(term_pos + term_neg).mean()

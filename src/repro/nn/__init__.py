"""Numpy-based neural network substrate (autodiff, layers, optimisers).

This subpackage replaces PyTorch for the reproduction: it provides exactly
the pieces the paper's models need — a reverse-mode autodiff tensor, fully
connected layers with batch normalisation and dropout, Glorot
initialisation, Adam/SGD optimisers, and soft-label cross-entropy.
"""

from .tensor import Tensor, as_tensor, stack_rows
from .init import (
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_uniform,
    ones,
    zeros,
)
from .layers import (
    BatchNorm1d,
    Dropout,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Softmax,
    Tanh,
)
from .losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse_loss,
    soft_cross_entropy,
)
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .data import Batch, EpochBatchIterator, UniformBatchSampler, train_validation_split
from .serialization import load_module, save_module

__all__ = [
    "Tensor",
    "as_tensor",
    "stack_rows",
    "get_initializer",
    "glorot_normal",
    "glorot_uniform",
    "he_uniform",
    "ones",
    "zeros",
    "BatchNorm1d",
    "Dropout",
    "Linear",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "Softmax",
    "Tanh",
    "binary_cross_entropy_with_logits",
    "cross_entropy",
    "mse_loss",
    "soft_cross_entropy",
    "SGD",
    "Adam",
    "Optimizer",
    "clip_grad_norm",
    "Batch",
    "EpochBatchIterator",
    "UniformBatchSampler",
    "train_validation_split",
    "load_module",
    "save_module",
]

"""Saving and loading model parameters as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from ..utils.exceptions import SerializationError
from .layers import Module


def save_module(module: Module, path: str | os.PathLike) -> None:
    """Write a module's :meth:`state_dict` to ``path`` as a ``.npz`` archive."""
    state = module.state_dict()
    try:
        np.savez(path, **state)
    except OSError as exc:  # pragma: no cover - filesystem dependent
        raise SerializationError(f"could not save module to {path}: {exc}") from exc


def load_module(module: Module, path: str | os.PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (in place)."""
    try:
        with np.load(path) as archive:
            state: Dict[str, np.ndarray] = {key: archive[key] for key in archive.files}
    except OSError as exc:
        raise SerializationError(f"could not load module from {path}: {exc}") from exc
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"incompatible state dict in {path}: {exc}") from exc
    return module

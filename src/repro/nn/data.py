"""Mini-batch sampling utilities.

The USP loss is defined over a *batch* of points (the balance term needs a
population of outputs, not a single row), so the trainer samples uniform
random batches rather than iterating a fixed shuffled epoch.  Both styles
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..utils.rng import SeedLike, resolve_rng
from ..utils.validation import as_float_matrix, check_positive_int


@dataclass
class Batch:
    """A mini-batch: row indices into the dataset plus the row vectors."""

    indices: np.ndarray
    points: np.ndarray

    def __len__(self) -> int:
        return int(self.indices.shape[0])


class UniformBatchSampler:
    """Sample fixed-size batches uniformly at random with replacement.

    This matches the paper's batching caveat (Section 4.2.2): as long as
    sampling is uniform, a small batch (~4% of the dataset) approximates the
    dataset distribution well enough for the balance term.
    """

    def __init__(self, points, batch_size: int, *, rng: SeedLike = None) -> None:
        self.points = as_float_matrix(points)
        self.batch_size = min(check_positive_int(batch_size, "batch_size"), len(self.points))
        self._rng = resolve_rng(rng)

    def sample(self) -> Batch:
        indices = self._rng.choice(len(self.points), size=self.batch_size, replace=False)
        return Batch(indices=indices, points=self.points[indices])

    def iter_batches(self, n_batches: int) -> Iterator[Batch]:
        for _ in range(check_positive_int(n_batches, "n_batches")):
            yield self.sample()


class EpochBatchIterator:
    """Iterate the dataset once per epoch in shuffled fixed-size batches."""

    def __init__(self, points, batch_size: int, *, rng: SeedLike = None, drop_last: bool = False) -> None:
        self.points = as_float_matrix(points)
        self.batch_size = min(check_positive_int(batch_size, "batch_size"), len(self.points))
        self.drop_last = bool(drop_last)
        self._rng = resolve_rng(rng)

    def __iter__(self) -> Iterator[Batch]:
        order = self._rng.permutation(len(self.points))
        for start in range(0, len(order), self.batch_size):
            indices = order[start : start + self.batch_size]
            if self.drop_last and len(indices) < self.batch_size:
                return
            yield Batch(indices=indices, points=self.points[indices])

    def __len__(self) -> int:
        n = len(self.points)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size


def train_validation_split(
    points,
    validation_fraction: float = 0.1,
    *,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Split row indices into train / validation index arrays."""
    points = as_float_matrix(points)
    if not 0.0 <= validation_fraction < 1.0:
        raise ValueError(
            f"validation_fraction must lie in [0, 1), got {validation_fraction}"
        )
    rng = resolve_rng(rng)
    order = rng.permutation(len(points))
    n_val = int(round(validation_fraction * len(points)))
    return order[n_val:], order[:n_val]

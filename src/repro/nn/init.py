"""Parameter initialisation schemes.

The paper initialises both the neural network and the logistic regression
model with Glorot (Xavier) initialisation; He initialisation is provided as
well for completeness.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import SeedLike, resolve_rng


def glorot_uniform(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    rng = resolve_rng(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def glorot_normal(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a ``(fan_in, fan_out)`` matrix."""
    rng = resolve_rng(rng)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def he_uniform(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """He (Kaiming) uniform initialisation, suited to ReLU activations."""
    rng = resolve_rng(rng)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    """All-zeros initialisation (used for biases and BatchNorm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(*shape: int) -> np.ndarray:
    """All-ones initialisation (used for BatchNorm scale)."""
    return np.ones(shape, dtype=np.float64)


_INITIALIZERS = {
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
}


def get_initializer(name: str):
    """Look up a weight initialiser by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown initializer {name!r}; expected one of {sorted(_INITIALIZERS)}"
        ) from None

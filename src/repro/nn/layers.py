"""Neural network modules built on top of the autodiff :class:`Tensor`.

Mirrors the subset of ``torch.nn`` used by the paper: ``Linear``,
``BatchNorm1d``, ``ReLU``, ``Dropout``, ``Sequential``, and a softmax output
head.  A :class:`Module` owns named :class:`Parameter` tensors and optional
named buffers (non-trainable state such as BatchNorm running statistics).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..utils.rng import SeedLike, resolve_rng
from .init import get_initializer, ones, zeros
from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, *, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # -- registration --------------------------------------------------- #
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        self._parameters[name] = param
        return param

    def register_buffer(self, name: str, value: np.ndarray) -> np.ndarray:
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        return self._buffers[name]

    def add_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    # -- traversal ------------------------------------------------------ #
    def parameters(self) -> List[Parameter]:
        """All trainable parameters of this module and its children."""
        params = list(self._parameters.values())
        for child in self._modules.values():
            params.extend(child.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield f"{prefix}{name}", buf
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters (paper Table 2)."""
        return int(sum(p.size for p in self.parameters()))

    # -- mode ------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state dict ------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping of parameter/buffer names to arrays (copies)."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"__buffer__.{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers produced by :meth:`state_dict`."""
        param_map = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("__buffer__."):
                self._load_buffer(name[len("__buffer__.") :], value)
            else:
                if name not in param_map:
                    raise KeyError(f"unexpected parameter {name!r} in state dict")
                if param_map[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{param_map[name].shape} vs {value.shape}"
                    )
                param_map[name].data[...] = value

    def _load_buffer(self, dotted_name: str, value: np.ndarray) -> None:
        parts = dotted_name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._modules[part]
        module._buffers[parts[-1]][...] = value

    # -- forward --------------------------------------------------------- #
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: str = "glorot_uniform",
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        initializer = get_initializer(init)
        self.weight = Parameter(
            initializer(self.in_features, self.out_features, resolve_rng(rng)),
            name="weight",
        )
        self.bias: Optional[Parameter]
        if bias:
            self.bias = Parameter(zeros(self.out_features), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:
        return "Tanh()"


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    The paper uses dropout with probability 0.1 to regularise the
    partitioning network so that it generalises to out-of-sample queries.
    """

    def __init__(self, p: float = 0.1, *, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = resolve_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class BatchNorm1d(Module):
    """Batch normalisation over the feature dimension of a 2-D input."""

    def __init__(self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.gamma = Parameter(ones(self.num_features), name="gamma")
        self.beta = Parameter(zeros(self.num_features), name="beta")
        self.register_buffer("running_mean", zeros(self.num_features))
        self.register_buffer("running_var", ones(self.num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=0, keepdims=True)
            # update running statistics with detached batch statistics
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            self._buffers["running_mean"] *= 1.0 - self.momentum
            self._buffers["running_mean"] += self.momentum * batch_mean
            self._buffers["running_var"] *= 1.0 - self.momentum
            self._buffers["running_var"] += self.momentum * batch_var
            normalized = centered / (var + self.eps).sqrt()
        else:
            mean = Tensor(self._buffers["running_mean"][None, :])
            var = Tensor(self._buffers["running_var"][None, :])
            normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta

    def __repr__(self) -> str:
        return f"BatchNorm1d({self.num_features})"


class Softmax(Module):
    """Softmax over the last axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.softmax(axis=-1)

    def __repr__(self) -> str:
        return "Softmax()"


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for i, module in enumerate(modules):
            name = str(i)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __repr__(self) -> str:
        inner = ", ".join(repr(self._modules[name]) for name in self._order)
        return f"Sequential({inner})"

"""Gradient-based optimisers.

The paper trains every model with Adam; SGD (with optional momentum and
weight decay) is included for ablation experiments and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base class: holds parameters and clears their gradients."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015), as used by the paper."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step += 1
        bias_correction1 = 1.0 - self.beta1**self._step
        bias_correction2 = 1.0 - self.beta2**self._step
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias_correction1
            v_hat = v / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm > 0:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total

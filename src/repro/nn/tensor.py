"""A small reverse-mode automatic differentiation engine on numpy arrays.

This module is the stand-in for PyTorch's autograd in the reproduction (the
paper trains its partitioning models with PyTorch).  It implements exactly
the operator set required by the paper's models and loss function:

* elementwise arithmetic with numpy-style broadcasting,
* matrix multiplication,
* ``exp`` / ``log`` / ``sqrt`` / ``relu`` / ``tanh`` / ``sigmoid``,
* reductions (``sum`` / ``mean`` / ``max``) over an optional axis,
* ``log_softmax`` / ``softmax`` (implemented stably as primitives),
* shape ops (``reshape`` / ``transpose``) and row gathering.

Gradients are accumulated by a topological-order backward pass over the
dynamically recorded operation graph, mirroring the define-by-run semantics
of PyTorch so the training loops in :mod:`repro.core.trainer` read the same
way as the original implementation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 100  # make numpy defer to our __radd__ etc.

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        *,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying data (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _wrap(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float64)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0.0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(np.float64)
            # Split gradient evenly between ties, as PyTorch does for amax.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * grad)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # softmax family
    # ------------------------------------------------------------------ #
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum_exp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum_exp
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad - softmax * grad.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (grad - dot))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-compatible alias
        return self.transpose()

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows ``self[indices]`` with scatter-add backward."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: List[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    order.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def as_tensor(value: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def stack_rows(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor along a new leading axis."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=0)
    out = Tensor(data, requires_grad=any(t.requires_grad for t in tensors))

    if out.requires_grad:

        def backward(grad: np.ndarray) -> None:
            for i, t in enumerate(tensors):
                t._accumulate(grad[i])

        out._parents = tuple(tensors)
        out._backward = backward
    return out

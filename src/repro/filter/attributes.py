"""Columnar per-id metadata: the :class:`AttributeStore`.

Filtered search needs attributes next to the vectors — "only documents
this user may see", "price < 100" — evaluated for *every* id at query
time.  Row-major dicts would make every predicate a Python loop, so the
store is columnar: each attribute is one typed column over all ids, and a
predicate compiles to vectorised numpy operations per column.

Three column kinds cover the common predicate shapes:

* **numeric** — a float64 array; supports ``Eq`` / ``In`` / ``Range``.
  ``NaN`` marks a missing value and matches no *leaf* predicate (a
  ``Not`` complement therefore does include missing rows — see
  :class:`repro.filter.Not`).
* **categorical** — integer codes into a small vocabulary (country,
  shop, language); supports ``Eq`` / ``In``.  Code ``-1`` is missing.
* **tags** — a *set* of labels per id (CSR layout: one flat code array
  plus row offsets); ``Eq`` means "has this tag", ``In`` means "has any
  of these tags".

Rows align with index ids: row ``i`` describes the vector with global id
``i``.  :meth:`AttributeStore.extend` appends rows for vectors added to a
mutable index after the build; ids beyond the store (added without
metadata) match no predicate.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import ValidationError
from ..utils.rng import SeedLike, resolve_rng

#: column kinds understood by the predicate compiler
COLUMN_KINDS = ("numeric", "categorical", "tags")


class _Column:
    """One attribute over all rows; subclasses implement the mask kernels."""

    kind: str = ""

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def eq_mask(self, value: Any) -> np.ndarray:
        raise ValidationError(f"{self.kind} column does not support Eq")

    def in_mask(self, values: Sequence[Any]) -> np.ndarray:
        raise ValidationError(f"{self.kind} column does not support In")

    def range_mask(self, low: Optional[float], high: Optional[float]) -> np.ndarray:
        raise ValidationError(f"{self.kind} column does not support Range")


def _as_float(value: Any, where: str) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ValidationError(
            f"{where} needs a numeric value, got {value!r}"
        ) from None


class NumericColumn(_Column):
    kind = "numeric"

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.asarray(values, dtype=np.float64).reshape(-1)

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def eq_mask(self, value: Any) -> np.ndarray:
        return self.values == _as_float(value, "Eq on a numeric column")

    def in_mask(self, values: Sequence[Any]) -> np.ndarray:
        wanted = [_as_float(v, "In on a numeric column") for v in values]
        return np.isin(self.values, np.asarray(wanted))

    def range_mask(self, low: Optional[float], high: Optional[float]) -> np.ndarray:
        # NaN (missing) compares False against both bounds, so it never matches.
        mask = ~np.isnan(self.values)
        if low is not None:
            mask &= self.values >= float(low)
        if high is not None:
            mask &= self.values <= float(high)
        return mask


class CategoricalColumn(_Column):
    kind = "categorical"

    def __init__(self, codes: np.ndarray, vocabulary: Sequence[str]) -> None:
        self.codes = np.asarray(codes, dtype=np.int64).reshape(-1)
        self.vocabulary: List[str] = [str(v) for v in vocabulary]
        self._code_of = {value: code for code, value in enumerate(self.vocabulary)}

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "CategoricalColumn":
        vocabulary = sorted({str(v) for v in values if v is not None})
        code_of = {value: code for code, value in enumerate(vocabulary)}
        codes = np.array(
            [-1 if v is None else code_of[str(v)] for v in values], dtype=np.int64
        )
        return cls(codes, vocabulary)

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    def _code(self, value: Any) -> int:
        return self._code_of.get(str(value), -2)  # -2: never matches, incl. missing

    def eq_mask(self, value: Any) -> np.ndarray:
        return self.codes == self._code(value)

    def in_mask(self, values: Sequence[Any]) -> np.ndarray:
        wanted = np.asarray(sorted({self._code(v) for v in values}), dtype=np.int64)
        return np.isin(self.codes, wanted[wanted >= 0])


class TagsColumn(_Column):
    """A set of labels per row, stored CSR-style (offsets + flat codes)."""

    kind = "tags"

    def __init__(
        self, indptr: np.ndarray, codes: np.ndarray, vocabulary: Sequence[str]
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64).reshape(-1)
        self.codes = np.asarray(codes, dtype=np.int64).reshape(-1)
        self.vocabulary: List[str] = [str(v) for v in vocabulary]
        self._code_of = {value: code for code, value in enumerate(self.vocabulary)}

    @classmethod
    def from_values(cls, values: Sequence[Iterable[Any]]) -> "TagsColumn":
        rows = [sorted({str(tag) for tag in row}) for row in values]
        vocabulary = sorted({tag for row in rows for tag in row})
        code_of = {value: code for code, value in enumerate(vocabulary)}
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        flat: List[int] = []
        for i, row in enumerate(rows):
            flat.extend(code_of[tag] for tag in row)
            indptr[i + 1] = len(flat)
        return cls(indptr, np.asarray(flat, dtype=np.int64), vocabulary)

    def __len__(self) -> int:
        return int(self.indptr.shape[0] - 1)

    def _rows_with_codes(self, wanted: np.ndarray) -> np.ndarray:
        mask = np.zeros(len(self), dtype=bool)
        if wanted.size == 0 or self.codes.size == 0:
            return mask
        hits = np.flatnonzero(np.isin(self.codes, wanted))
        if hits.size:
            rows = np.searchsorted(self.indptr, hits, side="right") - 1
            mask[np.unique(rows)] = True
        return mask

    def eq_mask(self, value: Any) -> np.ndarray:
        code = self._code_of.get(str(value))
        if code is None:
            return np.zeros(len(self), dtype=bool)
        return self._rows_with_codes(np.asarray([code], dtype=np.int64))

    def in_mask(self, values: Sequence[Any]) -> np.ndarray:
        codes = {self._code_of.get(str(v)) for v in values}
        wanted = np.asarray(sorted(c for c in codes if c is not None), dtype=np.int64)
        return self._rows_with_codes(wanted)


class AttributeStore:
    """Columnar metadata for the ids of one index.

    >>> store = AttributeStore()
    >>> store.add_numeric("price", [9.5, 120.0, 42.0])
    >>> store.add_categorical("shop", ["a", "b", "a"])
    >>> store.add_tags("labels", [["new"], [], ["new", "sale"]])
    >>> store.n_rows
    3

    All columns must have the same length (one row per id).  The store is
    attached to an index with ``index.set_attributes(store)``; predicates
    passed as ``filter=`` then compile against it.

    Each store carries a process-unique identity ``token`` and a
    ``version`` counter bumped by every column addition and
    :meth:`extend`; the serving layer folds ``(token, version)`` into its
    result-cache keys so swapping or growing the metadata can never serve
    a stale filtered answer.
    """

    _tokens = itertools.count()

    def __init__(self) -> None:
        self._columns: Dict[str, _Column] = {}
        self.token = next(AttributeStore._tokens)
        self.version = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _check_length(self, name: str, column: _Column) -> None:
        if not name or not isinstance(name, str):
            raise ValidationError("attribute names must be non-empty strings")
        if name in self._columns:
            raise ValidationError(f"attribute {name!r} already exists")
        if self._columns and len(column) != self.n_rows:
            raise ValidationError(
                f"attribute {name!r} has {len(column)} rows, store has {self.n_rows}"
            )

    def add_numeric(self, name: str, values: Sequence[float]) -> "AttributeStore":
        column = NumericColumn(np.asarray(values, dtype=np.float64))
        self._check_length(name, column)
        self._columns[name] = column
        self.version += 1
        return self

    def add_categorical(self, name: str, values: Sequence[Any]) -> "AttributeStore":
        column = CategoricalColumn.from_values(list(values))
        self._check_length(name, column)
        self._columns[name] = column
        self.version += 1
        return self

    def add_tags(self, name: str, values: Sequence[Iterable[Any]]) -> "AttributeStore":
        column = TagsColumn.from_values(list(values))
        self._check_length(name, column)
        self._columns[name] = column
        self.version += 1
        return self

    # ------------------------------------------------------------------ #
    # introspection / access
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def columns(self) -> List[str]:
        return sorted(self._columns)

    def column_kind(self, name: str) -> str:
        return self.column(name).kind

    def column(self, name: str) -> _Column:
        try:
            return self._columns[name]
        except KeyError:
            known = ", ".join(sorted(self._columns)) or "<none>"
            raise ValidationError(
                f"unknown attribute {name!r}; available attributes: {known}"
            ) from None

    # ------------------------------------------------------------------ #
    # mutation (rows appended for vectors added to a mutable index)
    # ------------------------------------------------------------------ #
    def canonical_rows(
        self, rows: Mapping[str, Sequence[Any]], *, expected: Optional[int] = None
    ) -> Dict[str, List[Any]]:
        """Validate an :meth:`extend` batch and coerce it to canonical form.

        Performs every structural check ``extend`` would (all columns
        present, equal lengths, values coercible to each column's kind)
        *without touching the store*, and returns the rows in their
        JSON-able canonical shape: floats for numeric columns, strings or
        ``None`` for categorical ones, sorted unique string lists for
        tags.  Callers that must not mutate anything on bad input — the
        storage layer journaling ahead of the apply, the serving layer
        inserting vectors before metadata — validate through this first.
        """
        if not self._columns:
            raise ValidationError("canonical_rows() needs existing columns; add_* first")
        rows = {str(name): list(values) for name, values in rows.items()}
        missing = sorted(set(self._columns) - set(rows))
        if missing:
            raise ValidationError(f"attribute rows missing columns: {missing}")
        unknown = sorted(set(rows) - set(self._columns))
        if unknown:
            raise ValidationError(f"attribute rows name unknown columns: {unknown}")
        lengths = {name: len(values) for name, values in rows.items()}
        if len(set(lengths.values())) != 1:
            raise ValidationError(f"attribute rows are ragged: {lengths}")
        count = next(iter(lengths.values()))
        if expected is not None and count != expected:
            raise ValidationError(
                f"got {count} attribute rows for {expected} vectors"
            )
        canonical: Dict[str, List[Any]] = {}
        for name, values in rows.items():
            kind = self.column_kind(name)
            if kind == "numeric":
                try:
                    canonical[name] = [float(v) for v in values]
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"column {name!r} needs numeric values"
                    ) from None
            elif kind == "categorical":
                canonical[name] = [None if v is None else str(v) for v in values]
            else:  # tags
                try:
                    canonical[name] = [
                        sorted({str(tag) for tag in row}) for row in values
                    ]
                except TypeError:
                    raise ValidationError(
                        f"column {name!r} needs an iterable of tags per row"
                    ) from None
        return canonical

    def extend(self, rows: Mapping[str, Sequence[Any]]) -> "AttributeStore":
        """Append one batch of rows; every column must receive values.

        ``rows`` maps column name -> sequence of per-row values (tags
        columns take a sequence of iterables).  All sequences must have the
        same length, and every existing column must be present — attributes
        are dense by construction so predicate masks stay vectorised.
        """
        if not self._columns:
            raise ValidationError("extend() needs existing columns; add_* first")
        missing = sorted(set(self._columns) - set(rows))
        if missing:
            raise ValidationError(f"extend() missing values for columns: {missing}")
        unknown = sorted(set(rows) - set(self._columns))
        if unknown:
            raise ValidationError(f"extend() got unknown columns: {unknown}")
        # Materialise once: generators/iterators must not be consumed by
        # the length check and then silently appended as empty.
        rows = {name: list(values) for name, values in rows.items()}
        lengths = {name: len(values) for name, values in rows.items()}
        if len(set(lengths.values())) != 1:
            raise ValidationError(f"extend() got ragged row counts: {lengths}")
        # Build every extended column before publishing any: a bad value
        # in one column must not leave the store torn (ragged lengths
        # with an un-bumped version would also poison cached masks).
        new_columns: Dict[str, _Column] = {}
        for name, values in rows.items():
            column = self._columns[name]
            if isinstance(column, NumericColumn):
                try:
                    extra = np.asarray(values, dtype=np.float64)
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"extend(): column {name!r} needs numeric values"
                    ) from None
                new_columns[name] = NumericColumn(
                    np.concatenate([column.values, extra])
                )
            elif isinstance(column, CategoricalColumn):
                vocabulary = list(column.vocabulary)
                code_of = dict(column._code_of)
                codes = []
                for value in values:
                    if value is None:
                        codes.append(-1)
                        continue
                    key = str(value)
                    if key not in code_of:
                        code_of[key] = len(vocabulary)
                        vocabulary.append(key)
                    codes.append(code_of[key])
                new_columns[name] = CategoricalColumn(
                    np.concatenate([column.codes, np.asarray(codes, dtype=np.int64)]),
                    vocabulary,
                )
            else:
                assert isinstance(column, TagsColumn)
                vocabulary = list(column.vocabulary)
                code_of = dict(column._code_of)
                flat: List[int] = []
                indptr = [int(column.indptr[-1])]
                for row in values:
                    for tag in sorted({str(t) for t in row}):
                        if tag not in code_of:
                            code_of[tag] = len(vocabulary)
                            vocabulary.append(tag)
                        flat.append(code_of[tag])
                    indptr.append(int(column.indptr[-1]) + len(flat))
                new_columns[name] = TagsColumn(
                    np.concatenate([column.indptr, np.asarray(indptr[1:], dtype=np.int64)]),
                    np.concatenate([column.codes, np.asarray(flat, dtype=np.int64)]),
                    vocabulary,
                )
        self._columns.update(new_columns)
        self.version += 1
        return self

    # ------------------------------------------------------------------ #
    # persistence (ridden along by repro.api.persistence)
    # ------------------------------------------------------------------ #
    def to_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """(JSON-able config, numpy arrays) — the persistence hook pair."""
        config: Dict[str, Any] = {"columns": {}}
        arrays: Dict[str, np.ndarray] = {}
        for name, column in self._columns.items():
            entry: Dict[str, Any] = {"kind": column.kind}
            if isinstance(column, NumericColumn):
                arrays[f"attr.{name}.values"] = column.values
            elif isinstance(column, CategoricalColumn):
                entry["vocabulary"] = column.vocabulary
                arrays[f"attr.{name}.codes"] = column.codes
            else:
                assert isinstance(column, TagsColumn)
                entry["vocabulary"] = column.vocabulary
                arrays[f"attr.{name}.codes"] = column.codes
                arrays[f"attr.{name}.indptr"] = column.indptr
            config["columns"][name] = entry
        return config, arrays

    @classmethod
    def from_state(
        cls, config: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> "AttributeStore":
        store = cls()
        for name, entry in config.get("columns", {}).items():
            kind = entry.get("kind")
            if kind == "numeric":
                store._columns[name] = NumericColumn(arrays[f"attr.{name}.values"])
            elif kind == "categorical":
                store._columns[name] = CategoricalColumn(
                    arrays[f"attr.{name}.codes"], entry.get("vocabulary", [])
                )
            elif kind == "tags":
                store._columns[name] = TagsColumn(
                    arrays[f"attr.{name}.indptr"],
                    arrays[f"attr.{name}.codes"],
                    entry.get("vocabulary", []),
                )
            else:
                raise ValidationError(f"unknown attribute column kind {kind!r}")
        return store

    def __repr__(self) -> str:
        columns = ", ".join(
            f"{name}:{column.kind}" for name, column in sorted(self._columns.items())
        )
        return f"AttributeStore(n_rows={self.n_rows}, columns=[{columns}])"


def random_attribute_store(n_rows: int, *, seed: SeedLike = 0) -> AttributeStore:
    """A synthetic store used by benchmarks, examples, and tests.

    Columns: ``price`` (numeric, uniform on [0, 100)), ``shop``
    (categorical over eight values, Zipf-ish skew), and ``labels`` (tags:
    zero to three of eight labels per row).
    """
    rng = resolve_rng(seed)
    store = AttributeStore()
    store.add_numeric("price", rng.uniform(0.0, 100.0, size=n_rows))
    shops = [f"shop-{i}" for i in range(8)]
    weights = 1.0 / np.arange(1, len(shops) + 1)
    store.add_categorical(
        "shop", rng.choice(shops, size=n_rows, p=weights / weights.sum())
    )
    labels = [f"label-{i}" for i in range(8)]
    counts = rng.integers(0, 4, size=n_rows)
    store.add_tags(
        "labels",
        [rng.choice(labels, size=int(c), replace=False).tolist() for c in counts],
    )
    return store

"""Filtered vector search: attributes, predicates, and the filter planner.

Real deployments rarely serve the pure "top-k over all vectors" workload:
queries carry predicates ("only docs this user may see", "price < 100").
This package adds that workload to every index behind the
:class:`repro.api.AnnIndex` protocol:

* :class:`AttributeStore` — columnar per-id metadata (numeric,
  categorical, tags), attached to an index with ``set_attributes`` and
  persisted alongside it by ``save`` / ``load_index``;
* :class:`Predicate` algebra — :class:`Eq` / :class:`In` / :class:`Range`
  leaves composed with :class:`And` / :class:`Or` / :class:`Not` (or the
  ``&`` / ``|`` / ``~`` operators), compiling to numpy boolean masks with
  canonical cache fingerprints;
* :class:`FilterPlanner` — picks pre-filter (brute-force the surviving
  subset), inline candidate masking, or post-filter with adaptive
  over-fetch, by estimated selectivity and index capability.

Example
-------
>>> from repro.filter import AttributeStore, Eq, Range
>>> store = AttributeStore()
>>> store.add_categorical("shop", shops).add_numeric("price", prices)
>>> index.set_attributes(store)
>>> ids, dists = index.batch_query(
...     queries, k=10, filter=Eq("shop", "a") & Range("price", high=40.0)
... )
"""

from .attributes import AttributeStore, COLUMN_KINDS, random_attribute_store
from .planner import (
    DEFAULT_PLANNER,
    FILTER_STRATEGIES,
    FilterPlan,
    FilterPlanner,
    filter_row_count,
    filtered_search,
    resolve_filter,
)
from .predicate import And, Eq, In, Not, Or, Predicate, Range, predicate_from_dict

__all__ = [
    "AttributeStore",
    "COLUMN_KINDS",
    "random_attribute_store",
    "DEFAULT_PLANNER",
    "FILTER_STRATEGIES",
    "FilterPlan",
    "FilterPlanner",
    "filter_row_count",
    "filtered_search",
    "resolve_filter",
    "And",
    "Eq",
    "In",
    "Not",
    "Or",
    "Predicate",
    "Range",
    "predicate_from_dict",
]

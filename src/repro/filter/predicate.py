"""A composable predicate algebra that compiles to numpy boolean masks.

``Eq`` / ``In`` / ``Range`` are the leaves, ``And`` / ``Or`` / ``Not``
combine them; ``&`` / ``|`` / ``~`` operators are sugar for the
combinators.  A predicate is evaluated against an
:class:`~repro.filter.AttributeStore` with :meth:`Predicate.mask`, giving
one boolean per id, and against an index through the ``filter=`` keyword
of ``query`` / ``batch_query`` (the index resolves it via its attached
store).

Every predicate also has a canonical :meth:`~Predicate.fingerprint` — a
hashable value that is equal exactly when two predicates are structurally
equivalent up to ``And``/``Or`` child order — which the serving layer
folds into its result-cache keys, and a JSON round-trip
(:meth:`~Predicate.as_dict` / :func:`predicate_from_dict`) used by
request persistence.

>>> pred = Eq("shop", "a") & Range("price", high=40.0)
>>> mask = pred.mask(store)            # np.ndarray of bool, one per id
>>> pred.fingerprint() == (Range("price", high=40.0) & Eq("shop", "a")).fingerprint()
True
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..utils.exceptions import ValidationError
from .attributes import AttributeStore

#: value types allowed inside predicates (JSON-able, hashable)
_SCALAR_TYPES = (str, int, float, bool)


def _check_scalar(value: Any, where: str) -> Any:
    if not isinstance(value, _SCALAR_TYPES):
        raise ValidationError(
            f"{where} values must be str/int/float/bool, got {type(value).__name__}"
        )
    return value


class Predicate:
    """Base class: combinators, operators, and the shared surface."""

    def mask(self, store: AttributeStore) -> np.ndarray:
        """One boolean per store row: does the row satisfy this predicate?"""
        raise NotImplementedError  # pragma: no cover - abstract

    def cached_mask(self, store: AttributeStore) -> np.ndarray:
        """:meth:`mask`, memoized per (store token, store version).

        The serving layer evaluates one predicate against one store many
        times (once per micro-batch chunk, once per post-filter retry);
        the compiled mask is O(rows) per column, so the last result is
        kept on the predicate instance and reused until the store mutates.
        Callers must treat the returned array as read-only.
        """
        key = (store.token, store.version)
        cached = getattr(self, "_mask_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        mask = self.mask(store)
        self._mask_cache = (key, mask)
        return mask

    def fingerprint(self) -> tuple:
        """Canonical hashable identity (And/Or child order does not matter)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able form; inverse of :func:`predicate_from_dict`."""
        raise NotImplementedError  # pragma: no cover - abstract

    def selectivity(self, store: AttributeStore) -> float:
        """Fraction of rows matching (exact, from one mask evaluation)."""
        if store.n_rows == 0:
            return 0.0
        return float(self.mask(store).mean())

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.fingerprint() == other.fingerprint()

    def __hash__(self) -> int:
        return hash(self.fingerprint())


class Eq(Predicate):
    """``column == value`` (for tags columns: "the row has this tag")."""

    def __init__(self, column: str, value: Any) -> None:
        self.column = str(column)
        self.value = _check_scalar(value, "Eq")

    def mask(self, store: AttributeStore) -> np.ndarray:
        return store.column(self.column).eq_mask(self.value)

    def fingerprint(self) -> tuple:
        return ("eq", self.column, type(self.value).__name__, self.value)

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "eq", "column": self.column, "value": self.value}

    def __repr__(self) -> str:
        return f"Eq({self.column!r}, {self.value!r})"


class In(Predicate):
    """``column in values`` (for tags columns: "has any of these tags")."""

    def __init__(self, column: str, values: Sequence[Any]) -> None:
        self.column = str(column)
        values = list(values)
        if not values:
            raise ValidationError("In needs at least one value")
        self.values = tuple(_check_scalar(v, "In") for v in values)

    def mask(self, store: AttributeStore) -> np.ndarray:
        return store.column(self.column).in_mask(self.values)

    def fingerprint(self) -> tuple:
        # Dedup on (type, value) pairs: a bare set() would collapse
        # numerically-equal values of different types (1 == True == 1.0)
        # before the type tag is attached, giving structurally different
        # predicates — hence different masks — one shared cache identity.
        frozen = sorted({(type(v).__name__, v) for v in self.values})
        return ("in", self.column, tuple(frozen))

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "in", "column": self.column, "values": list(self.values)}

    def __repr__(self) -> str:
        return f"In({self.column!r}, {list(self.values)!r})"


class Range(Predicate):
    """``low <= column <= high`` on a numeric column (bounds inclusive).

    Either bound may be ``None`` (open); ``Range("price", high=40.0)``
    is "price at most 40".
    """

    def __init__(
        self, column: str, low: Optional[float] = None, high: Optional[float] = None
    ) -> None:
        self.column = str(column)
        if low is None and high is None:
            raise ValidationError("Range needs at least one bound")
        try:
            self.low = None if low is None else float(low)
            self.high = None if high is None else float(high)
        except (TypeError, ValueError):
            raise ValidationError(
                f"Range bounds must be numeric, got low={low!r} high={high!r}"
            ) from None
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ValidationError(f"Range low {self.low} exceeds high {self.high}")

    def mask(self, store: AttributeStore) -> np.ndarray:
        return store.column(self.column).range_mask(self.low, self.high)

    def fingerprint(self) -> tuple:
        return ("range", self.column, self.low, self.high)

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "range", "column": self.column, "low": self.low, "high": self.high}

    def __repr__(self) -> str:
        return f"Range({self.column!r}, low={self.low!r}, high={self.high!r})"


def _flatten(op: type, children: Sequence[Predicate]) -> List[Predicate]:
    """Associativity: And(a, And(b, c)) keeps one flat child list."""
    flat: List[Predicate] = []
    for child in children:
        if not isinstance(child, Predicate):
            raise ValidationError(
                f"{op.__name__} children must be predicates, got {type(child).__name__}"
            )
        if type(child) is op:
            flat.extend(child.children)  # type: ignore[attr-defined]
        else:
            flat.append(child)
    if not flat:
        raise ValidationError(f"{op.__name__} needs at least one child")
    return flat


class And(Predicate):
    """Every child matches."""

    def __init__(self, *children: Predicate) -> None:
        self.children: Tuple[Predicate, ...] = tuple(_flatten(And, children))

    def mask(self, store: AttributeStore) -> np.ndarray:
        mask = self.children[0].mask(store)
        for child in self.children[1:]:
            mask = mask & child.mask(store)
        return mask

    def fingerprint(self) -> tuple:
        # Child order is commutative: sort by a stable textual key so
        # And(a, b) and And(b, a) share one cache identity.
        return ("and", tuple(sorted((c.fingerprint() for c in self.children), key=repr)))

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "and", "children": [c.as_dict() for c in self.children]}

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.children))})"


class Or(Predicate):
    """At least one child matches."""

    def __init__(self, *children: Predicate) -> None:
        self.children: Tuple[Predicate, ...] = tuple(_flatten(Or, children))

    def mask(self, store: AttributeStore) -> np.ndarray:
        mask = self.children[0].mask(store)
        for child in self.children[1:]:
            mask = mask | child.mask(store)
        return mask

    def fingerprint(self) -> tuple:
        return ("or", tuple(sorted((c.fingerprint() for c in self.children), key=repr)))

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "or", "children": [c.as_dict() for c in self.children]}

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.children))})"


class Not(Predicate):
    """The child does not match (plain set complement).

    Note the missing-value semantics: leaves never match rows whose
    attribute is missing (``NaN`` numeric, ``None`` categorical), so
    those rows *do* match the complement — ``~Eq("shop", "a")`` includes
    rows with no shop at all.  To exclude unknowns too, conjoin a
    presence test, e.g. ``~Eq("shop", "a") & In("shop", known_shops)``.
    """

    def __init__(self, child: Predicate) -> None:
        if not isinstance(child, Predicate):
            raise ValidationError(
                f"Not takes a predicate, got {type(child).__name__}"
            )
        self.child = child

    def mask(self, store: AttributeStore) -> np.ndarray:
        return ~self.child.mask(store)

    def fingerprint(self) -> tuple:
        return ("not", self.child.fingerprint())

    def as_dict(self) -> Dict[str, Any]:
        return {"op": "not", "child": self.child.as_dict()}

    def __repr__(self) -> str:
        return f"Not({self.child!r})"


def predicate_from_dict(data: Mapping[str, Any]) -> Predicate:
    """Rebuild a predicate from :meth:`Predicate.as_dict` output."""
    op = data.get("op")
    if op == "eq":
        return Eq(data["column"], data["value"])
    if op == "in":
        return In(data["column"], data["values"])
    if op == "range":
        return Range(data["column"], low=data.get("low"), high=data.get("high"))
    if op == "and":
        return And(*(predicate_from_dict(c) for c in data["children"]))
    if op == "or":
        return Or(*(predicate_from_dict(c) for c in data["children"]))
    if op == "not":
        return Not(predicate_from_dict(data["child"]))
    raise ValidationError(f"unknown predicate op {op!r}")

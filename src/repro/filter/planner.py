"""Filter planning: decide *where* a predicate is applied, then apply it.

In the spirit of in-database ML systems, filtering is planned inside the
index rather than bolted on after the fact.  Given a resolved boolean
mask, :class:`FilterPlanner` picks one of three strategies by estimated
selectivity and index capability:

* **prefilter** — selectivity is low: brute-force scan only the surviving
  subset (exact; cheaper than probing a structure that will discard most
  of what it finds);
* **inline** — the index exposes ``candidate_sets``: intersect each
  candidate set with the mask *before* the exact re-rank, so disallowed
  ids never reach the distance kernel;
* **postfilter** — anything else (graph / codec indexes): over-fetch
  ``k' > k`` results, drop disallowed ids, and retry with a
  multiplicatively larger ``k'`` until every query has ``k`` survivors or
  the candidates are exhausted.

Every strategy returns only ids satisfying the mask — filtered results
are exact *with respect to the predicate* by construction; strategies
differ in cost and (for approximate indexes) in recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..utils.distances import DEFAULT_BLOCK_SIZE, pairwise_topk
from ..utils.exceptions import ValidationError
from .attributes import AttributeStore
from .predicate import Predicate

#: strategies :meth:`FilterPlanner.plan` can choose
FILTER_STRATEGIES = ("empty", "prefilter", "inline", "postfilter")


def resolve_filter(filter_spec: Any, index: Any, n_rows: int) -> Optional[np.ndarray]:
    """Compile a ``filter=`` argument into a boolean mask of length ``n_rows``.

    Accepted forms:

    * ``None`` — no filtering (returns ``None``);
    * a :class:`~repro.filter.Predicate` — evaluated against the index's
      attached :class:`~repro.filter.AttributeStore`
      (``index.set_attributes``); rows beyond the store (vectors added to
      a mutable index without metadata) match nothing;
    * a boolean numpy array of length ``n_rows`` — used as-is;
    * an integer array / sequence — an id allowlist.
    """
    if filter_spec is None:
        return None
    if isinstance(filter_spec, Predicate):
        store = getattr(index, "attributes", None)
        if not isinstance(store, AttributeStore):
            raise ValidationError(
                f"{type(index).__name__} has no attribute store; call "
                "index.set_attributes(store) before filtering by predicate"
            )
        if store.n_rows > n_rows:
            raise ValidationError(
                f"attribute store has {store.n_rows} rows, index has {n_rows}"
            )
        mask = filter_spec.cached_mask(store)
        if mask.shape[0] < n_rows:
            # Rows past the store only exist legitimately on mutable
            # indexes (vectors added before AttributeStore.extend caught
            # up); on an immutable index a short store is a caller bug
            # that would silently exclude the tail ids from every result.
            capabilities = getattr(type(index), "capabilities", None)
            if not bool(getattr(capabilities, "mutable", False)):
                raise ValidationError(
                    f"attribute store has {store.n_rows} rows but "
                    f"{type(index).__name__} has {n_rows}; rebuild the store "
                    "with one row per id"
                )
            mask = np.concatenate(
                [mask, np.zeros(n_rows - mask.shape[0], dtype=bool)]
            )
        return mask
    spec = np.asarray(filter_spec)
    if spec.size == 0:
        # An empty allowlist (user may see zero ids) matches nothing —
        # np.asarray([]) defaults to float64, so handle it before dtype
        # validation rejects a filter the caller never typed.
        return np.zeros(n_rows, dtype=bool)
    if spec.dtype == bool:
        mask = spec.reshape(-1)
        if mask.shape[0] != n_rows:
            raise ValidationError(
                f"boolean filter mask has {mask.shape[0]} entries, index has {n_rows}"
            )
        return mask
    if not np.issubdtype(spec.dtype, np.integer):
        raise ValidationError(
            "filter must be a Predicate, a boolean mask, or an integer id allowlist"
        )
    allowlist = spec.reshape(-1)
    if allowlist.min() < 0 or allowlist.max() >= n_rows:
        raise ValidationError(
            f"filter allowlist ids must be in [0, {n_rows})"
        )
    if n_rows > 2 and allowlist.shape[0] == n_rows and allowlist.max() <= 1:
        # A full-length array of 0s and 1s is almost certainly a boolean
        # mask that lost its dtype (e.g. through JSON); interpreting it
        # as the allowlist {0, 1} would silently return wrong neighbours.
        # (On a 1- or 2-point index every valid allowlist looks like
        # this, so the guard stands down and allowlist semantics win.)
        raise ValidationError(
            f"ambiguous integer filter: {n_rows} values all in {{0, 1}} — "
            "pass dtype=bool for a mask, or np.flatnonzero(mask) for an allowlist"
        )
    mask = np.zeros(n_rows, dtype=bool)
    mask[allowlist] = True
    return mask


def _index_vectors(index: Any) -> Optional[np.ndarray]:
    """The raw vector matrix an index stores, if it exposes one."""
    for attr in ("_base", "_data"):
        vectors = getattr(index, attr, None)
        if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
            return vectors
    return None


def filter_row_count(index: Any) -> int:
    """Number of id rows a filter mask for ``index`` must cover.

    ``n_points`` for ordinary indexes; the full vector-store length
    (tombstoned rows included — ids are stable) for mutable composites
    like :class:`repro.shard.ShardedIndex`.
    """
    data = getattr(index, "_data", None)
    if isinstance(data, np.ndarray) and data.ndim == 2:
        return int(data.shape[0])
    return int(index.n_points)


def _index_metric(index: Any) -> str:
    metric = getattr(index, "metric", None)
    return str(metric) if metric else "euclidean"


@dataclass(frozen=True)
class FilterPlan:
    """One planning decision: strategy plus the numbers behind it."""

    strategy: str
    selectivity: float
    n_allowed: int
    initial_fetch: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strategy": self.strategy,
            "selectivity": self.selectivity,
            "n_allowed": self.n_allowed,
            "initial_fetch": self.initial_fetch,
        }


@dataclass(frozen=True)
class FilterPlanner:
    """Strategy selection knobs (a frozen value object; thread-safe).

    Parameters
    ----------
    prefilter_selectivity:
        At or below this surviving fraction the planner brute-forces the
        subset: scanning ``selectivity * n`` vectors exactly beats probing
        a structure that mostly returns disallowed ids.
    overfetch:
        Safety factor on the first post-filter fetch size
        (``k / selectivity`` candidates would be exactly enough *on
        average*; the factor absorbs skew).
    growth:
        Multiplier applied to the fetch size on each post-filter retry.
    """

    prefilter_selectivity: float = 0.05
    overfetch: float = 1.5
    growth: float = 2.0

    def plan(self, index: Any, mask: np.ndarray, k: int) -> FilterPlan:
        """Choose a strategy for ``k``-NN under ``mask`` on ``index``."""
        n_rows = int(mask.shape[0])
        n_allowed = int(np.count_nonzero(mask))
        selectivity = n_allowed / max(n_rows, 1)
        if n_allowed == 0:
            return FilterPlan("empty", 0.0, 0)
        capabilities = getattr(type(index), "capabilities", None)
        has_vectors = _index_vectors(index) is not None
        # An exact index's query *is* a scan, so the subset scan is its
        # filtered query at every selectivity, not just low ones.
        exact = bool(getattr(capabilities, "exact", False))
        if has_vectors and (exact or selectivity <= self.prefilter_selectivity):
            return FilterPlan("prefilter", selectivity, n_allowed)
        supports_inline = bool(
            getattr(capabilities, "supports_candidate_sets", False)
        ) and hasattr(index, "candidate_sets")
        if supports_inline and has_vectors:
            return FilterPlan("inline", selectivity, n_allowed)
        fetch = min(
            n_rows,
            max(2 * k, int(np.ceil(self.overfetch * k / max(selectivity, 1e-9)))),
        )
        return FilterPlan("postfilter", selectivity, n_allowed, initial_fetch=fetch)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def filtered_search(
        self,
        index: Any,
        queries: np.ndarray,
        k: int,
        mask: np.ndarray,
        query_kwargs: Optional[Dict[str, Any]] = None,
        strategy: Optional[str] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run the planned strategy; every returned id satisfies ``mask``.

        ``query_kwargs`` are the index's own unfiltered query keywords
        (``n_probes``, ``ef``, ...), honoured by the inline and
        post-filter strategies.  ``strategy`` forces a specific strategy
        instead of planning one (exact scans force ``"prefilter"`` — the
        subset scan *is* their scan); an all-false mask short-circuits
        either way.  The result always has ``k`` columns; rows with fewer
        than ``k`` allowed neighbours are padded with ``-1`` / ``inf``,
        exactly like an unfiltered partition index with an underfull
        candidate set.
        """
        if strategy is not None:
            if strategy not in FILTER_STRATEGIES:
                raise ValidationError(
                    f"unknown filter strategy {strategy!r}; expected one of {FILTER_STRATEGIES}"
                )
            if strategy == "prefilter" and _index_vectors(index) is None:
                raise ValidationError(
                    f"cannot force 'prefilter' on {type(index).__name__}: "
                    "the index does not expose its raw vectors"
                )
            if strategy == "inline" and not (
                hasattr(index, "candidate_sets") and _index_vectors(index) is not None
            ):
                raise ValidationError(
                    f"cannot force 'inline' on {type(index).__name__}: "
                    "the index does not expose candidate_sets"
                )
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        kwargs = dict(query_kwargs or {})
        k = int(k)
        # Mutable indexes tombstone removed ids in an _alive mask while
        # keeping their rows in the vector store; fold it in so a direct
        # prefilter/inline scan can never resurrect a removed vector.
        alive = getattr(index, "_alive", None)
        if isinstance(alive, np.ndarray) and alive.shape == mask.shape:
            mask = mask & alive
        # Internally fetch at most n_rows candidates, but always hand the
        # caller k columns so filter= never changes the result shape.
        width = min(k, int(mask.shape[0]))
        if strategy is None and mask.all():
            # Nothing is excluded: the unfiltered fast path returns the
            # same answer without per-call subset copies (mirrors the
            # all-true shard short-circuit in ShardedIndex._scatter).
            # A *forced* strategy is still honoured — callers forcing
            # "prefilter" contract an exact scan at every selectivity.
            ids, distances = index.batch_query(queries, width, **kwargs)
            return _pad(ids, distances, k)
        plan = self.plan(index, mask, width)
        chosen = plan.strategy if strategy is None else strategy
        if plan.strategy == "empty" or chosen == "empty":
            return (
                np.full((queries.shape[0], k), -1, dtype=np.int64),
                np.full((queries.shape[0], k), np.inf),
            )
        if chosen == "prefilter":
            ids, distances = self._prefilter(index, queries, width, mask)
        elif chosen == "inline":
            ids, distances = self._inline(index, queries, width, mask, kwargs)
        else:
            ids, distances = self._postfilter(index, queries, width, mask, kwargs, plan)
        return _pad(ids, distances, k)

    def _prefilter(
        self, index: Any, queries: np.ndarray, k: int, mask: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact scan of only the allowed rows, remapped to global ids."""
        vectors = _index_vectors(index)
        allowed = np.flatnonzero(mask)
        local_ids, distances = pairwise_topk(
            queries,
            vectors[allowed],
            min(k, allowed.shape[0]),
            metric=_index_metric(index),
            # honour the index's own memory bound when it configures one
            block_size=int(getattr(index, "block_size", 0) or DEFAULT_BLOCK_SIZE),
        )
        return _pad(allowed[local_ids], distances, k)

    def _inline(
        self,
        index: Any,
        queries: np.ndarray,
        k: int,
        mask: np.ndarray,
        kwargs: Dict[str, Any],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mask candidate sets before the exact re-rank."""
        from ..core.base import rerank_candidates  # local: core imports filter

        capabilities = getattr(type(index), "capabilities", None)
        knob = getattr(capabilities, "probe_parameter", None) or "n_probes"
        n_probes = int(kwargs.get(knob, 1))
        candidates = index.candidate_sets(queries, n_probes)
        filtered = [c[mask[c]] for c in candidates]
        return rerank_candidates(
            _index_vectors(index), queries, filtered, k, metric=_index_metric(index)
        )

    def _postfilter(
        self,
        index: Any,
        queries: np.ndarray,
        k: int,
        mask: np.ndarray,
        kwargs: Dict[str, Any],
        plan: FilterPlan,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Over-fetch, drop disallowed ids, retry multiplicatively.

        Each retry round re-queries only the rows still short of ``k``
        survivors.  A row is finalised (and dropped from the next round)
        as soon as it has enough, the fetch already covered every row, or
        its candidate pool is exhausted — the index returned fewer ids
        than asked (``-1`` padding, or a clipped result width), so a
        larger fetch under the same query kwargs cannot add candidates.
        """
        n_rows = int(mask.shape[0])
        out_ids = np.full((queries.shape[0], k), -1, dtype=np.int64)
        out_distances = np.full((queries.shape[0], k), np.inf)
        remaining = np.arange(queries.shape[0])
        fetch = max(plan.initial_fetch, k)
        while remaining.size:
            ids, distances = index.batch_query(queries[remaining], fetch, **kwargs)
            valid = (ids >= 0) & mask[np.clip(ids, 0, n_rows - 1)]
            exhausted = (ids < 0).any(axis=1) | (ids.shape[1] < fetch)
            done = (valid.sum(axis=1) >= k) | (fetch >= n_rows) | exhausted
            for position in np.flatnonzero(done):
                row = remaining[position]
                keep = np.flatnonzero(valid[position])[:k]
                out_ids[row, : keep.shape[0]] = ids[position, keep]
                out_distances[row, : keep.shape[0]] = distances[position, keep]
            remaining = remaining[~done]
            fetch = min(n_rows, int(np.ceil(fetch * self.growth)))
        return out_ids, out_distances


def _pad(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Widen result arrays to ``k`` columns with -1 / inf padding."""
    short = k - ids.shape[1]
    if short <= 0:
        return ids.astype(np.int64, copy=False), distances
    return (
        np.pad(ids.astype(np.int64, copy=False), ((0, 0), (0, short)), constant_values=-1),
        np.pad(distances, ((0, 0), (0, short)), constant_values=np.inf),
    )


#: shared default planner used by every backend's ``filter=`` path
DEFAULT_PLANNER = FilterPlanner()


def filtered_search(
    index: Any,
    queries: np.ndarray,
    k: int,
    filter_spec: Any,
    *,
    n_rows: Optional[int] = None,
    planner: Optional[FilterPlanner] = None,
    query_kwargs: Optional[Dict[str, Any]] = None,
    strategy: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve ``filter_spec`` against ``index`` and run the planned search.

    The one-call entry point backends use inside ``batch_query`` when a
    ``filter=`` argument is present.
    """
    if n_rows is None:
        n_rows = filter_row_count(index)
    mask = resolve_filter(filter_spec, index, n_rows)
    if mask is None:
        raise ValidationError("filtered_search needs a non-None filter")
    return (planner or DEFAULT_PLANNER).filtered_search(
        index, queries, k, mask, query_kwargs=query_kwargs, strategy=strategy
    )

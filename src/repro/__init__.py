"""neural-partitioner: reproduction of "Unsupervised Space Partitioning for
Nearest Neighbor Search" (Fahim, Ali, Cheema — EDBT 2023).

The public API is re-exported lazily from the subpackages so that importing
:mod:`repro` stays cheap.  The most commonly used entry points are:

* :class:`repro.core.UspIndex` — build/query the unsupervised space
  partitioning ANN index (the paper's contribution).
* :class:`repro.core.UspEnsembleIndex` — the boosted ensemble variant.
* :mod:`repro.baselines` — K-means, Neural LSH, LSH, and tree baselines.
* :mod:`repro.ann` — brute force, IVF-PQ, HNSW, and ScaNN-like back-ends.
* :mod:`repro.datasets` — synthetic SIFT-like / MNIST-like benchmark data.
* :mod:`repro.eval` — recall metrics and the experiment harness.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

__version__ = "1.0.0"

_LAZY_SUBMODULES = {
    "nn",
    "utils",
    "datasets",
    "core",
    "baselines",
    "ann",
    "clustering",
    "eval",
}

_LAZY_ATTRS = {
    # name -> (module, attribute)
    "UspIndex": ("repro.core", "UspIndex"),
    "UspEnsembleIndex": ("repro.core", "UspEnsembleIndex"),
    "HierarchicalUspIndex": ("repro.core", "HierarchicalUspIndex"),
    "UspConfig": ("repro.core", "UspConfig"),
    "load_dataset": ("repro.datasets", "load_dataset"),
    "knn_accuracy": ("repro.eval", "knn_accuracy"),
}

__all__ = sorted(_LAZY_SUBMODULES | set(_LAZY_ATTRS) | {"__version__"})


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f"repro.{name}")
    if name in _LAZY_ATTRS:
        module_name, attr = _LAZY_ATTRS[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import ann, baselines, clustering, core, datasets, eval, nn, utils

"""neural-partitioner: reproduction of "Unsupervised Space Partitioning for
Nearest Neighbor Search" (Fahim, Ali, Cheema — EDBT 2023).

The library grows the paper's comparison — USP against K-means, Neural
LSH, classical LSH, partition trees, and full ANN pipelines (IVF-PQ,
HNSW, ScaNN) — into one system behind a single public API:

* :func:`repro.api.make_index` — construct **any** back-end by registry
  name: ``make_index("usp", n_bins=16)``, ``make_index("hnsw", m=16)``,
  ``make_index("kmeans-scann", n_bins=32)``, ...;
  :func:`repro.api.available_indexes` lists every name.
* The :class:`repro.api.AnnIndex` protocol — every index follows
  ``build(base)`` / ``query`` / ``batch_query`` / ``stats()``, with an
  :class:`repro.api.IndexCapabilities` descriptor on each class (metric
  support, probe semantics, parameter-count reporting).
* Persistence — every registered index round-trips through
  ``index.save(path)`` / :func:`repro.api.load_index` (JSON config +
  ``.npz`` arrays), answering queries bitwise-identically after reload.
* Serving — :class:`repro.service.SearchService` wraps any built or
  reloaded index with typed :class:`repro.service.QueryRequest` requests,
  micro-batching, thread-pooled execution, an optional LRU result cache,
  and latency/throughput/recall counters; :class:`repro.service.Router`
  hosts several named services with capability-based dispatch and
  whole-deployment save/restore.

The underlying subpackages remain importable directly (and are loaded
lazily, so ``import repro`` stays cheap):

* :mod:`repro.core` — the USP index, ensemble, and hierarchy (the
  paper's contribution).
* :mod:`repro.baselines` — K-means, Neural LSH, LSH, and tree baselines.
* :mod:`repro.ann` — brute force, IVF-PQ, HNSW, and ScaNN-like back-ends.
* :mod:`repro.datasets` — synthetic SIFT-like / MNIST-like benchmark data.
* :mod:`repro.eval` — recall metrics, sweeps, and the experiment harness.

Naming convention: *indexes build, codecs fit* — every index exposes
``build``; the quantizers (:class:`repro.ann.ProductQuantizer`,
:class:`repro.ann.AnisotropicQuantizer`) keep ``fit``.  The old spellings
survive as thin aliases that raise :class:`DeprecationWarning`.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

__version__ = "1.1.0"

_LAZY_SUBMODULES = {
    "api",
    "nn",
    "utils",
    "datasets",
    "core",
    "baselines",
    "ann",
    "clustering",
    "eval",
    "filter",
    "net",
    "quant",
    "replica",
    "service",
    "shard",
    "store",
    "tenant",
}

_LAZY_ATTRS = {
    # name -> (module, attribute)
    "AnnIndex": ("repro.api", "AnnIndex"),
    "MutableIndex": ("repro.api", "MutableIndex"),
    "IndexCapabilities": ("repro.api", "IndexCapabilities"),
    "ShardedIndex": ("repro.shard", "ShardedIndex"),
    "AttributeStore": ("repro.filter", "AttributeStore"),
    "Predicate": ("repro.filter", "Predicate"),
    "FilterPlanner": ("repro.filter", "FilterPlanner"),
    "make_index": ("repro.api", "make_index"),
    "available_indexes": ("repro.api", "available_indexes"),
    "index_info": ("repro.api", "index_info"),
    "register_index": ("repro.api", "register_index"),
    "save_index": ("repro.api", "save_index"),
    "load_index": ("repro.api", "load_index"),
    "UspIndex": ("repro.core", "UspIndex"),
    "UspEnsembleIndex": ("repro.core", "UspEnsembleIndex"),
    "HierarchicalUspIndex": ("repro.core", "HierarchicalUspIndex"),
    "UspConfig": ("repro.core", "UspConfig"),
    "load_dataset": ("repro.datasets", "load_dataset"),
    "knn_accuracy": ("repro.eval", "knn_accuracy"),
    "Collection": ("repro.store", "Collection"),
    "MaintenanceLoop": ("repro.store", "MaintenanceLoop"),
    "WriteAheadLog": ("repro.store", "WriteAheadLog"),
    "SearchService": ("repro.service", "SearchService"),
    "QueryRequest": ("repro.service", "QueryRequest"),
    "QueryResult": ("repro.service", "QueryResult"),
    "BatchResult": ("repro.service", "BatchResult"),
    "Router": ("repro.service", "Router"),
    "SearchServer": ("repro.net", "SearchServer"),
    "ServerConfig": ("repro.net", "ServerConfig"),
    "Sq8Index": ("repro.quant", "Sq8Index"),
    "PqAdcIndex": ("repro.quant", "PqAdcIndex"),
    "VectorStore": ("repro.quant", "VectorStore"),
    "Primary": ("repro.replica", "Primary"),
    "Follower": ("repro.replica", "Follower"),
    "ReplicaGroup": ("repro.replica", "ReplicaGroup"),
    "ReplicationLoop": ("repro.replica", "ReplicationLoop"),
    "SessionToken": ("repro.replica", "SessionToken"),
    "TenantRegistry": ("repro.tenant", "TenantRegistry"),
    "TenantConfig": ("repro.tenant", "TenantConfig"),
    "TenantGateway": ("repro.tenant", "TenantGateway"),
    "FairScheduler": ("repro.tenant", "FairScheduler"),
}

__all__ = sorted(_LAZY_SUBMODULES | set(_LAZY_ATTRS) | {"__version__"})


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        return importlib.import_module(f"repro.{name}")
    if name in _LAZY_ATTRS:
        module_name, attr = _LAZY_ATTRS[name]
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return __all__


if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import ann, api, baselines, clustering, core, datasets, eval, filter, net, nn, quant, replica, service, shard, store, tenant, utils

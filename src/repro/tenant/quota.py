"""Rate quotas: a monotonic-clock token bucket with an injectable clock.

Each tenant holds one bucket per rate-limited resource (queries,
write ops).  The bucket refills continuously at ``rate`` tokens per
second up to ``burst``; acquiring ``n`` tokens succeeds when the balance
covers them — and, so that a single batch larger than the burst is not
un-servable forever, a *full* bucket also grants an oversized acquire by
dipping the balance negative (the debt refills at ``rate``, so sustained
throughput stays bounded by the configured rate either way).

A denied acquire reports the exact refill-derived wait until it would
succeed; the serving layer forwards it as the 429 ``Retry-After``.  The
clock is injected (``clock=time.monotonic`` by default) so tests drive
refill deterministically — no ``time.sleep`` anywhere in the suite.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..utils.exceptions import QuotaExceededError, ValidationError


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second up to ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if float(rate) <= 0:
            raise ValidationError("TokenBucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst <= 0:
            raise ValidationError("TokenBucket burst must be positive")
        self._clock = clock
        self._tokens = self.burst
        self._updated = float(clock())
        self._lock = threading.Lock()
        self.granted = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Current balance (refilled to now; may be negative after debt)."""
        with self._lock:
            self._refill(float(self._clock()))
            return self._tokens

    def try_acquire(self, n: float = 1.0) -> Optional[float]:
        """Take ``n`` tokens; ``None`` on success, retry-after seconds on denial.

        An acquire larger than ``burst`` is granted only from a full
        bucket (balance goes negative — debt); otherwise the denial's
        retry-after is exactly the refill time until the acquire would
        succeed, so a client honouring it never retries early.
        """
        n = float(n)
        if n <= 0:
            return None
        with self._lock:
            self._refill(float(self._clock()))
            needed = min(n, self.burst)  # oversize acquires need a full bucket
            if self._tokens >= needed:
                self._tokens -= n
                self.granted += 1
                return None
            self.denied += 1
            return (needed - self._tokens) / self.rate

    def acquire_or_raise(self, n: float = 1.0, *, resource: str = "qps") -> None:
        """:meth:`try_acquire` that raises a typed :class:`QuotaExceededError`."""
        retry_after = self.try_acquire(n)
        if retry_after is not None:
            raise QuotaExceededError(
                f"{resource} quota exceeded: {n:g} token(s) requested, "
                f"refill in {retry_after:.3f}s (rate {self.rate:g}/s, "
                f"burst {self.burst:g})",
                resource=resource,
                retry_after_seconds=retry_after,
            )

    def stats(self) -> dict:
        with self._lock:
            self._refill(float(self._clock()))
            return {
                "rate": self.rate,
                "burst": self.burst,
                "tokens": self._tokens,
                "granted": self.granted,
                "denied": self.denied,
            }

    def __repr__(self) -> str:
        return (
            f"TokenBucket(rate={self.rate:g}/s, burst={self.burst:g}, "
            f"tokens={self.tokens:.2f})"
        )

"""Declarative per-tenant policy: quotas, ACL, and cache weight.

A :class:`TenantConfig` is pure data — the registry turns it into live
enforcement objects (token buckets, a cache partition, an injected ACL
predicate).  Keeping it declarative means tenant policy round-trips
through JSON (``as_dict``/``from_dict``) exactly like index and service
configs do, so a control plane can store and diff tenant definitions
without importing any runtime machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..filter.predicate import Predicate, predicate_from_dict
from ..utils.exceptions import ValidationError


@dataclass(frozen=True)
class TenantConfig:
    """Quotas and access policy for one tenant.

    Parameters
    ----------
    acl:
        Mandatory filter predicate AND-ed into every query the tenant
        issues (``None`` means the tenant may see the whole namespace).
        Callers cannot opt out: the gateway composes it with any
        user-supplied filter before the request reaches the service.
    max_vectors:
        Hard cap on vectors the tenant may store (``None`` = unlimited).
        Exceeding it raises a non-retryable quota error.
    qps / qps_burst:
        Query token bucket: sustained queries/second and burst size
        (burst defaults to ``qps``).  ``None`` disables rate limiting.
    write_ops / write_burst:
        Same, for mutations (add/remove/extend_attributes).
    cache_weight:
        Relative share of the global result-cache byte budget.  Eviction
        pressure lands on the partition with the highest bytes-per-weight,
        so a weight-2 tenant sustains twice the resident bytes of a
        weight-1 tenant under contention.
    """

    acl: Optional[Predicate] = None
    max_vectors: Optional[int] = None
    qps: Optional[float] = None
    qps_burst: Optional[float] = None
    write_ops: Optional[float] = None
    write_burst: Optional[float] = None
    cache_weight: float = 1.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.acl is not None and not isinstance(self.acl, Predicate):
            raise ValidationError(
                "TenantConfig acl must be a Predicate or None, got "
                f"{type(self.acl).__name__}"
            )
        if self.max_vectors is not None and int(self.max_vectors) < 0:
            raise ValidationError("TenantConfig max_vectors must be >= 0")
        for name in ("qps", "qps_burst", "write_ops", "write_burst"):
            value = getattr(self, name)
            if value is not None and float(value) <= 0:
                raise ValidationError(f"TenantConfig {name} must be positive")
        if self.qps_burst is not None and self.qps is None:
            raise ValidationError("TenantConfig qps_burst requires qps")
        if self.write_burst is not None and self.write_ops is None:
            raise ValidationError("TenantConfig write_burst requires write_ops")
        if float(self.cache_weight) <= 0:
            raise ValidationError("TenantConfig cache_weight must be positive")

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "acl": None if self.acl is None else self.acl.as_dict(),
            "max_vectors": self.max_vectors,
            "qps": self.qps,
            "qps_burst": self.qps_burst,
            "write_ops": self.write_ops,
            "write_burst": self.write_burst,
            "cache_weight": float(self.cache_weight),
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TenantConfig":
        if not isinstance(payload, dict):
            raise ValidationError("TenantConfig payload must be a dict")
        data = dict(payload)
        acl = data.pop("acl", None)
        if acl is not None and not isinstance(acl, Predicate):
            acl = predicate_from_dict(acl)
        known = {
            "max_vectors",
            "qps",
            "qps_burst",
            "write_ops",
            "write_burst",
            "cache_weight",
            "extra",
        }
        unknown = set(data) - known
        if unknown:
            raise ValidationError(
                f"TenantConfig got unknown keys: {sorted(unknown)}"
            )
        return cls(acl=acl, **data)

"""Cross-tenant micro-batching with deficit-round-robin fairness.

Tenants sharing a machine submit batches to one :class:`FairScheduler`
instead of calling their gateways directly.  The scheduler drains the
per-tenant queues in *deficit round robin* over **query rows** (the unit
actual work is proportional to, unlike request counts): each round every
backlogged tenant's deficit grows by ``quantum`` rows and it dequeues
batches while the head fits its deficit.  A tenant that floods its queue
therefore stretches only its own waiting time — neighbours keep draining
``quantum`` rows per round no matter how deep the flooder's backlog is.

Within a round, picks are grouped by ``(delegate service, effective
request)`` and each group executes as ONE stacked ``search_batch`` call:
tenants whose effective requests are equal (same namespace, same ``k``
and probes, fingerprint-equal ACL) genuinely coalesce into a single
kernel invocation.  Query rows are computed independently, so the
stacked call is bitwise-identical to running each tenant's slice
serially — the property test in ``tests/test_tenant.py`` pins this.

ACL injection and quota charging happen at submit time (through the
gateway), so an over-quota tenant is refused before it occupies queue
space and a queued batch can never bypass its tenant's ACL.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from concurrent.futures import Future
from time import perf_counter
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..obs.trace import current_span_id, current_trace
from ..service.request import BatchResult, QueryRequest
from ..utils.exceptions import QuotaExceededError, ValidationError
from .gateway import TenantGateway


class _Pick:
    __slots__ = (
        "gateway",
        "queries",
        "request",
        "future",
        "trace",
        "parent_id",
        "submitted_at",
    )

    def __init__(self, gateway, queries, request, future) -> None:
        self.gateway = gateway
        self.queries = queries
        self.request = request
        self.future = future
        # Queue time is attributed to the submitter's trace: the span is
        # recorded when the pick executes (on the drain thread), spanning
        # submit -> execution-done under the span active at submit time.
        self.trace = current_trace()
        self.parent_id = current_span_id() if self.trace is not None else None
        self.submitted_at = perf_counter()


class FairScheduler:
    """Deficit-round-robin batcher over per-tenant queues (row units)."""

    def __init__(
        self,
        *,
        quantum_rows: int = 64,
        max_pending_rows: int = 4096,
    ) -> None:
        if int(quantum_rows) < 1:
            raise ValidationError("FairScheduler quantum_rows must be >= 1")
        if int(max_pending_rows) < 1:
            raise ValidationError("FairScheduler max_pending_rows must be >= 1")
        self.quantum_rows = int(quantum_rows)
        self.max_pending_rows = int(max_pending_rows)
        self._queues: "OrderedDict[str, Deque[_Pick]]" = OrderedDict()
        self._pending_rows: Dict[str, int] = {}
        self._deficits: Dict[str, float] = {}
        self.served_rows: Dict[str, int] = {}
        self.rounds = 0
        self.coalesced_calls = 0
        self.executed_calls = 0
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._stopping = False

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        gateway: TenantGateway,
        queries: np.ndarray,
        request: Optional[QueryRequest] = None,
        **overrides,
    ) -> "Future[BatchResult]":
        """Enqueue one tenant batch; the future resolves to a BatchResult.

        ACL injection and the query-rate quota are applied *now*: a
        denied tenant gets the typed quota error immediately instead of
        holding queue space, and the queued request already carries its
        mandatory predicate.  A per-tenant bound on queued rows turns a
        runaway submitter into its own 429 (``resource="queue"``).
        """
        request = gateway.effective_request(request, **overrides)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        rows = int(queries.shape[0])
        if rows == 0:
            raise ValidationError("FairScheduler.submit needs at least one query row")
        with self._lock:
            pending = self._pending_rows.get(gateway.name, 0)
            if pending + rows > self.max_pending_rows:
                raise QuotaExceededError(
                    f"tenant {gateway.name!r} has {pending} rows queued; "
                    f"{rows} more would exceed the {self.max_pending_rows}-row "
                    "pending bound",
                    resource="queue",
                    retry_after_seconds=None,
                )
        gateway._charge(gateway.query_bucket, rows, "qps")
        future: "Future[BatchResult]" = Future()
        pick = _Pick(gateway, queries, request, future)
        with self._lock:
            queue = self._queues.get(gateway.name)
            if queue is None:
                queue = self._queues[gateway.name] = deque()
            queue.append(pick)
            self._pending_rows[gateway.name] = (
                self._pending_rows.get(gateway.name, 0) + rows
            )
            self._work.notify()
        return future

    def pending_rows(self, tenant: Optional[str] = None) -> int:
        with self._lock:
            if tenant is not None:
                return self._pending_rows.get(tenant, 0)
            return sum(self._pending_rows.values())

    # ------------------------------------------------------------------ #
    # one DRR round
    # ------------------------------------------------------------------ #
    def _collect_round(self) -> List[_Pick]:
        """Dequeue one round's fair share (callers must NOT hold the lock)."""
        picks: List[_Pick] = []
        with self._lock:
            for name in list(self._queues):
                queue = self._queues[name]
                if not queue:
                    # Empty queue: classic DRR resets the deficit so idle
                    # tenants cannot bank credit while away.
                    self._deficits.pop(name, None)
                    del self._queues[name]
                    continue
                deficit = self._deficits.get(name, 0.0) + self.quantum_rows
                while queue:
                    rows = int(queue[0].queries.shape[0])
                    if rows > deficit:
                        break
                    pick = queue.popleft()
                    deficit -= rows
                    self._pending_rows[name] = max(
                        0, self._pending_rows.get(name, 0) - rows
                    )
                    picks.append(pick)
                self._deficits[name] = deficit if queue else 0.0
        return picks

    def run_round(self) -> int:
        """Execute one fair round; returns the number of rows served."""
        picks = self._collect_round()
        if not picks:
            return 0
        with self._lock:
            self.rounds += 1

        # Group by (delegate identity, effective request): equal requests
        # against the same service stack into one kernel call.
        groups: "OrderedDict[tuple, List[_Pick]]" = OrderedDict()
        for pick in picks:
            key = (id(pick.gateway.service), pick.request)
            groups.setdefault(key, []).append(pick)

        served = 0
        for members in groups.values():
            served += self._execute_group(members)
        return served

    def _execute_group(self, members: List[_Pick]) -> int:
        service = members[0].gateway.service
        request = members[0].request
        stacked = (
            members[0].queries
            if len(members) == 1
            else np.vstack([pick.queries for pick in members])
        )
        rows = int(stacked.shape[0])
        start = perf_counter()
        try:
            result = service.search_batch(stacked, request)
        except BaseException as exc:  # noqa: BLE001 - fan the failure out
            done = perf_counter()
            for pick in members:
                self._record_span(pick, done, len(members), error=repr(exc))
                pick.future.set_exception(exc)
            return rows
        elapsed = perf_counter() - start
        done = start + elapsed
        with self._lock:
            self.executed_calls += 1
            if len(members) > 1:
                self.coalesced_calls += 1
        offset = 0
        for pick in members:
            n = int(pick.queries.shape[0])
            slice_result = BatchResult(
                ids=result.ids[offset : offset + n].copy(),
                distances=result.distances[offset : offset + n].copy(),
                request=pick.request,
                elapsed_seconds=elapsed,
                mode=result.mode,
                cache_hits=result.cache_hits if len(members) == 1 else 0,
            )
            offset += n
            self._record_span(pick, done, len(members))
            pick.gateway._observe_query(n, elapsed, hits=slice_result.cache_hits)
            with self._lock:
                self.served_rows[pick.gateway.name] = (
                    self.served_rows.get(pick.gateway.name, 0) + n
                )
            pick.future.set_result(slice_result)
        return rows

    @staticmethod
    def _record_span(pick: _Pick, done: float, group_size: int, **attributes) -> None:
        """Attribute queue + execution time to the submitter's trace."""
        if pick.trace is None:
            return
        pick.trace.record(
            "scheduler.batch",
            pick.submitted_at,
            done,
            parent_id=pick.parent_id,
            tenant=pick.gateway.name,
            rows=int(pick.queries.shape[0]),
            coalesced=group_size > 1,
            **attributes,
        )

    def flush(self) -> int:
        """Run rounds until every queue is empty; returns rows served.

        A round can serve zero rows while work is still queued (a batch
        bigger than the accumulated deficit waits, banking credit), so
        the loop keys on pending rows, not on the last round's yield.
        """
        total = 0
        while self.pending_rows() > 0:
            total += self.run_round()
        return total

    # ------------------------------------------------------------------ #
    # background draining
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Drain queues on a background thread until :meth:`stop`."""
        with self._lock:
            if self._thread is not None:
                return
            self._stopping = False
            self._thread = threading.Thread(
                target=self._drain_loop, name="tenant-scheduler", daemon=True
            )
            self._thread.start()

    def _drain_loop(self) -> None:
        while True:
            with self._lock:
                while not self._stopping and not any(self._queues.values()):
                    self._work.wait(timeout=0.1)
                if self._stopping and not any(self._queues.values()):
                    return
            self.run_round()

    def stop(self) -> None:
        """Finish queued work, then stop the background thread (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
            self._stopping = True
            self._work.notify_all()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "FairScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def stats(self) -> dict:
        with self._lock:
            return {
                "quantum_rows": self.quantum_rows,
                "max_pending_rows": self.max_pending_rows,
                "rounds": self.rounds,
                "executed_calls": self.executed_calls,
                "coalesced_calls": self.coalesced_calls,
                "pending_rows": dict(self._pending_rows),
                "served_rows": dict(self.served_rows),
            }

"""Per-tenant result-cache partitions under one global byte budget.

Every tenant gateway owns a private :class:`~repro.service.cache.QueryCache`
partition — isolation by construction, a tenant can never read another
tenant's entries — but the partitions share one pool of memory managed
here.  After any insert the budget reconciles: while total resident bytes
exceed ``max_bytes``, it evicts the LRU entry of the partition with the
highest bytes-per-weight.  Weighted eviction means a ``cache_weight=2``
tenant sustains twice the resident bytes of a weight-1 tenant once the
pool is contended, while an idle pool lets any single tenant use all of
it — strictly better than static per-tenant carve-outs.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..service.cache import QueryCache
from ..utils.exceptions import ValidationError


class CacheBudget:
    """A shared byte budget arbitrating eviction across cache partitions."""

    #: Entry-count bound for partitions; the byte budget is the real limit,
    #: this just keeps any one partition's dict from growing without bound
    #: when entries are tiny.
    DEFAULT_PARTITION_ENTRIES = 4096

    def __init__(self, max_bytes: int) -> None:
        if int(max_bytes) < 1:
            raise ValidationError("CacheBudget max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._partitions: Dict[str, QueryCache] = {}
        self._weights: Dict[str, float] = {}
        self._lock = threading.Lock()
        self.evictions = 0

    def create_partition(
        self,
        name: str,
        *,
        weight: float = 1.0,
        max_entries: Optional[int] = None,
    ) -> QueryCache:
        if float(weight) <= 0:
            raise ValidationError("CacheBudget partition weight must be positive")
        with self._lock:
            if name in self._partitions:
                raise ValidationError(f"cache partition {name!r} already exists")
            cache = QueryCache(max_entries or self.DEFAULT_PARTITION_ENTRIES)
            self._partitions[name] = cache
            self._weights[name] = float(weight)
        return cache

    def drop_partition(self, name: str) -> None:
        with self._lock:
            cache = self._partitions.pop(name, None)
            self._weights.pop(name, None)
        if cache is not None:
            cache.clear()

    def total_bytes(self) -> int:
        with self._lock:
            return sum(cache.bytes for cache in self._partitions.values())

    def reconcile(self) -> int:
        """Evict until the pool fits the budget; returns entries evicted.

        Pressure lands on the partition with the highest bytes-per-weight
        that still holds entries, so weights set steady-state shares.
        """
        evicted = 0
        while True:
            with self._lock:
                total = sum(c.bytes for c in self._partitions.values())
                if total <= self.max_bytes:
                    return evicted
                victim = max(
                    (c for c in self._partitions.values() if len(c) > 0),
                    key=lambda c: c.bytes / self._weights_for(c),
                    default=None,
                )
            if victim is None or victim.evict_one() == 0:
                return evicted
            evicted += 1
            self.evictions += 1

    def _weights_for(self, cache: QueryCache) -> float:
        # Callers hold _lock.  Linear scan is fine: tenant counts are small
        # compared to query rates, and this only runs under byte pressure.
        for name, partition in self._partitions.items():
            if partition is cache:
                return self._weights[name]
        return 1.0

    def stats(self) -> dict:
        with self._lock:
            partitions = {
                name: {
                    "weight": self._weights[name],
                    **cache.stats(),
                }
                for name, cache in self._partitions.items()
            }
            total = sum(c.bytes for c in self._partitions.values())
        return {
            "max_bytes": self.max_bytes,
            "total_bytes": total,
            "evictions": self.evictions,
            "partitions": partitions,
        }

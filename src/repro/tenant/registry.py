"""The tenant control plane: namespaces, tenants, budget, scheduler.

A :class:`TenantRegistry` owns the pieces the rest of the stack hosts:

* **namespaces** — duck-typed serving targets (``SearchService``,
  collection-backed services, ``ReplicaGroup``) that tenants attach to.
  Several tenants may share one namespace; their ACL predicates carve it
  into disjoint (or overlapping, if so configured) views.
* **tenants** — :class:`~repro.tenant.gateway.TenantGateway` instances
  built from declarative :class:`~repro.tenant.config.TenantConfig`
  policy; the registry wires in the shared cache budget and clock.
* **cache budget** — one :class:`~repro.tenant.cache.CacheBudget` pool
  all partitions draw from, with weighted eviction.
* **scheduler** — one :class:`~repro.tenant.scheduler.FairScheduler`
  giving cross-tenant submissions deficit-round-robin fairness.

Lookup of an unknown tenant raises the typed
:class:`~repro.utils.exceptions.UnknownTenantError` the wire layer maps
to 404 ``unknown_tenant``, so a fat-fingered ``X-Tenant`` header cannot
fall through to some default namespace.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Dict, List, Optional

from ..utils.exceptions import UnknownTenantError, ValidationError
from .cache import CacheBudget
from .config import TenantConfig
from .gateway import TenantGateway
from .scheduler import FairScheduler

_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Methods a namespace target must answer — the same duck-typed serving
#: surface the Router checks before hosting a replica group.
_SERVICE_SURFACE = ("search", "search_batch", "stats", "service_config")


class TenantRegistry:
    """Named tenants over named namespaces, with shared budget and scheduler."""

    def __init__(
        self,
        *,
        cache_budget_bytes: Optional[int] = None,
        quantum_rows: int = 64,
        max_pending_rows: int = 4096,
        clock=time.monotonic,
    ) -> None:
        self.budget = (
            None if cache_budget_bytes is None else CacheBudget(cache_budget_bytes)
        )
        self.scheduler = FairScheduler(
            quantum_rows=quantum_rows, max_pending_rows=max_pending_rows
        )
        self._clock = clock
        self._namespaces: Dict[str, object] = {}
        self._tenants: Dict[str, TenantGateway] = {}
        self._lock = threading.Lock()
        self._tracer = None

    @property
    def tracer(self):
        """Shared Tracer, injected by the hosting SearchServer (if any)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        with self._lock:
            gateways = list(self._tenants.values())
        for gateway in gateways:
            if gateway.tracer is None:
                gateway.tracer = tracer

    @staticmethod
    def _check_name(name: str, kind: str) -> str:
        name = str(name)
        if not _NAME_PATTERN.match(name):
            raise ValidationError(
                f"{kind} name {name!r} must match {_NAME_PATTERN.pattern}"
            )
        return name

    # ------------------------------------------------------------------ #
    # namespaces
    # ------------------------------------------------------------------ #
    def add_namespace(self, name: str, service) -> None:
        """Register a serving target tenants can attach to."""
        name = self._check_name(name, "namespace")
        missing = [
            method
            for method in _SERVICE_SURFACE
            if not callable(getattr(service, method, None))
        ]
        if missing:
            raise ValidationError(
                f"{type(service).__name__} does not look like a serving "
                f"target: missing {missing}"
            )
        with self._lock:
            if name in self._namespaces:
                raise ValidationError(f"namespace {name!r} already registered")
            self._namespaces[name] = service

    def namespace(self, name: str):
        with self._lock:
            service = self._namespaces.get(name)
        if service is None:
            raise ValidationError(
                f"unknown namespace {name!r}; registered: "
                f"{sorted(self._namespaces)}"
            )
        return service

    def namespaces(self) -> List[str]:
        with self._lock:
            return sorted(self._namespaces)

    # ------------------------------------------------------------------ #
    # tenants
    # ------------------------------------------------------------------ #
    def create_tenant(
        self,
        name: str,
        namespace: str,
        config: Optional[TenantConfig] = None,
        *,
        vectors_used: int = 0,
    ) -> TenantGateway:
        """Provision a tenant on a namespace; returns its live gateway.

        ``vectors_used`` seeds the vector-quota counter for tenants whose
        data predates the registry (the gateway cannot derive per-tenant
        counts from a shared index).
        """
        name = self._check_name(name, "tenant")
        config = config or TenantConfig()
        service = self.namespace(namespace)
        with self._lock:
            if name in self._tenants:
                raise ValidationError(f"tenant {name!r} already exists")
        cache = None
        if self.budget is not None:
            cache = self.budget.create_partition(name, weight=config.cache_weight)
        gateway = TenantGateway(
            name,
            service,
            config,
            namespace=namespace,
            cache=cache,
            budget=self.budget,
            clock=self._clock,
            vectors_used=vectors_used,
        )
        if self._tracer is not None:
            gateway.tracer = self._tracer
        with self._lock:
            if name in self._tenants:  # lost a provisioning race
                if self.budget is not None:
                    self.budget.drop_partition(name)
                raise ValidationError(f"tenant {name!r} already exists")
            self._tenants[name] = gateway
        return gateway

    def drop_tenant(self, name: str) -> None:
        with self._lock:
            gateway = self._tenants.pop(name, None)
        if gateway is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        if self.budget is not None:
            self.budget.drop_partition(name)

    def gateway(self, name: str) -> TenantGateway:
        """The tenant's gateway; typed 404 ``unknown_tenant`` when absent."""
        with self._lock:
            gateway = self._tenants.get(name)
        if gateway is None:
            raise UnknownTenantError(
                f"unknown tenant {name!r}; provisioned: {sorted(self._tenants)}"
            )
        return gateway

    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._tenants

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    # ------------------------------------------------------------------ #
    # fair cross-tenant submission
    # ------------------------------------------------------------------ #
    def submit(self, tenant: str, queries, request=None, **overrides):
        """Queue a tenant batch on the shared fair scheduler."""
        return self.scheduler.submit(
            self.gateway(tenant), queries, request, **overrides
        )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        with self._lock:
            gateways = dict(self._tenants)
            namespaces = sorted(self._namespaces)
        payload = {
            "tenants": {name: gw.stats() for name, gw in sorted(gateways.items())},
            "namespaces": namespaces,
            "scheduler": self.scheduler.stats(),
        }
        if self.budget is not None:
            payload["cache_budget"] = self.budget.stats()
        if self._tracer is not None:
            payload["tracing"] = self._tracer.stats()
        return payload

    def __repr__(self) -> str:
        return (
            f"TenantRegistry({len(self)} tenant(s), "
            f"{len(self.namespaces())} namespace(s))"
        )

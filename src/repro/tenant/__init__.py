"""Multi-tenant serving: quotas, ACL injection, fairness, observability.

One machine, many tenants.  The layers below already isolate *data*
(collections, replica groups) and *load* (admission control); this
package isolates **tenants** — named principals with declarative policy:

* :class:`TenantConfig` — quotas (vector cap, query/write token
  buckets), a mandatory ACL predicate, and a cache weight, all pure data
  that round-trips through JSON;
* :class:`TenantGateway` — a service-shaped facade enforcing the policy
  in the request path: the ACL is AND-ed into every query (the predicate
  fingerprint in the cache key makes cross-tenant cache leakage
  impossible by construction), quota violations raise typed errors the
  wire layer maps to 429 ``quota_exceeded`` with a refill-derived
  ``Retry-After``;
* :class:`TokenBucket` — monotonic-clock rate limiting with an
  injectable clock (tests drive refill without sleeping);
* :class:`CacheBudget` — per-tenant result-cache partitions under one
  global byte budget with weighted eviction;
* :class:`FairScheduler` — deficit-round-robin batching over query rows
  that coalesces equal requests from different tenants into one kernel
  call, bitwise-identical to serving them serially;
* :class:`TenantRegistry` — the control plane tying namespaces, tenants,
  budget, and scheduler together; hosted by ``Router.add_tenant`` and by
  :class:`repro.net.SearchServer` via the ``X-Tenant`` header.

Example
-------
>>> from repro.tenant import TenantConfig, TenantRegistry
>>> from repro.filter import Eq
>>> registry = TenantRegistry(cache_budget_bytes=64 << 20)
>>> registry.add_namespace("catalog", service)
>>> registry.create_tenant(
...     "acme", "catalog",
...     TenantConfig(acl=Eq("owner", "acme"), qps=100, max_vectors=10_000),
... )
>>> registry.gateway("acme").search(vector, k=5)   # ACL injected, metered
"""

from .cache import CacheBudget
from .config import TenantConfig
from .gateway import TenantGateway
from .quota import TokenBucket
from .registry import TenantRegistry
from .scheduler import FairScheduler

__all__ = [
    "CacheBudget",
    "FairScheduler",
    "TenantConfig",
    "TenantGateway",
    "TenantRegistry",
    "TokenBucket",
]

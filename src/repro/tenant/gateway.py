"""The per-tenant serving facade: ACL injection, quotas, cache partition.

A :class:`TenantGateway` duck-types the :class:`~repro.service.SearchService`
surface (``search`` / ``search_batch`` / mutations / ``stats`` /
``service_config``), so everything that can host a service — the
:class:`~repro.service.Router`, the HTTP server — can host a tenant
without knowing it is one.  The delegate underneath is equally
duck-typed: a plain ``SearchService``, a collection-backed one, or a
:class:`~repro.replica.ReplicaGroup`.

Three policies are enforced on the way through:

* **ACL injection** — the tenant's configured predicate is AND-ed into
  every request before it reaches the delegate.  Because the predicate's
  canonical fingerprint is part of the result-cache key, two tenants
  with different ACLs can never share a cached answer even on a shared
  namespace — isolation by construction, not by audit.
* **Quotas** — a token bucket per resource (query rows, write ops) plus
  a hard vector-count cap.  Violations raise the typed
  :class:`~repro.utils.exceptions.QuotaExceededError` the wire layer
  maps to 429 ``quota_exceeded`` with a refill-derived ``Retry-After``.
* **Cache partition** — an optional private result cache charged against
  the registry's global :class:`~repro.tenant.cache.CacheBudget`.  The
  partition is only consulted when the delegate can vouch for freshness
  (it exposes ``_index_cache_tag``); gateways over replica groups skip
  it and lean on the per-replica service caches instead.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

import numpy as np

from ..filter.predicate import And, Predicate
from ..obs.trace import span
from ..service.cache import QueryCache
from ..service.request import BatchResult, QueryRequest, QueryResult
from ..utils.exceptions import QuotaExceededError, ValidationError
from .cache import CacheBudget
from .config import TenantConfig
from .quota import TokenBucket


class TenantGateway:
    """One tenant's view of a namespace, with policy enforced in the path."""

    def __init__(
        self,
        name: str,
        service,
        config: Optional[TenantConfig] = None,
        *,
        namespace: Optional[str] = None,
        cache: Optional[QueryCache] = None,
        budget: Optional[CacheBudget] = None,
        clock=time.monotonic,
        vectors_used: int = 0,
    ) -> None:
        self.name = str(name)
        self.service = service
        self.config = config or TenantConfig()
        self.namespace = namespace or getattr(service, "name", None)
        self.cache = cache
        self._budget = budget
        self.query_bucket = (
            None
            if self.config.qps is None
            else TokenBucket(self.config.qps, self.config.qps_burst, clock=clock)
        )
        self.write_bucket = (
            None
            if self.config.write_ops is None
            else TokenBucket(
                self.config.write_ops, self.config.write_burst, clock=clock
            )
        )
        self._lock = threading.Lock()
        self._vectors_used = int(vectors_used)
        self._queries = 0
        self._query_rows = 0
        self._cache_hits = 0
        self._write_calls = 0
        self._quota_denials = 0
        self._latency_sum = 0.0
        self._delegate_tag: Any = None
        # Shared Tracer, injected by the hosting SearchServer (if any).
        self.tracer = None

    # ------------------------------------------------------------------ #
    # delegate passthroughs (what hosts duck-type against)
    # ------------------------------------------------------------------ #
    @property
    def collection(self):
        return getattr(self.service, "collection", None)

    @property
    def capabilities(self):
        return getattr(self.service, "capabilities", None)

    @property
    def dim(self) -> Optional[int]:
        return getattr(self.service, "dim", None)

    @property
    def batch_size(self) -> int:
        # Falls back to the service default: the HTTP layer uses this as
        # its deadline-check chunk size, which must never be zero.
        return int(getattr(self.service, "batch_size", 0) or 256)

    # ------------------------------------------------------------------ #
    # ACL injection
    # ------------------------------------------------------------------ #
    def effective_request(
        self, request: Optional[QueryRequest] = None, **overrides
    ) -> QueryRequest:
        """The request as the delegate will see it, ACL already injected.

        The tenant's predicate is mandatory: ``None`` filters become the
        ACL, user predicates become ``And(acl, user)``.  Array filters
        (masks / allowlists) cannot be composed with a predicate without
        materialising them against a store the gateway may not own, so
        they are rejected for ACL-bearing tenants rather than silently
        widening the tenant's view.
        """
        resolve = getattr(self.service, "resolve_request", None)
        if callable(resolve):
            request = resolve(request, **overrides)
        else:
            request = request if request is not None else QueryRequest()
            if overrides:
                request = request.with_updates(**overrides)
        acl = self.config.acl
        if acl is None:
            return request
        user_filter = request.filter
        if user_filter is None:
            return request.with_updates(filter=acl)
        if isinstance(user_filter, Predicate):
            return request.with_updates(filter=And(acl, user_filter))
        raise ValidationError(
            f"tenant {self.name!r} has an ACL predicate; mask/allowlist "
            "filters cannot be combined with it — express the filter as a "
            "Predicate instead"
        )

    # ------------------------------------------------------------------ #
    # quota charging
    # ------------------------------------------------------------------ #
    def _charge(self, bucket: Optional[TokenBucket], n: float, resource: str) -> None:
        if bucket is None:
            return
        try:
            bucket.acquire_or_raise(n, resource=resource)
        except QuotaExceededError:
            with self._lock:
                self._quota_denials += 1
            raise

    def _charge_vectors(self, n: int) -> None:
        cap = self.config.max_vectors
        if cap is None:
            return
        with self._lock:
            if self._vectors_used + n > int(cap):
                self._quota_denials += 1
                used = self._vectors_used
                raise QuotaExceededError(
                    f"tenant {self.name!r} vector quota exceeded: "
                    f"{used} used + {n} requested > cap {int(cap)}",
                    resource="vectors",
                    retry_after_seconds=None,
                )

    @property
    def vectors_used(self) -> int:
        with self._lock:
            return self._vectors_used

    # ------------------------------------------------------------------ #
    # gateway-level cache partition
    # ------------------------------------------------------------------ #
    def _partition(self) -> Optional[QueryCache]:
        """The tenant's cache partition, cleared if the delegate mutated.

        Only delegates that expose ``_index_cache_tag`` (plain services)
        can vouch that cached entries are fresh; anything else (replica
        groups route reads across lagging followers) gets no gateway
        cache.
        """
        if self.cache is None:
            return None
        tag_fn = getattr(self.service, "_index_cache_tag", None)
        if not callable(tag_fn):
            return None
        tag = tag_fn()
        with self._lock:
            if tag != self._delegate_tag:
                self.cache.clear()
                self._delegate_tag = tag
        return self.cache

    def _cache_key(self, row: np.ndarray, request: QueryRequest) -> tuple:
        return QueryCache.key_for(
            np.asarray(row, dtype=np.float64).reshape(-1),
            request.cache_key() + (self._delegate_tag,),
        )

    def _reconcile_budget(self) -> None:
        if self._budget is not None:
            self._budget.reconcile()

    # ------------------------------------------------------------------ #
    # serving surface
    # ------------------------------------------------------------------ #
    def search(
        self, query: np.ndarray, request: Optional[QueryRequest] = None, **overrides
    ) -> QueryResult:
        with span("tenant.acl_quota", tenant=self.name) as policy_span:
            request = self.effective_request(request, **overrides)
            policy_span.set(acl=self.config.acl is not None)
            self._charge(self.query_bucket, 1, "qps")
        start = time.perf_counter()
        cache = self._partition()
        key = self._cache_key(query, request) if cache is not None else None
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                elapsed = time.perf_counter() - start
                self._observe_query(1, elapsed, hits=1)
                return QueryResult(
                    ids=hit[0],
                    distances=hit[1],
                    request=request,
                    latency_seconds=elapsed,
                    cached=True,
                )
        result = self.service.search(query, request)
        if cache is not None:
            cache.put(key, result.ids, result.distances)
            self._reconcile_budget()
        elapsed = time.perf_counter() - start
        self._observe_query(1, elapsed, hits=1 if result.cached else 0)
        return result

    def search_batch(
        self,
        queries: np.ndarray,
        request: Optional[QueryRequest] = None,
        *,
        mode: str = "auto",
        ground_truth: Optional[np.ndarray] = None,
        **overrides,
    ) -> BatchResult:
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = int(queries.shape[0])
        with span("tenant.acl_quota", tenant=self.name, n_queries=n) as policy_span:
            request = self.effective_request(request, **overrides)
            policy_span.set(acl=self.config.acl is not None)
            self._charge(self.query_bucket, max(n, 1), "qps")
        start = time.perf_counter()
        # Recall scoring needs the whole batch to flow through the
        # delegate, so ground-truth calls bypass the gateway partition.
        cache = self._partition() if ground_truth is None and n else None
        if cache is None:
            result = self.service.search_batch(
                queries, request, mode=mode, ground_truth=ground_truth
            )
            self._observe_query(n, time.perf_counter() - start, hits=result.cache_hits)
            return result
        keys = [self._cache_key(row, request) for row in queries]
        hits = [cache.get(key) for key in keys]
        missing = [row for row, hit in enumerate(hits) if hit is None]
        inner_hits = 0
        inner_mode = "cached"
        if missing:
            inner = self.service.search_batch(queries[missing], request, mode=mode)
            inner_hits = inner.cache_hits
            inner_mode = inner.mode
            for position, row in enumerate(missing):
                cache.put(keys[row], inner.ids[position], inner.distances[position])
            self._reconcile_budget()
            width = inner.ids.shape[1]
        else:
            width = hits[0][0].shape[-1]
        ids = np.empty((n, width), dtype=np.int64)
        distances = np.empty((n, width))
        fresh_row = 0
        for row, hit in enumerate(hits):
            if hit is None:
                ids[row] = inner.ids[fresh_row]
                distances[row] = inner.distances[fresh_row]
                fresh_row += 1
            else:
                ids[row], distances[row] = hit
        elapsed = time.perf_counter() - start
        gateway_hits = n - len(missing)
        self._observe_query(n, elapsed, hits=gateway_hits + inner_hits)
        return BatchResult(
            ids=ids,
            distances=distances,
            request=request,
            elapsed_seconds=elapsed,
            mode=inner_mode,
            cache_hits=gateway_hits + inner_hits,
        )

    # ------------------------------------------------------------------ #
    # mutations (vector quota + write-op bucket, then delegate)
    # ------------------------------------------------------------------ #
    def add(self, vectors, attributes=None) -> np.ndarray:
        n = int(np.atleast_2d(np.asarray(vectors)).shape[0])
        self._charge_vectors(n)
        self._charge(self.write_bucket, 1, "write_ops")
        ids = self.service.add(vectors, attributes=attributes)
        with self._lock:
            self._vectors_used += n
            self._write_calls += 1
        return ids

    def remove(self, ids) -> int:
        self._charge(self.write_bucket, 1, "write_ops")
        removed = int(self.service.remove(ids))
        with self._lock:
            self._vectors_used = max(0, self._vectors_used - removed)
            self._write_calls += 1
        return removed

    def extend_attributes(self, rows) -> None:
        self._charge(self.write_bucket, 1, "write_ops")
        self.service.extend_attributes(rows)
        with self._lock:
            self._write_calls += 1

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _observe_query(self, rows: int, elapsed: float, *, hits: int = 0) -> None:
        with self._lock:
            self._queries += 1
            self._query_rows += int(rows)
            self._cache_hits += int(hits)
            self._latency_sum += float(elapsed)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            snapshot = {
                "tenant": self.name,
                "namespace": self.namespace,
                "queries": self._queries,
                "query_rows": self._query_rows,
                "cache_hits": self._cache_hits,
                "write_calls": self._write_calls,
                "quota_denials": self._quota_denials,
                "latency_seconds_sum": self._latency_sum,
                "vectors_used": self._vectors_used,
                "max_vectors": self.config.max_vectors,
            }
        if self.query_bucket is not None:
            snapshot["qps_bucket"] = self.query_bucket.stats()
        if self.write_bucket is not None:
            snapshot["write_bucket"] = self.write_bucket.stats()
        if self.cache is not None:
            snapshot["cache"] = self.cache.stats()
        if self.tracer is not None:
            snapshot["tracing"] = self.tracer.stats()
        return snapshot

    def service_config(self) -> Dict[str, Any]:
        config = dict(self.service.service_config())
        config["tenant"] = {
            "name": self.name,
            "namespace": self.namespace,
            **self.config.as_dict(),
        }
        return config

    def __repr__(self) -> str:
        return (
            f"TenantGateway({self.name!r}, namespace={self.namespace!r}, "
            f"acl={'set' if self.config.acl is not None else 'none'})"
        )

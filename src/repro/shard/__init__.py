"""Sharded, mutable composite indexes behind the unified :class:`~repro.api.AnnIndex` protocol.

One logical index, N child shards (any registered backend, mixed
backends allowed):

* :class:`ShardedIndex` — parallel shard builds, scatter-gather queries
  with an exact global top-k merge, post-build ``add`` / ``remove`` /
  ``compact`` mutation, and persistence as a directory of shard
  artifacts plus a manifest;
* :class:`Partitioner` strategies — :class:`RoundRobinPartitioner`,
  :class:`ContiguousPartitioner`, :class:`KMeansRoutePartitioner` —
  assigning base vectors to shards and routing later additions.

Registered under ``sharded`` (plus the ``sharded-bruteforce`` /
``sharded-kmeans`` / ``sharded-ivf`` configurations), so the usual
surface applies end to end::

    index = make_index("sharded", n_shards=4, spec="kmeans",
                       shard_params={"n_bins": 16, "seed": 0}).build(base)
    service = SearchService(index)          # serves shards transparently
    index.add(new_vectors); index.remove([3, 7]); index.compact()
"""

from .partitioner import (
    ContiguousPartitioner,
    KMeansRoutePartitioner,
    Partitioner,
    RoundRobinPartitioner,
    available_partitioners,
    make_partitioner,
)
from .sharded import PARALLEL_MODES, ShardedIndex

__all__ = [
    "ContiguousPartitioner",
    "KMeansRoutePartitioner",
    "Partitioner",
    "RoundRobinPartitioner",
    "available_partitioners",
    "make_partitioner",
    "PARALLEL_MODES",
    "ShardedIndex",
]

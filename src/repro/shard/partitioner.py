"""Partitioning strategies assigning base vectors to shards.

A :class:`Partitioner` answers two questions for a
:class:`~repro.shard.ShardedIndex`:

* ``partition(base, n_shards)`` — which shard does each vector of the
  offline build belong to?
* ``route(vectors, n_shards, shard_sizes)`` — which shard should a vector
  added *after* the build land in when the deployment next compacts?

``round-robin`` and ``contiguous`` are data-independent (uniform load,
zero training cost); ``kmeans`` clusters the base so each shard holds a
spatially coherent region — queries then concentrate their true
neighbours in few shards, which is the locality that distributed designs
like SafarDB exploit.  All three persist inside the sharded index's
manifest via :meth:`Partitioner.state`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..baselines.kmeans import KMeans
from ..utils.distances import squared_euclidean
from ..utils.exceptions import ConfigurationError, ValidationError
from ..utils.rng import SeedLike
from ..utils.validation import as_float_matrix, check_positive_int

StateDicts = Tuple[Dict[str, Any], Dict[str, np.ndarray]]


class Partitioner:
    """Base class: assigns build vectors and routes later additions."""

    #: registry key written into the sharded index's manifest
    name: str = ""

    def partition(self, base: np.ndarray, n_shards: int) -> np.ndarray:
        """Shard label in ``[0, n_shards)`` for each row of ``base``."""
        raise NotImplementedError

    def route(
        self,
        vectors: np.ndarray,
        n_shards: int,
        shard_sizes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Shard label for vectors added after the build (compact routing)."""
        raise NotImplementedError

    # -- persistence (embedded in the sharded index's own state) -------- #
    def state(self) -> StateDicts:
        """JSON-able config and numpy arrays describing this partitioner."""
        return {"partitioner": self.name}, {}

    @classmethod
    def from_state(
        cls, config: Dict[str, Any], arrays: Dict[str, np.ndarray]
    ) -> "Partitioner":
        return cls()


class RoundRobinPartitioner(Partitioner):
    """Deal vectors to shards like cards: ``row % n_shards``.

    Perfectly balanced and training-free; routing continues the deal from
    a persistent cursor so repeated ``add`` calls stay balanced too.
    """

    name = "round-robin"

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def partition(self, base: np.ndarray, n_shards: int) -> np.ndarray:
        n = as_float_matrix(base, name="base").shape[0]
        labels = (np.arange(n, dtype=np.int64) + self._next) % n_shards
        self._next = int((self._next + n) % n_shards)
        return labels

    def route(self, vectors, n_shards, shard_sizes=None) -> np.ndarray:
        n = np.atleast_2d(np.asarray(vectors)).shape[0]
        labels = (np.arange(n, dtype=np.int64) + self._next) % n_shards
        self._next = int((self._next + n) % n_shards)
        return labels

    def state(self) -> StateDicts:
        return {"partitioner": self.name, "next": int(self._next)}, {}

    @classmethod
    def from_state(cls, config, arrays) -> "RoundRobinPartitioner":
        return cls(start=int(config.get("next", 0)))


class ContiguousPartitioner(Partitioner):
    """Split the base into ``n_shards`` contiguous row ranges.

    Preserves any locality already present in the ingest order (time
    ranges, pre-sorted keys).  Additions are routed to the currently
    smallest shard to keep the load even.
    """

    name = "contiguous"

    def partition(self, base: np.ndarray, n_shards: int) -> np.ndarray:
        n = as_float_matrix(base, name="base").shape[0]
        labels = np.empty(n, dtype=np.int64)
        bounds = np.linspace(0, n, n_shards + 1).astype(np.int64)
        for shard in range(n_shards):
            labels[bounds[shard] : bounds[shard + 1]] = shard
        return labels

    def route(self, vectors, n_shards, shard_sizes=None) -> np.ndarray:
        n = np.atleast_2d(np.asarray(vectors)).shape[0]
        sizes = (
            np.zeros(n_shards, dtype=np.int64)
            if shard_sizes is None
            else np.asarray(shard_sizes, dtype=np.int64).copy()
        )
        labels = np.empty(n, dtype=np.int64)
        for row in range(n):
            shard = int(np.argmin(sizes))
            labels[row] = shard
            sizes[shard] += 1
        return labels


class KMeansRoutePartitioner(Partitioner):
    """Cluster the base with K-means; route every vector to its nearest centroid.

    Shards become spatially coherent regions, so a query's true
    neighbours concentrate in few shards and later additions land next to
    the points they are close to.
    """

    name = "kmeans"

    def __init__(
        self,
        *,
        max_iterations: int = 25,
        seed: SeedLike = None,
    ) -> None:
        self.max_iterations = check_positive_int(max_iterations, "max_iterations")
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None

    def partition(self, base: np.ndarray, n_shards: int) -> np.ndarray:
        base = as_float_matrix(base, name="base")
        clusterer = KMeans(
            min(n_shards, base.shape[0]),
            max_iterations=self.max_iterations,
            seed=self.seed,
        ).fit(base)
        self.centroids = clusterer.centroids
        return np.asarray(clusterer.labels, dtype=np.int64)

    def route(self, vectors, n_shards, shard_sizes=None) -> np.ndarray:
        if self.centroids is None:
            raise ValidationError(
                "KMeansRoutePartitioner cannot route before partition() learned centroids"
            )
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        distances = squared_euclidean(vectors, self.centroids)
        return np.argmin(distances, axis=1).astype(np.int64)

    def state(self) -> StateDicts:
        config = {
            "partitioner": self.name,
            "max_iterations": int(self.max_iterations),
        }
        arrays = {}
        if self.centroids is not None:
            arrays["partitioner.centroids"] = self.centroids
        return config, arrays

    @classmethod
    def from_state(cls, config, arrays) -> "KMeansRoutePartitioner":
        partitioner = cls(max_iterations=int(config.get("max_iterations", 25)))
        centroids = arrays.get("partitioner.centroids")
        if centroids is not None:
            partitioner.centroids = np.asarray(centroids, dtype=np.float64)
        return partitioner


_PARTITIONERS: Dict[str, type] = {
    RoundRobinPartitioner.name: RoundRobinPartitioner,
    ContiguousPartitioner.name: ContiguousPartitioner,
    KMeansRoutePartitioner.name: KMeansRoutePartitioner,
}


def available_partitioners() -> Tuple[str, ...]:
    return tuple(sorted(_PARTITIONERS))


def make_partitioner(spec, **params) -> Partitioner:
    """Resolve a partitioner name (or pass an instance through)."""
    if isinstance(spec, Partitioner):
        if params:
            raise ConfigurationError(
                "partitioner params are only valid with a partitioner name"
            )
        return spec
    try:
        cls = _PARTITIONERS[str(spec)]
    except KeyError:
        known = ", ".join(available_partitioners())
        raise ConfigurationError(
            f"unknown partitioner {spec!r}; available partitioners: {known}"
        ) from None
    return cls(**params)


def partitioner_from_state(
    config: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> Partitioner:
    """Rebuild a partitioner from the state embedded in a saved sharded index."""
    name = str(config.get("partitioner", RoundRobinPartitioner.name))
    try:
        cls = _PARTITIONERS[name]
    except KeyError:
        known = ", ".join(available_partitioners())
        raise ConfigurationError(
            f"saved index uses unknown partitioner {name!r}; known: {known}"
        ) from None
    return cls.from_state(config, arrays)

"""A sharded, mutable composite index behind the :class:`~repro.api.AnnIndex` protocol.

:class:`ShardedIndex` spreads one logical index over N child indexes
(any registered backend, mixed backends allowed):

* the offline phase partitions the base with a
  :class:`~repro.shard.partitioner.Partitioner` and builds every shard in
  parallel on a thread or process pool;
* ``query`` / ``batch_query`` scatter to all shards and gather with an
  exact global top-k merge over the shard-local results (re-ranked
  distances, local ids remapped to global ids), so a sharded exact
  backend returns exactly what the unsharded backend would — identically
  on duplicate-free data; among *exactly* equidistant neighbours the
  merge breaks ties deterministically by smallest id, whereas a single
  brute-force scan's tie order is an argpartition artefact;
* the index is *mutable*: ``add`` appends vectors to an exactly-scanned
  pending buffer, ``remove`` tombstones ids, and ``compact`` folds both
  back into freshly rebuilt shards once they pass a threshold — the
  :class:`~repro.api.MutableIndex` capability.

Persistence writes a directory of shard artifacts (one PR 1 saved index
per shard) plus a manifest, so a sharded deployment survives restarts
like any other registered index, including through ``Router.save``.
"""

from __future__ import annotations

import contextvars
import inspect
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..api.protocol import IndexCapabilities, RegisteredIndex
from ..obs.trace import current_trace, span
from ..api.registry import get_spec, register_index
from ..utils.distances import pairwise_topk
from ..utils.exceptions import ConfigurationError, NotFittedError, ValidationError
from ..utils.validation import as_float_matrix, as_query_matrix, check_positive_int
from .partitioner import Partitioner, make_partitioner, partitioner_from_state

#: parallel build/scatter strategies
PARALLEL_MODES = ("thread", "process", "serial")

_SHARDED_CAPABILITIES = IndexCapabilities(
    metrics=("euclidean", "sqeuclidean", "cosine"),
    probe_parameter="probes",
    supports_candidate_sets=False,
    trainable=False,
    exact=False,
    shardable=False,
    mutable=True,
    filterable=True,
)


def _instantiate_child(name: str, params: Mapping[str, Any], metric: str):
    """Construct one shard backend, threading the composite's metric through.

    The metric is passed as a constructor keyword when the backend's
    factory accepts one (brute force), or set as an attribute when the
    class re-ranks through a ``metric`` attribute (partition indexes).
    Backends that only support their own metric are left untouched —
    :meth:`ShardedIndex._validate_specs` already rejected incompatible
    combinations.
    """
    spec = get_spec(name)
    params = dict(params)
    if "metric" not in params and spec.capabilities.supports_metric(metric):
        try:
            accepts_metric = "metric" in inspect.signature(spec.factory).parameters
        except (TypeError, ValueError):
            accepts_metric = False
        if accepts_metric:
            params["metric"] = metric
    child = spec.factory(**{**spec.defaults, **params})
    if (
        "metric" not in params
        and hasattr(child, "metric")
        and spec.capabilities.supports_metric(metric)
    ):
        child.metric = metric
    return child


def _build_shard(args):
    """Build one shard (top-level so a process pool can pickle the task)."""
    name, params, metric, subset = args
    if subset.shape[0] == 0:
        return None
    return _instantiate_child(name, params, metric).build(subset)


@register_index(
    "sharded",
    capabilities=_SHARDED_CAPABILITIES,
    description="Composite index: N child shards with scatter-gather top-k merge",
    aliases=("shard",),
)
class ShardedIndex(RegisteredIndex):
    """One logical index served from ``n_shards`` child indexes.

    Parameters
    ----------
    n_shards:
        Number of child indexes.
    spec:
        Registry name of the backend to build in every shard, or a
        sequence of ``n_shards`` names for mixed-backend deployments.
    shard_params:
        Construction parameters for the shard factories: one mapping
        applied to every shard, or a sequence of ``n_shards`` mappings.
    partitioner:
        ``"round-robin"`` / ``"contiguous"`` / ``"kmeans"`` (or a
        :class:`~repro.shard.Partitioner` instance) assigning base
        vectors to shards and routing later additions.
    metric:
        Distance metric used by the pending-buffer scan and threaded
        through to every shard that supports it.
    parallel:
        ``"thread"`` (default; NumPy kernels release the GIL so shard
        builds and the query fan-out genuinely overlap), ``"process"``
        (fully independent build workers; shards must pickle), or
        ``"serial"``.
    max_workers:
        Pool width for parallel build/scatter (default: one per shard,
        capped at 8).
    compact_threshold:
        Auto-compact when ``(pending + tombstoned) / live`` exceeds this
        fraction after a mutation; ``None`` disables auto-compaction
        (``compact()`` stays available).

    Notes
    -----
    Concurrency model: single writer, concurrent readers.  Queries may
    run from many threads (the serving layer does), and a mutation
    racing a query yields either the pre- or the post-mutation answer —
    never a torn one: the shard list and its local-to-global id tables
    swap as one atomic snapshot, vector storage grows before the pending
    buffer references it, and tombstones only ever flip ids dead.
    Concurrent *mutations* must be serialised by the caller.
    """

    def __init__(
        self,
        n_shards: int = 4,
        *,
        spec="bruteforce",
        shard_params=None,
        partitioner="round-robin",
        metric: str = "euclidean",
        parallel: str = "thread",
        max_workers: Optional[int] = None,
        compact_threshold: Optional[float] = 0.25,
    ) -> None:
        self.n_shards = check_positive_int(n_shards, "n_shards")
        if parallel not in PARALLEL_MODES:
            raise ConfigurationError(
                f"unknown parallel mode {parallel!r}; expected one of {PARALLEL_MODES}"
            )
        self.parallel = parallel
        self.metric = str(metric)
        self.max_workers = (
            int(max_workers) if max_workers else min(self.n_shards, 8)
        )
        if compact_threshold is not None and float(compact_threshold) <= 0:
            raise ConfigurationError("compact_threshold must be positive (or None)")
        self.compact_threshold = (
            None if compact_threshold is None else float(compact_threshold)
        )
        self.partitioner: Partitioner = make_partitioner(partitioner)
        self._specs = self._normalize_specs(spec, shard_params)
        self._validate_specs()

        # Row r <-> global id r, forever.  The published views below are
        # logical prefixes of geometrically grown backing stores, so
        # streaming add() calls are amortised O(rows added), not O(n).
        self._data: Optional[np.ndarray] = None
        self._alive: Optional[np.ndarray] = None  # tombstones: alive mask per row
        self._assignments: Optional[np.ndarray] = None  # shard per row, -1 = pending
        self._data_store: Optional[np.ndarray] = None
        self._alive_store: Optional[np.ndarray] = None
        self._assign_store: Optional[np.ndarray] = None
        # (shards, shard_ids, pending) swapped as ONE tuple so concurrent
        # readers never see a new shard paired with an old local->global
        # id table, nor a compaction's pending buffer counted twice
        self._serve_state: Optional[
            Tuple[List[Any], List[np.ndarray], np.ndarray]
        ] = None
        # tombstoned ids still inside each shard's structure (per-shard
        # over-fetch bound; invariant: _assignments[id] >= 0 iff id is
        # inside a shard structure, so these recompute exactly on load)
        self._dead_per_shard = np.zeros(self.n_shards, dtype=np.int64)
        self.version = 0  # bumped on every add/remove/compact (cache keys)
        self.build_seconds: float = 0.0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # configuration plumbing
    # ------------------------------------------------------------------ #
    def _normalize_specs(self, spec, shard_params) -> List[Tuple[str, Dict[str, Any]]]:
        if isinstance(spec, str):
            names = [spec] * self.n_shards
        else:
            names = [str(name) for name in spec]
            if len(names) != self.n_shards:
                raise ConfigurationError(
                    f"spec lists one backend per shard: got {len(names)} "
                    f"names for {self.n_shards} shards"
                )
        if shard_params is None:
            params: List[Dict[str, Any]] = [{} for _ in names]
        elif isinstance(shard_params, Mapping):
            params = [dict(shard_params) for _ in names]
        else:
            params = [dict(p) for p in shard_params]
            if len(params) != self.n_shards:
                raise ConfigurationError(
                    f"shard_params lists one mapping per shard: got {len(params)} "
                    f"for {self.n_shards} shards"
                )
        return list(zip(names, params))

    def _validate_specs(self) -> None:
        for name, params in self._specs:
            capabilities = get_spec(name).capabilities
            child_metric = params.get("metric", self.metric)
            if not capabilities.supports_metric(child_metric):
                raise ConfigurationError(
                    f"shard backend {name!r} does not support metric "
                    f"{child_metric!r} (supported: {capabilities.metrics})"
                )

    @property
    def shard_specs(self) -> List[Tuple[str, Dict[str, Any]]]:
        """(registry name, params) per shard, as configured."""
        return [(name, dict(params)) for name, params in self._specs]

    # ------------------------------------------------------------------ #
    # offline phase
    # ------------------------------------------------------------------ #
    def build(self, base: np.ndarray) -> "ShardedIndex":
        """Partition ``base`` and build every shard (in parallel)."""
        start = time.perf_counter()
        data = as_float_matrix(base, name="base")
        labels = np.asarray(
            self.partitioner.partition(data, self.n_shards), dtype=np.int64
        )
        if labels.shape[0] != data.shape[0]:
            raise ValidationError("partitioner must label every base vector")
        self._adopt_stores(data, np.ones(data.shape[0], dtype=bool), labels)
        self._dead_per_shard = np.zeros(self.n_shards, dtype=np.int64)
        self._rebuild_shards(np.arange(data.shape[0], dtype=np.int64), labels)
        self.build_seconds = time.perf_counter() - start
        return self

    def _adopt_stores(
        self, data: np.ndarray, alive: np.ndarray, assignments: np.ndarray
    ) -> None:
        """Take full arrays as backing stores (capacity == logical length)."""
        self._data_store = self._data = data
        self._alive_store = self._alive = alive
        self._assign_store = self._assignments = assignments

    def _ensure_capacity(self, extra: int) -> None:
        """Grow the backing stores geometrically to hold ``extra`` more rows."""
        n = self._data.shape[0]
        needed = n + extra
        if needed <= self._data_store.shape[0]:
            return
        capacity = max(needed, 2 * self._data_store.shape[0])
        data = np.empty((capacity, self._data.shape[1]), dtype=np.float64)
        data[:n] = self._data
        alive = np.empty(capacity, dtype=bool)
        alive[:n] = self._alive
        assignments = np.empty(capacity, dtype=np.int64)
        assignments[:n] = self._assignments
        self._data_store, self._alive_store, self._assign_store = (
            data, alive, assignments,
        )

    def _rebuild_shards(self, ids: np.ndarray, labels: np.ndarray) -> None:
        """Build all shards over ``data[ids]`` grouped by ``labels``.

        Publishing the new shards also clears the pending buffer: both
        callers (``build`` and ``compact``) have just folded every
        pending vector into the shard structures.
        """
        shard_ids = [
            ids[labels == shard] for shard in range(self.n_shards)
        ]
        tasks = [
            (name, params, self.metric, self._data[members])
            for (name, params), members in zip(self._specs, shard_ids)
        ]
        if self.parallel == "serial" or self.n_shards == 1:
            shards = [_build_shard(task) for task in tasks]
        elif self.parallel == "process":
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                shards = list(pool.map(_build_shard, tasks))
        else:
            shards = list(self._executor().map(_build_shard, tasks))
        self._serve_state = (shards, shard_ids, np.empty(0, dtype=np.int64))

    @property
    def _shards(self) -> Optional[List[Any]]:
        return self._serve_state[0] if self._serve_state is not None else None

    @property
    def _shard_ids(self) -> List[np.ndarray]:
        return self._serve_state[1] if self._serve_state is not None else []

    @property
    def _pending(self) -> np.ndarray:
        if self._serve_state is None:
            return np.empty(0, dtype=np.int64)
        return self._serve_state[2]

    # ------------------------------------------------------------------ #
    # protocol properties
    # ------------------------------------------------------------------ #
    @property
    def is_built(self) -> bool:
        return self._shards is not None

    def _require_built(self) -> None:
        if self._shards is None:
            raise NotFittedError("ShardedIndex has not been built yet")

    @property
    def dim(self) -> int:
        self._require_built()
        return int(self._data.shape[1])

    @property
    def n_points(self) -> int:
        """Number of *live* vectors (tombstoned ids excluded)."""
        self._require_built()
        return int(np.count_nonzero(self._alive))

    @property
    def n_pending(self) -> int:
        """Vectors added since the last build/compact (served exactly)."""
        return int(self._live_pending().shape[0])

    @property
    def n_tombstones(self) -> int:
        """Removed ids still shadowing the shard structures or pending buffer.

        Compaction folds these away (retired ids keep their rows in the
        vector store so global ids stay stable, but they stop costing
        anything at query time).
        """
        self._require_built()
        dead_pending = (
            int(np.count_nonzero(~self._alive[self._pending]))
            if self._pending.size
            else 0
        )
        return int(self._dead_per_shard.sum()) + dead_pending

    @property
    def total_rows(self) -> int:
        """Rows ever assigned (live + tombstoned): the next add starts here.

        The storage layer journals this alongside each ``add`` so WAL
        replay can verify the index assigns the exact ids it acknowledged
        before the crash.
        """
        self._require_built()
        return int(self._data.shape[0])

    def contains(self, ids) -> np.ndarray:
        """Boolean per id: assigned to this index and not tombstoned.

        Out-of-range ids are simply ``False`` (not an error), so callers
        — the storage layer validating a ``remove`` before journaling it
        — can vet arbitrary id lists in one vectorised call.
        """
        self._require_built()
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        valid = (ids >= 0) & (ids < self._alive.shape[0])
        result = np.zeros(ids.shape[0], dtype=bool)
        result[valid] = self._alive[ids[valid]]
        return result

    @property
    def mutation_pressure(self) -> float:
        """(pending + tombstoned) / live — the compaction-trigger gauge."""
        return (self.n_pending + self.n_tombstones) / max(self.n_points, 1)

    @property
    def n_bins(self) -> int:
        """Smallest child bin count: a probe value valid on every shard."""
        bins = [
            int(child.n_bins)
            for child in self._shards or []
            if child is not None and hasattr(child, "n_bins")
        ]
        if not bins:
            raise AttributeError("no shard exposes n_bins")
        return min(bins)

    def shard_sizes(self) -> np.ndarray:
        """Live vectors currently held inside each shard structure."""
        self._require_built()
        return np.array(
            [int(np.count_nonzero(self._alive[ids])) for ids in self._shard_ids],
            dtype=np.int64,
        )

    # ------------------------------------------------------------------ #
    # scatter-gather querying
    # ------------------------------------------------------------------ #
    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="shard"
                )
            return self._pool

    def close(self) -> None:
        """Shut down the scatter/build thread pool (recreated on demand)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_pool_lock"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pool_lock = threading.Lock()

    def _child_kwargs(self, child, probes: Optional[int]) -> Dict[str, int]:
        """Translate the composite ``probes`` knob for one shard backend.

        Shards without a probe parameter (exact scans) are skipped
        silently: the knob is meaningful for the composite as long as any
        shard honours it, so this is not the dropped-knob situation
        :meth:`IndexCapabilities.query_kwargs` warns about.
        """
        if probes is None:
            return {}
        capabilities = getattr(type(child), "capabilities", None)
        if capabilities is None or capabilities.probe_parameter is None:
            return {}
        return capabilities.query_kwargs(probes)

    def _scatter(
        self,
        queries: np.ndarray,
        k: int,
        probes: Optional[int],
        shards: List[Any],
        shard_ids: List[np.ndarray],
        mask: Optional[np.ndarray] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Run ``batch_query`` on every non-empty shard, remapped to global ids.

        ``shards`` / ``shard_ids`` come from the caller's atomic
        serve-state snapshot, so every worker maps local ids through the
        table matching the shard it queried.  Each shard over-fetches by
        the number of tombstones still inside *its own* structure: even
        if every dead id outranked the live ones, the shard still
        surfaces ``k`` live candidates.

        With a global boolean ``mask``, each shard receives its own
        shard-local slice (``mask[members]``) pushed down as the child's
        ``filter=`` — disallowed ids are dropped inside the shard, before
        the global merge, and shards with no surviving member are never
        queried at all.
        """
        dead_per_shard = self._dead_per_shard

        def run(shard: int) -> Optional[Tuple[np.ndarray, np.ndarray]]:
            child = shards[shard]
            members = shard_ids[shard]
            if child is None or members.shape[0] == 0:
                return None
            local_mask = None
            if mask is not None:
                local_mask = mask[members]
                if not local_mask.any():
                    return None
                if local_mask.all():
                    # Every member survives: the unfiltered fast path
                    # returns identical results without planner overhead.
                    local_mask = None
            local_k = min(k + int(dead_per_shard[shard]), members.shape[0])
            kwargs = self._child_kwargs(child, probes)
            with span("shard.scan", shard=shard, rows=int(members.shape[0])):
                if local_mask is None:
                    local_ids, distances = child.batch_query(queries, local_k, **kwargs)
                else:
                    capabilities = getattr(type(child), "capabilities", None)
                    if capabilities is not None and capabilities.filterable:
                        local_ids, distances = child.batch_query(
                            queries, local_k, filter=local_mask, **kwargs
                        )
                    else:
                        # Unregistered/legacy shard backend: apply the generic
                        # planner on its behalf so the merge stays exact.
                        from ..filter.planner import DEFAULT_PLANNER

                        local_ids, distances = DEFAULT_PLANNER.filtered_search(
                            child, queries, local_k, local_mask, query_kwargs=kwargs
                        )
            valid = local_ids >= 0
            global_ids = np.where(
                valid, members[np.clip(local_ids, 0, members.shape[0] - 1)], -1
            )
            return global_ids, distances

        shard_range = range(self.n_shards)
        if self.parallel == "thread" and self.n_shards > 1:
            if current_trace() is not None:
                # One context copy per shard task: a Context cannot be
                # entered concurrently, and the copies carry the active
                # trace so per-shard scan spans join the request's tree.
                contexts = [contextvars.copy_context() for _ in shard_range]
                results = list(
                    self._executor().map(
                        lambda context, shard: context.run(run, shard),
                        contexts,
                        shard_range,
                    )
                )
            else:
                results = list(self._executor().map(run, shard_range))
        else:
            results = [run(shard) for shard in shard_range]
        return [result for result in results if result is not None]

    def _pending_topk(
        self,
        queries: np.ndarray,
        k: int,
        pending: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Exact scan of the (snapshot's) pending buffer, tombstones dropped.

        A filter mask restricts the scan the same way it restricts the
        shards: pending vectors outside the mask (including vectors added
        after the attribute store was written) are skipped.
        """
        if pending.shape[0]:
            keep = self._alive[pending]
            if mask is not None:
                keep = keep & mask[pending]
            pending = pending[keep]
        if pending.shape[0] == 0:
            return None
        local_ids, distances = pairwise_topk(
            queries, self._data[pending], min(k, pending.shape[0]), metric=self.metric
        )
        return pending[local_ids], distances

    def _live_pending(self) -> np.ndarray:
        pending = self._pending
        if pending.shape[0] == 0:
            return pending
        return pending[self._alive[pending]]

    def _merge_topk(
        self,
        parts: List[Tuple[np.ndarray, np.ndarray]],
        n_queries: int,
        k: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact global top-k over per-shard results.

        Exactly equidistant candidates are ordered by smallest id — a
        deterministic tie-break a monolithic scan does not promise (its
        tie order falls out of ``argpartition``), so result *sets* always
        match an unsharded index but tie *ordering* can differ on data
        containing duplicate vectors.
        """
        if not parts:
            return (
                np.full((n_queries, k), -1, dtype=np.int64),
                np.full((n_queries, k), np.inf),
            )
        ids = np.hstack([part[0] for part in parts]).astype(np.int64, copy=False)
        distances = np.hstack([np.asarray(part[1], dtype=np.float64) for part in parts])
        # Tombstoned or padded entries never win the merge.
        invalid = (ids < 0) | ~self._alive[np.clip(ids, 0, self._alive.shape[0] - 1)]
        if invalid.any():
            ids = np.where(invalid, -1, ids)
            distances = np.where(invalid, np.inf, distances)
        if ids.shape[1] < k:
            pad = k - ids.shape[1]
            ids = np.pad(ids, ((0, 0), (0, pad)), constant_values=-1)
            distances = np.pad(distances, ((0, 0), (0, pad)), constant_values=np.inf)
        # Stable two-pass sort: order by id first, then by distance, which
        # yields ascending distance with deterministic id tie-breaks.
        by_id = np.argsort(ids, axis=1, kind="stable")
        ids = np.take_along_axis(ids, by_id, axis=1)
        distances = np.take_along_axis(distances, by_id, axis=1)
        by_distance = np.argsort(distances, axis=1, kind="stable")[:, :k]
        return (
            np.take_along_axis(ids, by_distance, axis=1),
            np.take_along_axis(distances, by_distance, axis=1),
        )

    def batch_query(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        probes: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Scatter ``queries`` to every shard and gather an exact top-k merge.

        ``probes`` is the composite accuracy/cost knob: it is translated
        per shard through each child's own
        :class:`~repro.api.IndexCapabilities` (``n_probes``, ``ef``, or
        nothing for exact shards), so mixed-backend deployments are driven
        by one request shape.

        ``filter`` (predicate / boolean mask / id allowlist) is resolved
        to one global mask and pushed down as per-shard slices *before*
        the merge; the pending buffer honours it too, and tombstones stay
        excluded as always.  Ids added after the attribute store was
        written match no predicate until :meth:`repro.filter.AttributeStore.extend`
        catches the store up.
        """
        self._require_built()
        queries = as_query_matrix(np.atleast_2d(queries), self.dim)
        k = check_positive_int(k, "k")
        # One atomic snapshot: a concurrent compact() publishes its new
        # shards, id tables, and emptied pending buffer as a single
        # tuple, so this query sees each vector exactly once.
        shards, shard_ids, pending_ids = self._serve_state
        mask = None
        if filter is not None:
            from ..filter.planner import filter_row_count, resolve_filter

            mask = resolve_filter(filter, self, filter_row_count(self))
        parts = self._scatter(queries, k, probes, shards, shard_ids, mask)
        with span("shard.merge", parts=len(parts)):
            pending = self._pending_topk(queries, k, pending_ids, mask)
            if pending is not None:
                parts.append(pending)
            return self._merge_topk(parts, queries.shape[0], k)

    def query(
        self,
        query: np.ndarray,
        k: int = 10,
        *,
        probes: Optional[int] = None,
        filter=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        indices, distances = self.batch_query(
            np.atleast_2d(query), k, probes=probes, filter=filter
        )
        return indices[0], distances[0]

    def candidate_sets(self, queries: np.ndarray, n_probes: int = 1) -> List[np.ndarray]:
        """Union of per-shard candidate sets, remapped to live global ids.

        Available when every shard backend supports ``candidate_sets``
        (partition shards); used by the sweep harness for sharded curves.
        """
        self._require_built()
        queries = as_query_matrix(np.atleast_2d(queries), self.dim)
        shards, shard_ids, pending = self._serve_state
        if pending.shape[0]:
            pending = pending[self._alive[pending]]
        per_shard: List[List[np.ndarray]] = []
        for child, members in zip(shards, shard_ids):
            if child is None or members.shape[0] == 0:
                continue
            if not hasattr(child, "candidate_sets"):
                raise ValidationError(
                    f"shard backend {type(child).__name__} does not expose "
                    "candidate_sets; sharded candidate curves need partition shards"
                )
            per_shard.append(
                [members[local] for local in child.candidate_sets(queries, n_probes)]
            )
        merged: List[np.ndarray] = []
        for row in range(queries.shape[0]):
            parts = [shard_rows[row] for shard_rows in per_shard]
            if pending.shape[0]:
                parts.append(pending)
            candidates = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
            merged.append(candidates[self._alive[candidates]])
        return merged

    # ------------------------------------------------------------------ #
    # mutation: add / remove / compact
    # ------------------------------------------------------------------ #
    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Insert vectors; returns their newly assigned global ids.

        Additions are served immediately from an exactly-scanned pending
        buffer and folded into the shard structures at the next
        :meth:`compact` (automatic once the pending+tombstone fraction
        passes ``compact_threshold``).
        """
        self._require_built()
        vectors = as_float_matrix(vectors, name="vectors")
        if vectors.shape[1] != self.dim:
            raise ValidationError(
                f"added vectors have dim {vectors.shape[1]}, index has {self.dim}"
            )
        start = self._data.shape[0]
        count = vectors.shape[0]
        new_ids = np.arange(start, start + count, dtype=np.int64)
        # Write the new rows into the (grown) backing stores first, then
        # publish the longer views and finally the extended pending
        # buffer — a concurrent reader sees either the old or the new
        # state, never ids pointing past the storage it can reach.
        self._ensure_capacity(count)
        self._data_store[start : start + count] = vectors
        self._alive_store[start : start + count] = True
        self._assign_store[start : start + count] = -1
        self._data = self._data_store[: start + count]
        self._alive = self._alive_store[: start + count]
        self._assignments = self._assign_store[: start + count]
        shards, shard_ids, pending = self._serve_state
        self._serve_state = (shards, shard_ids, np.concatenate([pending, new_ids]))
        self.version += 1
        self._maybe_compact()
        return new_ids

    def remove(self, ids) -> int:
        """Tombstone the given global ids; queries stop returning them at once."""
        self._require_built()
        ids = np.unique(np.asarray(ids, dtype=np.int64).reshape(-1))
        if ids.size == 0:
            return 0
        if ids.min() < 0 or ids.max() >= self._alive.shape[0]:
            raise ValidationError(
                f"ids must be in [0, {self._alive.shape[0]}); got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        dead = ids[~self._alive[ids]]
        if dead.size:
            raise ValidationError(
                f"ids already removed: {dead[:8].tolist()}"
            )
        self._alive[ids] = False
        sharded = self._assignments[ids]
        sharded = sharded[sharded >= 0]
        if sharded.size:
            self._dead_per_shard += np.bincount(sharded, minlength=self.n_shards)
        self.version += 1
        self._maybe_compact()
        return int(ids.size)

    def _maybe_compact(self) -> None:
        if self.compact_threshold is None:
            return
        live = max(self.n_points, 1)
        churn = self.n_pending + self.n_tombstones
        if churn / live > self.compact_threshold:
            self.compact()

    def compact(self) -> "ShardedIndex":
        """Rebuild every shard over the live vectors, clearing the pending buffer.

        Pending vectors are routed to shards by the partitioner; global
        ids are stable across compaction, so cached result ids and saved
        ground truths stay meaningful.
        """
        self._require_built()
        pending = self._live_pending()
        if pending.shape[0]:
            self._assignments[pending] = self.partitioner.route(
                self._data[pending], self.n_shards, self.shard_sizes()
            )
        # Retire tombstoned rows: assignment >= 0 must keep meaning "this
        # id sits inside a shard structure", or a save/load after the
        # compaction would resurrect the tombstones it just folded away.
        self._assignments[~self._alive] = -1
        live = np.flatnonzero(self._alive)
        self._rebuild_shards(live, self._assignments[live])  # clears pending too
        self._dead_per_shard = np.zeros(self.n_shards, dtype=np.int64)
        self.version += 1
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Composite counters plus every shard's own ``stats()``."""
        stats = super().stats()
        if not self.is_built:
            return stats
        sizes = self.shard_sizes()
        stats.update(
            {
                "partitioner": self.partitioner.name,
                "parallel": self.parallel,
                "pending": self.n_pending,
                "tombstones": self.n_tombstones,
                "mutation_pressure": self.mutation_pressure,
                "shard_sizes": sizes.tolist(),
                "shard_balance": (
                    float(sizes.min() / sizes.max()) if sizes.max() else 0.0
                ),
                "shards": [
                    child.stats()
                    if child is not None
                    else {"class": None, "is_built": False, "n_points": 0}
                    for child in self._shards
                ],
            }
        )
        return stats

    def __repr__(self) -> str:
        backends = sorted({name for name, _ in self._specs})
        return (
            f"ShardedIndex(n_shards={self.n_shards}, spec={'/'.join(backends)}, "
            f"partitioner={self.partitioner.name!r}, built={self.is_built})"
        )

    # ------------------------------------------------------------------ #
    # persistence: directory of shard artifacts + manifest
    # ------------------------------------------------------------------ #
    def _state(self):
        routing_config, routing_arrays = self.partitioner.state()
        config = {
            "n_shards": int(self.n_shards),
            "specs": [[name, params] for name, params in self._specs],
            "metric": self.metric,
            "parallel": self.parallel,
            "max_workers": int(self.max_workers),
            "compact_threshold": self.compact_threshold,
            "routing": routing_config,
            "version": int(self.version),
            "build_seconds": float(self.build_seconds),
            "built_shards": [
                shard
                for shard, child in enumerate(self._shards)
                if child is not None
            ],
        }
        arrays = {
            "data": self._data,
            "alive": self._alive.astype(np.uint8),
            "assignments": self._assignments,
            "pending": self._pending,
            **routing_arrays,
        }
        for shard, members in enumerate(self._shard_ids):
            arrays[f"shard_ids.{shard}"] = members
        children = {
            f"shard-{shard}": child
            for shard, child in enumerate(self._shards)
            if child is not None
        }
        return config, arrays, children

    @classmethod
    def _from_state(cls, config, arrays, load_child):
        specs = [(str(name), dict(params)) for name, params in config["specs"]]
        index = cls(
            int(config["n_shards"]),
            spec=[name for name, _ in specs],
            shard_params=[params for _, params in specs],
            partitioner=partitioner_from_state(dict(config.get("routing", {})), arrays),
            metric=str(config.get("metric", "euclidean")),
            parallel=str(config.get("parallel", "thread")),
            max_workers=int(config.get("max_workers", 0)) or None,
            compact_threshold=config.get("compact_threshold"),
        )
        index._adopt_stores(
            np.asarray(arrays["data"], dtype=np.float64),
            np.asarray(arrays["alive"], dtype=bool),
            np.asarray(arrays["assignments"], dtype=np.int64),
        )
        built = set(int(shard) for shard in config.get("built_shards", []))
        index._serve_state = (
            [
                load_child(f"shard-{shard}") if shard in built else None
                for shard in range(index.n_shards)
            ],
            [
                np.asarray(arrays[f"shard_ids.{shard}"], dtype=np.int64)
                for shard in range(index.n_shards)
            ],
            np.asarray(arrays["pending"], dtype=np.int64),
        )
        dead_assignments = index._assignments[~index._alive]
        dead_assignments = dead_assignments[dead_assignments >= 0]
        index._dead_per_shard = np.bincount(
            dead_assignments, minlength=index.n_shards
        ).astype(np.int64)
        index.version = int(config.get("version", 0))
        index.build_seconds = float(config.get("build_seconds", 0.0))
        return index


def _register_config(name: str, description: str, **defaults) -> None:
    register_index(
        name,
        capabilities=_SHARDED_CAPABILITIES,
        description=description,
        defaults=defaults,
    )(ShardedIndex)


_register_config(
    "sharded-bruteforce",
    "Sharded exact scan: distributed gold standard (merge is provably exact)",
    spec="bruteforce",
)
_register_config(
    "sharded-kmeans",
    "Sharded K-means partitions: per-shard Voronoi cells with a probes knob",
    spec="kmeans",
    partitioner="kmeans",
)
_register_config(
    "sharded-ivf",
    "Sharded IVF-flat: per-shard inverted lists, kmeans-routed shards",
    spec="ivf-flat",
    partitioner="kmeans",
)
_register_config(
    "sharded-sq8",
    "Sharded int8 scan: per-shard scalar-quantized codes with exact re-rank",
    spec="sq8",
)

"""The write-ahead log: append-only, length-prefixed, checksummed records.

Durability in :mod:`repro.store` follows the classic database discipline:
every mutation is appended to this log (and optionally fsynced) *before*
it is applied to the in-memory index, so an acknowledged operation
survives any crash.  The file format is deliberately minimal and
dependency-free:

::

    file   := header record*
    header := b"RWAL0001"                        (8 bytes, magic + version)
    record := u32 payload_crc32 | u32 payload_len | payload
    payload := u32 json_len | json_bytes | raw array bytes...

``json_bytes`` is a UTF-8 JSON object describing the operation (its
``seq`` number, the op name, JSON-able arguments) plus a descriptor per
binary array (name, dtype, shape); the arrays' raw bytes follow in
descriptor order.  All integers are little-endian.

Crash semantics on replay:

* a record whose header or payload is cut off by end-of-file is a **torn
  tail** — the write that crashed before completing.  It was never
  acknowledged, so replay stops there and (by default) truncates the file
  back to the last complete record;
* a checksum mismatch on a record *followed by more data* cannot be a
  torn write — appends are sequential — so it is real corruption and
  raises :class:`~repro.utils.exceptions.StorageError` instead of
  silently dropping acknowledged operations.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from ..utils.exceptions import StorageError, ValidationError

MAGIC = b"RWAL0001"
_HEADER = struct.Struct("<II")  # (crc32, payload length) per record
_U32 = struct.Struct("<I")

#: fsync policies: "always" fsyncs every append (durable ack), "never"
#: leaves flushing to the OS (benchmarks, bulk loads, tests).
SYNC_MODES = ("always", "never")

#: refuse to allocate buffers for absurd length fields on corrupt files
MAX_RECORD_BYTES = 1 << 31


def _encode_payload(record: Dict[str, Any], arrays: Dict[str, np.ndarray]) -> bytes:
    descriptors = []
    blobs = []
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        descriptors.append(
            {"name": name, "dtype": array.dtype.str, "shape": list(array.shape)}
        )
        blobs.append(array.tobytes())
    try:
        header = json.dumps(
            {**record, "arrays": descriptors}, sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"WAL record is not JSON-able: {exc}") from exc
    return b"".join([_U32.pack(len(header)), header] + blobs)


def _decode_payload(payload: bytes) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    if len(payload) < _U32.size:
        raise StorageError("WAL payload shorter than its JSON length prefix")
    (json_len,) = _U32.unpack_from(payload)
    header_end = _U32.size + json_len
    if header_end > len(payload):
        raise StorageError("WAL payload JSON header extends past the record")
    try:
        record = json.loads(payload[_U32.size : header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"WAL record header is not valid JSON: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    offset = header_end
    for descriptor in record.pop("arrays", []):
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(int(n) for n in descriptor["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        if offset + nbytes > len(payload):
            raise StorageError(
                f"WAL record array {descriptor['name']!r} extends past the record"
            )
        arrays[descriptor["name"]] = np.frombuffer(
            payload[offset : offset + nbytes], dtype=dtype
        ).reshape(shape).copy()
        offset += nbytes
    return record, arrays


class WriteAheadLog:
    """One append-only log file of checksummed operation records.

    Parameters
    ----------
    path:
        Log file location; created (with the magic header) if absent.
    sync:
        ``"always"`` fsyncs after every append — an acknowledged
        operation is on disk before the caller regains control.
        ``"never"`` trades that guarantee for throughput (the OS flushes
        eventually); a crash may then lose a *suffix* of acknowledged
        operations, but replay still recovers a consistent prefix.
    """

    def __init__(self, path: str | os.PathLike, *, sync: str = "always") -> None:
        if sync not in SYNC_MODES:
            raise ValidationError(
                f"unknown WAL sync mode {sync!r}; expected one of {SYNC_MODES}"
            )
        self.path = Path(path)
        self.sync = sync
        self.n_records = 0
        existing = self.path.is_file()
        self._handle = open(self.path, "ab")
        if not existing or self.path.stat().st_size == 0:
            self._handle.write(MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._good_offset = len(MAGIC)
        else:
            # Count the complete records already present so n_records and
            # append offsets continue where the previous process stopped.
            # A torn tail is trimmed *now*: appending after torn bytes
            # would turn them into mid-file corruption on the next replay.
            # ``decode=False`` checksums every frame without paying the
            # JSON/array decode — Collection.open() replays once more,
            # with decoding, to actually apply the operations.
            for _ in self.replay(truncate_torn=True, decode=False):
                self.n_records += 1
            self._good_offset = int(self.path.stat().st_size)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    @property
    def n_bytes(self) -> int:
        """Current file size (header + every complete record)."""
        self._handle.flush()
        return int(self.path.stat().st_size)

    def append(
        self, record: Dict[str, Any], arrays: Optional[Dict[str, np.ndarray]] = None
    ) -> int:
        """Append one record; returns its 0-based position in the log.

        The record is on disk (fsynced) when this returns under
        ``sync="always"`` — the caller may acknowledge the operation.
        """
        payload = _encode_payload(record, arrays or {})
        frame = _HEADER.pack(zlib.crc32(payload), len(payload)) + payload
        self._handle.write(frame)
        self._handle.flush()
        if self.sync == "always":
            os.fsync(self._handle.fileno())
        position = self.n_records
        self.n_records += 1
        self._good_offset += len(frame)
        return position

    def rollback(self) -> None:
        """Trim everything after the last fully appended record.

        Called when an :meth:`append` raised mid-write: the partial frame
        it may have left would read as a torn tail now, but would become
        unrecoverable mid-file corruption the moment a later append lands
        after it.
        """
        self._truncate_to(self._good_offset)

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(
        self, *, truncate_torn: bool = True, decode: bool = True
    ) -> Iterator[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Yield every complete record in append order.

        A torn final record (incomplete header, payload cut off by EOF,
        or a checksum mismatch on the very last record) ends the
        iteration; with ``truncate_torn`` the file is trimmed back to the
        last complete record so later appends start clean.  A checksum
        mismatch *before* the end of the file is corruption, not a torn
        write, and raises :class:`StorageError`.

        ``decode=False`` yields ``(None, None)`` per record: every frame
        is still read and checksummed, but the JSON/array decode is
        skipped — for callers that only count or validate.
        """
        self._handle.flush()
        with open(self.path, "rb") as handle:
            magic = handle.read(len(MAGIC))
            if magic != MAGIC:
                raise StorageError(
                    f"{self.path} is not a write-ahead log (bad magic {magic!r})"
                )
            size = os.fstat(handle.fileno()).st_size
            offset = len(MAGIC)
            while offset < size:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break  # torn: header itself incomplete
                crc, length = _HEADER.unpack(header)
                if length > MAX_RECORD_BYTES:
                    raise StorageError(
                        f"{self.path}: record at byte {offset} claims "
                        f"{length} bytes; the log is corrupt"
                    )
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn: payload cut off by EOF
                if zlib.crc32(payload) != crc:
                    if offset + _HEADER.size + length >= size:
                        break  # torn: bad bytes are the final record
                    raise StorageError(
                        f"{self.path}: checksum mismatch at byte {offset} with "
                        "further records after it — the log is corrupt, not torn"
                    )
                yield _decode_payload(payload) if decode else (None, None)
                offset += _HEADER.size + length
        if truncate_torn and offset < size:
            self._truncate_to(offset)

    def iter_from(
        self, seq: int, *, truncate_torn: bool = False
    ) -> Iterator[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Yield complete records whose ``seq`` field exceeds ``seq``.

        The tailing primitive behind replication: a follower at sequence
        ``seq`` pulls exactly the acknowledged records after it, in
        append order, each one checksum-verified by the underlying
        :meth:`replay`.  Unlike recovery, the default here is
        ``truncate_torn=False`` — a torn tail on a *live* log may be an
        append in progress on another handle, and a tailer must never
        trim it; iteration simply stops at the last complete record.
        """
        seq = int(seq)
        for record, arrays in self.replay(truncate_torn=truncate_torn, decode=True):
            if int(record.get("seq", -1)) > seq:
                yield record, arrays

    def _truncate_to(self, offset: int) -> None:
        self._handle.flush()
        with open(self.path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        # Reposition the append handle past the truncation point.
        self._handle.close()
        self._handle = open(self.path, "ab")
        self._good_offset = int(offset)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            if self.sync == "always":
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(path={str(self.path)!r}, sync={self.sync!r}, "
            f"n_records={self.n_records})"
        )


# Public aliases: the replication wire format (repro.replica.wire) ships
# WAL records as exactly these payload bytes, so a record is covered by
# one codec and one checksum from the primary's log to the follower's.
encode_record_payload = _encode_payload
decode_record_payload = _decode_payload


def fsync_directory(path: str | os.PathLike) -> None:
    """fsync a directory entry so renames/creates inside it are durable.

    Best-effort on platforms whose directories cannot be opened for
    reading (the metadata write still happened; only its ordering
    guarantee is weaker there).
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)
